"""Figure 3 — distribution of edges per topic (Twitter).

The paper reports a strongly biased distribution (matching Yahoo!
Directory's category skew): a few topics label most follow edges. The
synthetic generator drives this with a Zipf law; this bench regenerates
the ranked distribution and asserts the bias.
"""

from conftest import write_result

from repro.graph.stats import edges_per_topic


def test_fig3_edges_per_topic(benchmark, twitter_graph):
    counts = benchmark.pedantic(
        lambda: edges_per_topic(twitter_graph), rounds=3, iterations=1)
    ranked = sorted(counts.items(), key=lambda kv: -kv[1])
    total = sum(counts.values())

    lines = ["Figure 3 — edges per topic (descending)"]
    for topic, count in ranked:
        share = 100.0 * count / total
        bar = "#" * int(share)
        lines.append(f"  {topic:15s} {count:8d} ({share:5.1f}%) {bar}")
    write_result("fig3_topic_distribution", "\n".join(lines) + "\n")

    # biased distribution: head topic labels >5x the tail topic
    assert ranked[0][1] > 5 * ranked[-1][1]
    # technology popular, social infrequent (Figure 9's premise)
    assert counts["technology"] > counts["social"]
