"""Extension bench — dict engine vs CSR sparse engine.

Both engines compute identical Tr scores (asserted); the CSR engine
amortises its matrix construction over many propagations, which is the
regime of landmark preprocessing and the evaluation protocol. This
bench measures both regimes on the shared Twitter graph.
"""

import pytest
from conftest import write_result

from repro.core.exact import single_source_scores
from repro.core.fast import SparseEngine, scipy_available
from repro.obs.clock import Stopwatch

TOPIC = "technology"
NUM_SOURCES = 20


@pytest.mark.skipif(not scipy_available(), reason="scipy not installed")
def test_ext_engine_comparison(benchmark, twitter_graph, web_sim,
                               paper_params):
    sources = sorted(twitter_graph.nodes())[:NUM_SOURCES]

    def run():
        build_watch = Stopwatch()
        with build_watch:
            engine = SparseEngine(twitter_graph, web_sim, paper_params)
        sparse_watch = Stopwatch()
        sparse_states = []
        for source in sources:
            with sparse_watch:
                sparse_states.append(engine.single_source(source, [TOPIC]))
        multi_watch = Stopwatch()
        with multi_watch:
            multi_states = engine.multi_source(sources, [TOPIC])
        dict_watch = Stopwatch()
        dict_states = []
        for source in sources:
            with dict_watch:
                dict_states.append(single_source_scores(
                    twitter_graph, source, [TOPIC], web_sim,
                    params=paper_params))
        # equivalence spot-check on the first source
        first_sparse = sparse_states[0].scores[TOPIC]
        first_multi = multi_states[0].scores[TOPIC]
        first_dict = dict_states[0].scores[TOPIC]
        assert first_sparse == pytest.approx(first_dict, abs=1e-12)
        assert first_multi == pytest.approx(first_dict, abs=1e-12)
        return (build_watch.elapsed, sparse_watch.mean_lap,
                multi_watch.elapsed / len(sources), dict_watch.mean_lap)

    build_s, sparse_s, multi_s, dict_s = benchmark.pedantic(run, rounds=1,
                                                            iterations=1)

    lines = ["Extension — propagation engines "
             f"({NUM_SOURCES} sources, shared graph)",
             f"  CSR build (once)      {build_s:9.4f} s",
             f"  sparse per source     {sparse_s:9.4f} s",
             f"  batched per source    {multi_s:9.4f} s",
             f"  dict per source       {dict_s:9.4f} s",
             f"  bulk speed-up         {dict_s / sparse_s:9.1f}x",
             f"  batched speed-up      {dict_s / multi_s:9.1f}x"]
    write_result("ext_engines", "\n".join(lines) + "\n")

    # amortised, the vectorised engine must win on bulk workloads,
    # and batching a block of sources must win again over one-at-a-time
    assert sparse_s < dict_s
    assert multi_s < dict_s
