"""Table 2 — topological properties of the two datasets.

Paper values (2.2M-user Twitter crawl / 525k-author DBLP projection):

    Property            Twitter       DBLP
    nodes               2,182,867     525,567
    edges               125,451,980   20,526,843
    avg out-degree      57.8          47.3
    avg in-degree       69.4          53.6
    max in-degree       348,595       9,897
    max out-degree      185,401       5,052

The synthetic generators run at laptop scale; the *shape* to reproduce
is: heavy in-degree tail (max ≫ avg), out-degree tail much lighter,
and a denser DBLP graph relative to its size.
"""

from conftest import write_result

from repro.graph.stats import compute_stats


def _format(stats, name):
    lines = [f"[{name}]"]
    for key, value in stats.as_rows():
        lines.append(f"  {key:28s} {value}")
    return "\n".join(lines)


def test_table2_dataset_properties(benchmark, twitter_graph, dblp_graph):
    twitter_stats = benchmark.pedantic(
        lambda: compute_stats(twitter_graph), rounds=3, iterations=1)
    dblp_stats = compute_stats(dblp_graph)

    text = "Table 2 — dataset topological properties\n"
    text += _format(twitter_stats, "Twitter (synthetic)") + "\n"
    text += _format(dblp_stats, "DBLP (synthetic)") + "\n"
    write_result("table2_datasets", text)

    # Shape assertions mirroring the paper's crawl
    assert twitter_stats.max_in_degree > 5 * twitter_stats.avg_in_degree
    assert twitter_stats.max_out_degree < twitter_stats.max_in_degree
    assert dblp_stats.avg_out_degree > 10
