"""Extension bench — how the landmark gain scales with graph size.

The paper reports a 2–3 order of magnitude gain on a 2.2M-node graph;
this reproduction measures tens-of-times gains on thousands of nodes.
The claim connecting the two (EXPERIMENTS.md) is that the gain grows
with graph size: exact propagation touches the whole reachable set,
while the approximate query's cost is bounded by the depth-2 vicinity
plus landmark-list size. This bench verifies that trend on a size
sweep.
"""

from conftest import write_result

from repro.config import LandmarkParams, ScoreParams
from repro.core.exact import single_source_scores
from repro.datasets import generate_twitter_graph
from repro.landmarks import (
    ApproximateRecommender,
    LandmarkIndex,
    select_landmarks,
)
from repro.obs.clock import Stopwatch

TOPIC = "technology"
SIZES = (1000, 2000, 4000)
PARAMS = ScoreParams(beta=0.0005, alpha=0.85)
NUM_LANDMARKS = 30
NUM_QUERIES = 6


def test_ext_gain_scales_with_graph_size(benchmark, web_sim):
    def run():
        rows = {}
        for size in SIZES:
            graph = generate_twitter_graph(size, seed=size)
            landmarks = select_landmarks(graph, "In-Deg", NUM_LANDMARKS,
                                         rng=1)
            index = LandmarkIndex.build(
                graph, landmarks, [TOPIC], web_sim, params=PARAMS,
                landmark_params=LandmarkParams(
                    num_landmarks=NUM_LANDMARKS, top_n=200))
            recommender = ApproximateRecommender(graph, web_sim, index)
            queries = [n for n in graph.nodes()
                       if graph.out_degree(n) >= 3
                       and n not in set(landmarks)][:NUM_QUERIES]
            approx_watch, exact_watch = Stopwatch(), Stopwatch()
            for query in queries:
                with approx_watch:
                    recommender.query(query, TOPIC)
                with exact_watch:
                    single_source_scores(graph, query, [TOPIC], web_sim,
                                         params=PARAMS)
            rows[size] = (exact_watch.mean_lap, approx_watch.mean_lap,
                          exact_watch.elapsed / approx_watch.elapsed)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Extension — landmark gain vs graph size "
             f"({NUM_LANDMARKS} landmarks, depth-2 queries)",
             f"  {'nodes':>7s} {'exact (s)':>10s} {'approx (s)':>11s} "
             f"{'gain':>7s}"]
    for size in SIZES:
        exact_s, approx_s, gain = rows[size]
        lines.append(f"  {size:>7d} {exact_s:10.4f} {approx_s:11.4f} "
                     f"{gain:7.1f}")
    write_result("ext_scaling_gain", "\n".join(lines) + "\n")

    # The gain grows with graph size (the bridge to the paper's
    # 2-3 orders of magnitude at 2.2M nodes).
    gains = [rows[size][2] for size in SIZES]
    assert gains[-1] > gains[0]
    # Exact cost grows super-linearly in reach; approximate stays flat-ish.
    assert rows[SIZES[-1]][0] > rows[SIZES[0]][0]
