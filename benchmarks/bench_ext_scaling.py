"""Extension bench — how the landmark gain scales with graph size.

The paper reports a 2–3 order of magnitude gain on a 2.2M-node graph;
this reproduction measures tens-of-times gains on thousands of nodes.
The claim connecting the two (EXPERIMENTS.md) is that the gain grows
with graph size: exact propagation touches the whole reachable set,
while the approximate query's cost is bounded by the depth-2 vicinity
plus landmark-list size. This bench verifies that trend on a size
sweep.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from conftest import write_result

from repro.config import LandmarkParams, ScoreParams
from repro.core.exact import single_source_scores
from repro.datasets import generate_twitter_graph
from repro.datasets.streaming import generate_twitter_snapshot_stream
from repro.datasets.twitter import TwitterConfig
from repro.graph.storage import read_header
from repro.landmarks import (
    ApproximateRecommender,
    LandmarkIndex,
    select_landmarks,
)
from repro.obs.clock import Stopwatch

TOPIC = "technology"
SIZES = (1000, 2000, 4000)
PARAMS = ScoreParams(beta=0.0005, alpha=0.85)
NUM_LANDMARKS = 30
NUM_QUERIES = 6

#: The out-of-core run: 1M nodes / ~10M edges unless scaled down via
#: REPRO_BENCH_SCALE_NODES (CI-sized machines finish the default in a
#: few minutes; the edge budget tracks nodes × 10).
SCALE_NODES = int(os.environ.get("REPRO_BENCH_SCALE_NODES", "1000000"))


def test_ext_gain_scales_with_graph_size(benchmark, web_sim):
    def run():
        rows = {}
        for size in SIZES:
            graph = generate_twitter_graph(size, seed=size)
            landmarks = select_landmarks(graph, "In-Deg", NUM_LANDMARKS,
                                         rng=1)
            index = LandmarkIndex.build(
                graph, landmarks, [TOPIC], web_sim, params=PARAMS,
                landmark_params=LandmarkParams(
                    num_landmarks=NUM_LANDMARKS, top_n=200))
            recommender = ApproximateRecommender(graph, web_sim, index)
            queries = [n for n in graph.nodes()
                       if graph.out_degree(n) >= 3
                       and n not in set(landmarks)][:NUM_QUERIES]
            approx_watch, exact_watch = Stopwatch(), Stopwatch()
            for query in queries:
                with approx_watch:
                    recommender.query(query, TOPIC)
                with exact_watch:
                    single_source_scores(graph, query, [TOPIC], web_sim,
                                         params=PARAMS)
            rows[size] = (exact_watch.mean_lap, approx_watch.mean_lap,
                          exact_watch.elapsed / approx_watch.elapsed)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Extension — landmark gain vs graph size "
             f"({NUM_LANDMARKS} landmarks, depth-2 queries)",
             f"  {'nodes':>7s} {'exact (s)':>10s} {'approx (s)':>11s} "
             f"{'gain':>7s}"]
    for size in SIZES:
        exact_s, approx_s, gain = rows[size]
        lines.append(f"  {size:>7d} {exact_s:10.4f} {approx_s:11.4f} "
                     f"{gain:7.1f}")
    write_result("ext_scaling_gain", "\n".join(lines) + "\n")

    # The gain grows with graph size (the bridge to the paper's
    # 2-3 orders of magnitude at 2.2M nodes).
    gains = [rows[size][2] for size in SIZES]
    assert gains[-1] > gains[0]
    # Exact cost grows super-linearly in reach; approximate stays flat-ish.
    assert rows[SIZES[-1]][0] > rows[SIZES[0]][0]


#: Runs in a fresh process so its peak RSS measures the *serving*
#: footprint alone: open the snapshot mmap-backed, build a sampled
#: (Random-strategy, depth-capped, dict-engine) landmark index, answer
#: queries, and report ru_maxrss.
_SERVE_SCRIPT = """
import json, resource, sys
from repro.config import LandmarkParams, ScoreParams
from repro.graph import open_snapshot
from repro.landmarks import (ApproximateRecommender, LandmarkIndex,
                             select_landmarks)
from repro.obs.clock import Stopwatch
from repro.semantics import SimilarityMatrix, web_taxonomy


def peak_rss_bytes():
    # VmHWM, not ru_maxrss: the rusage high-water mark survives
    # execve, so a child forked from a fat parent (pytest after the
    # generation phase) would inherit a peak it never touched.
    # clear_refs resets VmHWM; ru_maxrss stays as the fallback on
    # kernels without it.
    with open("/proc/self/status", encoding="ascii") as handle:
        for line in handle:
            if line.startswith("VmHWM:"):
                return int(line.split()[1]) * 1024
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


try:
    with open("/proc/self/clear_refs", "w", encoding="ascii") as handle:
        handle.write("5")
except OSError:
    pass

path, topic, store = sys.argv[1], sys.argv[2], sys.argv[3]
snapshot = open_snapshot(path, store=store)
web_sim = SimilarityMatrix.from_taxonomy(web_taxonomy())
params = ScoreParams(beta=0.0005, alpha=0.85)
landmark_params = LandmarkParams(num_landmarks=16, top_n=50,
                                 precompute_depth=2)

build_watch = Stopwatch()
with build_watch:
    landmarks = select_landmarks(snapshot, "Random",
                                 landmark_params.num_landmarks, rng=9)
    index = LandmarkIndex.build(
        snapshot, landmarks, [topic], web_sim, params=params,
        landmark_params=landmark_params, engine="dict")

recommender = ApproximateRecommender(snapshot, web_sim, index,
                                     query_engine="dict")
excluded = set(landmarks)
queries = [q for q in range(0, snapshot.num_nodes,
                            max(snapshot.num_nodes // 200, 1))
           if snapshot.out_degree(q) >= 2 and q not in excluded][:20]
query_watch = Stopwatch()
for query in queries:
    with query_watch:
        recommender.recommend(query, topic, top_n=10)

print(json.dumps({
    "peak_rss_bytes": peak_rss_bytes(),
    "build_seconds": build_watch.elapsed,
    "queries": len(queries),
    "query_mean_seconds": query_watch.mean_lap,
}))
"""


@pytest.mark.slow
def test_ext_million_node_graph_served_out_of_core(tmp_path_factory):
    """1M nodes / ~10M edges generated, snapshotted, landmark-built,
    and served on one machine — with the serving process's peak RSS
    bounded well below the in-RAM equivalent of the arrays."""
    path = tmp_path_factory.mktemp("ext_scale") / "million"

    generate_watch = Stopwatch()
    with generate_watch:
        stats = generate_twitter_snapshot_stream(
            path, SCALE_NODES, seed=7,
            config=TwitterConfig(avg_out_degree=10.0))
    header = read_header(path)
    in_ram_bytes = header.total_bytes()
    assert stats.num_edges >= 9 * SCALE_NODES  # the ~10x edge budget

    src = Path(__file__).resolve().parents[1] / "src"
    serve = {}
    for store in ("mmap", "ram"):
        result = subprocess.run(
            [sys.executable, "-c", _SERVE_SCRIPT, str(path), TOPIC, store],
            capture_output=True, text=True, check=True,
            env=dict(os.environ, PYTHONPATH=str(src)))
        serve[store] = json.loads(result.stdout)

    mmap_serve, ram_serve = serve["mmap"], serve["ram"]
    lines = ["Extension — out-of-core scale "
             f"({SCALE_NODES} nodes, {stats.num_edges} edges)",
             f"  generate (stream)      {generate_watch.elapsed:9.1f} s",
             f"  landmark build (16)    {mmap_serve['build_seconds']:9.1f} s",
             f"  query mean (mmap)      "
             f"{mmap_serve['query_mean_seconds']*1e3:9.2f} ms"
             f"  ({mmap_serve['queries']} queries)",
             f"  query mean (ram)       "
             f"{ram_serve['query_mean_seconds']*1e3:9.2f} ms",
             f"  array bytes (disk)     {in_ram_bytes/2**20:8.1f}  MiB",
             f"  serve peak RSS (ram)   "
             f"{ram_serve['peak_rss_bytes']/2**20:8.1f}  MiB",
             f"  serve peak RSS (mmap)  "
             f"{mmap_serve['peak_rss_bytes']/2**20:8.1f}  MiB"]
    write_result("ext_scaling_out_of_core", "\n".join(lines) + "\n")

    assert mmap_serve["queries"] >= 10
    assert mmap_serve["queries"] == ram_serve["queries"]
    # The acceptance bar: the mmap-backed serving process must not
    # inherit the in-RAM footprint. The ram-backed twin (same work,
    # arrays loaded eagerly) is the measured in-RAM equivalent; it
    # must at least materialise the arrays, and the mmap path must
    # stay well below it.
    if SCALE_NODES >= 500_000:
        assert ram_serve["peak_rss_bytes"] > in_ram_bytes
        assert mmap_serve["peak_rss_bytes"] \
            < 0.7 * ram_serve["peak_rss_bytes"]
