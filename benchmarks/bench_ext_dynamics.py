"""Extension bench — landmark maintenance under churn (paper §6 future
work: "many following links have a short lifespan... dynamicity may
impact the scores stored by the landmarks").

Compares maintenance policies on the same churn stream: rebuild cost
(Algorithm-1 runs per event) against residual staleness (Kendall tau
drift of stored lists). The expected frontier: NoOp is free but stale,
Eager is fresh but pays per event, Batch/TTL sit between.
"""

from conftest import write_result

from repro.config import LandmarkParams, ScoreParams
from repro.dynamics import (
    BatchMaintainer,
    EagerMaintainer,
    GraphStream,
    IncrementalMaintainer,
    NoOpMaintainer,
    TTLMaintainer,
    measure_staleness,
    simulate_churn,
)
from repro.datasets import generate_twitter_graph
from repro.landmarks import LandmarkIndex, select_landmarks

TOPIC = "technology"
NUM_EVENTS = 400
NUM_LANDMARKS = 12
PARAMS = ScoreParams(beta=0.0005, alpha=0.85)

POLICIES = {
    "NoOp": lambda g, i, s: NoOpMaintainer(g, i, [TOPIC], s, PARAMS),
    "Eager": lambda g, i, s: EagerMaintainer(g, i, [TOPIC], s, PARAMS),
    "Batch-25%": lambda g, i, s: BatchMaintainer(
        g, i, [TOPIC], s, PARAMS, dirty_threshold=0.25),
    "TTL-100": lambda g, i, s: TTLMaintainer(
        g, i, [TOPIC], s, PARAMS, ttl_events=100),
    "Increment": lambda g, i, s: IncrementalMaintainer(
        g, i, [TOPIC], s, PARAMS),
}


def test_ext_dynamics_maintenance_frontier(benchmark, web_sim):
    base = generate_twitter_graph(1500, seed=123)
    landmarks = select_landmarks(base, "In-Deg", NUM_LANDMARKS, rng=4)
    events = list(simulate_churn(base, NUM_EVENTS, seed=4))

    def run():
        rows = {}
        for name, factory in POLICIES.items():
            graph = base.copy()
            index = LandmarkIndex.build(
                graph, landmarks, [TOPIC], web_sim, params=PARAMS,
                landmark_params=LandmarkParams(
                    num_landmarks=NUM_LANDMARKS, top_n=100))
            maintainer = factory(graph, index, web_sim)
            stream = GraphStream(graph)
            stream.subscribe(maintainer.on_event)
            stream.apply_all(events)
            if isinstance(maintainer, BatchMaintainer):
                maintainer.flush()
            staleness = measure_staleness(
                graph, index, TOPIC, web_sim, PARAMS,
                sample=landmarks[:6])
            rows[name] = (maintainer.stats.rebuilds_per_event, staleness)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Extension — landmark maintenance under churn "
             f"({NUM_EVENTS} events, {NUM_LANDMARKS} landmarks)",
             f"  {'policy':10s} {'rebuilds/event':>15s} {'staleness':>10s}"]
    for name, (cost, staleness) in rows.items():
        lines.append(f"  {name:10s} {cost:15.3f} {staleness:10.4f}")
    write_result("ext_dynamics_maintenance", "\n".join(lines) + "\n")

    assert rows["NoOp"][0] == 0.0
    # The delta updater performs no Algorithm-1 rebuilds at all.
    assert rows["Increment"][0] == 0.0
    # Eager pays the most rebuilds and ends freshest.
    assert rows["Eager"][0] >= rows["Batch-25%"][0]
    assert rows["Eager"][1] <= rows["NoOp"][1] + 1e-9
    # Every maintained policy beats doing nothing on staleness.
    for name in ("Eager", "Batch-25%", "TTL-100", "Increment"):
        assert rows[name][1] <= rows["NoOp"][1] + 1e-9
