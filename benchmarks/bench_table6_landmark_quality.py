"""Table 6 — landmark-strategy comparison at query time.

Per strategy: mean #landmarks encountered by the depth-2 BFS, query
time and its gain over the exact computation, and the Kendall tau
distance of the approximate top-100 to the exact one when landmarks
store their top-10 / top-100 / top-1000 (columns L10/L100/L1000).

Paper shape: In-Deg/Out-Deg meet the most landmarks (58.9 / 6.2 at
2.2M nodes) while Random/Btw-* meet ~3; query times are flat across
strategies thanks to BFS pruning at landmarks; the gain over exact is
2-3 orders of magnitude; storing more per landmark lowers the tau for
well-connected strategies.
"""

from conftest import write_result

from repro.eval.landmarks_eval import evaluate_strategy_quality
from repro.landmarks.selection import STRATEGIES

NUM_LANDMARKS = 50
STORED_TOPNS = (10, 100, 1000)


def test_table6_strategy_quality(benchmark, twitter_graph, web_sim,
                                 paper_params):
    def run():
        rows = {}
        for strategy in STRATEGIES:
            rows[strategy] = evaluate_strategy_quality(
                twitter_graph, ["technology"], web_sim, strategy,
                num_landmarks=NUM_LANDMARKS, stored_topns=STORED_TOPNS,
                num_queries=8, params=paper_params, seed=13)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Table 6 — landmark selection strategies at query time",
             f"  {'strategy':10s} {'#lnd':>6s} {'time (s)':>9s} "
             f"{'gain':>7s} {'L10':>6s} {'L100':>6s} {'L1000':>6s}"]
    for strategy, quality in rows.items():
        taus = quality.kendall_by_topn
        lines.append(
            f"  {strategy:10s} {quality.mean_landmarks_encountered:6.1f} "
            f"{quality.approx_seconds:9.4f} {quality.gain:7.1f} "
            f"{taus[10]:6.3f} {taus[100]:6.3f} {taus[1000]:6.3f}")
    write_result("table6_landmark_quality", "\n".join(lines) + "\n")

    # In-Deg landmarks (celebrities) are encountered at least as often
    # as random ones (paper: 58.9 vs 2.9).
    assert rows["In-Deg"].mean_landmarks_encountered >= \
        rows["Random"].mean_landmarks_encountered
    # The approximation is faster than exact for every strategy.
    for quality in rows.values():
        assert quality.gain > 1.0
    # Storing deeper lists never hurts the best-connected strategy.
    in_deg = rows["In-Deg"].kendall_by_topn
    assert in_deg[1000] <= in_deg[10] + 0.05
