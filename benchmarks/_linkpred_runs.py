"""Shared, cached link-prediction runs for Figures 4-7.

Figures 4/5 (and 6/7) plot the same protocol run two ways, so the run
is computed once per dataset and cached at module level.
"""

from __future__ import annotations

from typing import Dict

from repro.baselines import TwitterRank
from repro.config import EvaluationParams, ScoreParams
from repro.core.recommender import Recommender
from repro.eval import (
    LinkPredictionProtocol,
    MethodCurve,
    katz_scorer,
    tr_scorer,
    twitterrank_scorer,
)

_cache: Dict[str, Dict[str, MethodCurve]] = {}


def five_method_curves(name: str, graph, similarity,
                       params: ScoreParams,
                       eval_params: EvaluationParams,
                       seed: int = 2016) -> Dict[str, MethodCurve]:
    """Run Tr, its two ablations, Katz and TwitterRank once per dataset.

    This is the experiment behind Figure 4 (Twitter) and Figure 6
    (DBLP); Figures 5 and 7 re-plot the same curves as
    precision-vs-recall.
    """
    cached = _cache.get(name)
    if cached is not None:
        return cached
    protocol = LinkPredictionProtocol(graph, eval_params, seed=seed)
    working = protocol.graph
    scorers = {
        "Tr": tr_scorer(Recommender(working, similarity, params)),
        "Tr-auth": tr_scorer(Recommender(working, similarity, params,
                                         use_authority=False)),
        "Tr-sim": tr_scorer(Recommender(working, similarity, params,
                                        use_similarity=False)),
        "Katz": katz_scorer(working, params),
        "TwitterRank": twitterrank_scorer(TwitterRank(working)),
    }
    curves = protocol.run(scorers)
    _cache[name] = curves
    return curves


def recall_table(curves: Dict[str, MethodCurve], max_rank: int = 20) -> str:
    names = list(curves)
    lines = ["N     " + "".join(f"{name:>13s}" for name in names)]
    for n in range(1, max_rank + 1):
        row = f"{n:<6d}" + "".join(
            f"{curves[name].recall_at(n):13.3f}" for name in names)
        lines.append(row)
    return "\n".join(lines)


def precision_recall_table(curves: Dict[str, MethodCurve],
                           max_rank: int = 20) -> str:
    lines = []
    for name, curve in curves.items():
        lines.append(f"[{name}]")
        lines.append("  N    recall   precision")
        for n in (1, 2, 3, 5, 7, 10, 15, 20):
            if n > max_rank:
                break
            lines.append(f"  {n:<4d} {curve.recall_at(n):7.3f}   "
                         f"{curve.precision_at(n):9.4f}")
    return "\n".join(lines)
