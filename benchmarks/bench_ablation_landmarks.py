"""Ablations (beyond the paper) — landmark count and BFS depth.

Two design choices DESIGN.md flags in the landmark machinery:

- the number of landmarks |L| (paper fixes 100): more landmarks mean
  more paths recovered, so the approximation improves monotonically;
- the query-time BFS depth (paper fixes 2): deeper exploration finds
  more landmarks but costs more.
"""

from conftest import write_result

from repro.config import LandmarkParams
from repro.core.exact import single_source_scores
from repro.eval.metrics import kendall_tau_distance
from repro.landmarks import (
    ApproximateRecommender,
    LandmarkIndex,
    select_landmarks,
)
from repro.obs.clock import Stopwatch

COUNTS = (10, 25, 50, 100)
DEPTHS = (1, 2, 3)
TOPIC = "technology"
NUM_QUERIES = 8


def _exact_top(graph, web_sim, paper_params, query, k=50):
    state = single_source_scores(graph, query, [TOPIC], web_sim,
                                 params=paper_params)
    return [n for n, _ in state.ranked(TOPIC, top_n=k, exclude=(query,))]


def test_ablation_landmark_count(benchmark, twitter_graph, web_sim,
                                 paper_params):
    queries = [n for n in twitter_graph.nodes()
               if twitter_graph.out_degree(n) >= 3][:NUM_QUERIES]
    exact_tops = {q: _exact_top(twitter_graph, web_sim, paper_params, q)
                  for q in queries}

    def run():
        rows = {}
        for count in COUNTS:
            landmarks = select_landmarks(twitter_graph, "In-Deg", count,
                                         rng=15)
            index = LandmarkIndex.build(
                twitter_graph, landmarks, [TOPIC], web_sim,
                params=paper_params,
                landmark_params=LandmarkParams(num_landmarks=count,
                                               top_n=500))
            recommender = ApproximateRecommender(twitter_graph, web_sim,
                                                 index)
            taus, encounters = [], []
            for query in queries:
                result = recommender.query(query, TOPIC)
                approx_top = [n for n, _ in result.ranked(
                    top_n=50, exclude=(query,))]
                taus.append(kendall_tau_distance(approx_top,
                                                 exact_tops[query]))
                encounters.append(len(result.landmarks_encountered))
            rows[count] = (sum(taus) / len(taus),
                           sum(encounters) / len(encounters))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Ablation — landmark count vs approximation quality",
             f"  {'|L|':>5s} {'mean tau':>9s} {'#lnd':>6s}"]
    for count in COUNTS:
        tau, encountered = rows[count]
        lines.append(f"  {count:>5d} {tau:9.3f} {encountered:6.1f}")
    write_result("ablation_landmark_count", "\n".join(lines) + "\n")

    # More landmarks → more encounters, and no worse approximation.
    assert rows[COUNTS[-1]][1] >= rows[COUNTS[0]][1]
    assert rows[COUNTS[-1]][0] <= rows[COUNTS[0]][0] + 0.05


def test_ablation_query_depth(benchmark, twitter_graph, web_sim,
                              paper_params):
    landmarks = select_landmarks(twitter_graph, "In-Deg", 50, rng=15)
    index = LandmarkIndex.build(
        twitter_graph, landmarks, [TOPIC], web_sim, params=paper_params,
        landmark_params=LandmarkParams(num_landmarks=50, top_n=500))
    recommender = ApproximateRecommender(twitter_graph, web_sim, index)
    queries = [n for n in twitter_graph.nodes()
               if twitter_graph.out_degree(n) >= 3][:NUM_QUERIES]
    exact_tops = {q: _exact_top(twitter_graph, web_sim, paper_params, q)
                  for q in queries}

    def run():
        rows = {}
        for depth in DEPTHS:
            watch = Stopwatch()
            taus = []
            for query in queries:
                with watch:
                    result = recommender.query(query, TOPIC, depth=depth)
                approx_top = [n for n, _ in result.ranked(
                    top_n=50, exclude=(query,))]
                taus.append(kendall_tau_distance(approx_top,
                                                 exact_tops[query]))
            rows[depth] = (sum(taus) / len(taus), watch.mean_lap)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Ablation — query BFS depth vs quality and time",
             f"  {'depth':>6s} {'mean tau':>9s} {'time (s)':>9s}"]
    for depth in DEPTHS:
        tau, seconds = rows[depth]
        lines.append(f"  {depth:>6d} {tau:9.3f} {seconds:9.4f}")
    write_result("ablation_query_depth", "\n".join(lines) + "\n")

    # Depth 3 explores at least as well as depth 1.
    assert rows[3][0] <= rows[1][0] + 0.05
    # Deeper exploration costs more time.
    assert rows[3][1] >= rows[1][1]
