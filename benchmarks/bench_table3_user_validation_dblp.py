"""Table 3 — simulated user validation on DBLP.

Paper values (47 researcher-judges, ≤100-citation filter):

    row                Katz    Tr     TWR
    average mark       2.38    2.47   1.51
    # 4 and 5-mark     46      47     11
    best answer (%)    0.38    0.50   0.12

Shape to reproduce: Katz ≈ Tr (topically-closed citation communities),
both clearly ahead of popularity-driven TwitterRank.
"""

from conftest import write_result

from repro.baselines import TwitterRank
from repro.core.katz import katz_rank
from repro.core.recommender import Recommender
from repro.eval.userstudy import run_dblp_study


def test_table3_user_validation_dblp(benchmark, dblp_graph, dblp_sim,
                                     paper_params):
    recommender = Recommender(dblp_graph, dblp_sim, paper_params)
    twitterrank = TwitterRank(dblp_graph)

    def tr_method(user, topic, k):
        return [r.node for r in recommender.recommend(user, topic, top_n=k)]

    def katz_method(user, topic, k):
        return [n for n, _ in katz_rank(dblp_graph, user, paper_params,
                                        top_n=k)]

    def twr_method(user, topic, k):
        return [n for n, _ in twitterrank.recommend(user, topic, top_n=k)]

    methods = {"Katz": katz_method, "Tr": tr_method, "TWR": twr_method}

    # citation cap scaled to the synthetic graph: exclude the top-decile
    # most-cited authors, the role the paper's "100 citations" plays.
    degrees = sorted(dblp_graph.in_degree(n) for n in dblp_graph.nodes())
    cap = degrees[int(0.9 * len(degrees))]

    result = benchmark.pedantic(
        run_dblp_study,
        args=(dblp_graph, dblp_sim, methods),
        kwargs={"panel_size": 47, "citation_cap": cap, "seed": 11},
        rounds=1, iterations=1)

    lines = ["Table 3 — user validation (DBLP, simulated 47 researchers)",
             f"  {'row':18s} {'Katz':>7s} {'Tr':>7s} {'TWR':>7s}"]
    for row_name, values in result.as_rows():
        lines.append(f"  {row_name:18s} {values['Katz']:7.2f} "
                     f"{values['Tr']:7.2f} {values['TWR']:7.2f}")
    write_result("table3_user_validation_dblp", "\n".join(lines) + "\n")

    # Path-based methods collect far more 4/5-marks than TwitterRank
    # (paper: 46 / 47 vs 11) — the popularity-driven method simply has
    # fewer defensible proposals.
    assert result.high_marks["Tr"] > result.high_marks["TWR"]
    assert result.high_marks["Katz"] > result.high_marks["TWR"]
    # Tr wins the best-answer vote (paper: 50% vs 38% vs 12%).
    assert result.best_answer["Tr"] >= result.best_answer["TWR"]
    assert result.best_answer["Tr"] >= result.best_answer["Katz"]
    assert result.average_mark["Tr"] >= result.average_mark["TWR"] - 0.1
    # Katz and Tr are close on DBLP (topically-closed communities).
    assert abs(result.average_mark["Tr"] - result.average_mark["Katz"]) < 1.0
