"""Figure 8 — recall@10 sliced by the removed account's popularity.

Paper shape (Twitter): retrieving an account from the bottom-10%
least-followed slice is hard for every method (recall 0.15 / 0.03 /
0.18 for Katz / TwitterRank / Tr), while top-10% most-followed accounts
are almost always retrieved (0.90-0.95). On DBLP the unpopular slice is
easier for the path-based methods (denser graph) but TwitterRank still
fails on it.
"""

import pytest
from conftest import write_result

from repro.baselines import TwitterRank
from repro.config import EvaluationParams
from repro.core.recommender import Recommender
from repro.eval import (
    LinkPredictionProtocol,
    katz_scorer,
    tr_scorer,
    twitterrank_scorer,
)
from repro.eval.slices import popularity_slice_filter


def _sliced_recall(graph, similarity, params, top: bool, seed: int,
                   test_size: int):
    accept = popularity_slice_filter(graph, 0.1, top=top)
    protocol = LinkPredictionProtocol(
        graph,
        EvaluationParams(test_size=test_size, num_negatives=1000,
                         k_in=1 if not top else 3, k_out=3),
        seed=seed, edge_filter=accept)
    working = protocol.graph
    curves = protocol.run({
        "Katz": katz_scorer(working, params),
        "TwitterRank": twitterrank_scorer(TwitterRank(working)),
        "Tr": tr_scorer(Recommender(working, similarity, params)),
    })
    return {name: curve.recall_at(10) for name, curve in curves.items()}


@pytest.mark.parametrize("dataset_name", ["twitter", "dblp"])
def test_fig8_popularity_slices(benchmark, dataset_name, twitter_graph,
                                dblp_graph, web_sim, dblp_sim,
                                paper_params):
    graph = twitter_graph if dataset_name == "twitter" else dblp_graph
    similarity = web_sim if dataset_name == "twitter" else dblp_sim

    def run():
        bottom = _sliced_recall(graph, similarity, paper_params, top=False,
                                seed=8, test_size=40)
        top = _sliced_recall(graph, similarity, paper_params, top=True,
                             seed=8, test_size=40)
        return bottom, top

    bottom, top = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"Figure 8 — recall@10 by target popularity ({dataset_name})",
             f"  {'method':12s} {'bottom-10%':>11s} {'top-10%':>9s}"]
    for name in ("Katz", "TwitterRank", "Tr"):
        lines.append(f"  {name:12s} {bottom[name]:11.3f} {top[name]:9.3f}")
    write_result(f"fig8_popularity_{dataset_name}", "\n".join(lines) + "\n")

    # Popular targets are much easier than unpopular ones, and
    # TwitterRank collapses on the unpopular slice (paper: 0.03).
    for name in ("Katz", "Tr", "TwitterRank"):
        assert top[name] >= bottom[name]
    assert bottom["TwitterRank"] <= bottom["Tr"]
