"""Ablation (beyond the paper) — the semantic similarity measure.

Section 3.2: "We use in the present paper the Wu and Palmer similarity
measure ... but other semantic distance measures, such as Resnik or
Disco could also be used. The choice of the best similarity function
is beyond the scope of the current paper." This bench runs that study:
Tr under Wu–Palmer, inverse-path, and Lin (structural-IC) similarity on
the same link-prediction protocol.
"""

from conftest import TEST_EDGES, write_result

from repro import web_taxonomy
from repro.config import EvaluationParams, ScoreParams
from repro.core.recommender import Recommender
from repro.eval import LinkPredictionProtocol, tr_scorer
from repro.semantics import SimilarityMatrix
from repro.semantics.similarity import MEASURES

PARAMS = ScoreParams(beta=0.0005, alpha=0.85)


def test_ablation_similarity_measures(benchmark, twitter_graph):
    taxonomy = web_taxonomy()
    protocol = LinkPredictionProtocol(
        twitter_graph,
        EvaluationParams(test_size=min(40, TEST_EDGES), num_negatives=500),
        seed=19)

    def run():
        results = {}
        for name, measure in MEASURES.items():
            matrix = SimilarityMatrix.from_taxonomy(taxonomy,
                                                    measure=measure)
            recommender = Recommender(protocol.graph, matrix, PARAMS)
            curves = protocol.run({"Tr": tr_scorer(recommender)})
            results[name] = {
                "r@1": curves["Tr"].recall_at(1),
                "r@10": curves["Tr"].recall_at(10),
                "r@20": curves["Tr"].recall_at(20),
            }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Ablation — Tr recall under different similarity measures",
             f"  {'measure':10s} {'r@1':>6s} {'r@10':>6s} {'r@20':>6s}"]
    for name, row in results.items():
        lines.append(f"  {name:10s} {row['r@1']:6.3f} {row['r@10']:6.3f} "
                     f"{row['r@20']:6.3f}")
    write_result("ablation_similarity", "\n".join(lines) + "\n")

    # The paper's 'beyond scope' hunch: the choice moves recall only
    # modestly — every taxonomy-based measure lands in one band.
    at_ten = [row["r@10"] for row in results.values()]
    assert max(at_ten) - min(at_ten) < 0.2
    assert all(value > 0.0 for value in at_ten)
