"""Ablation (beyond the paper) — sensitivity to the decay factors.

DESIGN.md calls out β (path decay) and α (edge-distance decay) as the
two free knobs of the Tr score; the paper fixes them at 0.0005 / 0.85
by convention. This bench sweeps both and reports recall@10 under the
Figure-4 protocol, checking the score is not knife-edge sensitive.
"""

from conftest import TEST_EDGES, write_result

from repro.config import EvaluationParams, ScoreParams
from repro.core.recommender import Recommender
from repro.eval import LinkPredictionProtocol, tr_scorer

BETAS = (0.00005, 0.0005, 0.005)
ALPHAS = (0.5, 0.85, 1.0)


def test_ablation_decay_factors(benchmark, twitter_graph, web_sim):
    protocol = LinkPredictionProtocol(
        twitter_graph,
        EvaluationParams(test_size=min(30, TEST_EDGES), num_negatives=500),
        seed=14)

    def run():
        results = {}
        for beta in BETAS:
            for alpha in ALPHAS:
                params = ScoreParams(beta=beta, alpha=alpha)
                recommender = Recommender(protocol.graph, web_sim, params)
                curves = protocol.run({"Tr": tr_scorer(recommender)})
                results[(beta, alpha)] = curves["Tr"].recall_at(10)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Ablation — recall@10 under decay-factor sweep (Twitter)",
             "  beta      " + "".join(f"alpha={a:<8}" for a in ALPHAS)]
    for beta in BETAS:
        row = f"  {beta:<9} " + "".join(
            f"{results[(beta, a)]:<14.3f}" for a in ALPHAS)
        lines.append(row)
    write_result("ablation_decay", "\n".join(lines) + "\n")

    values = list(results.values())
    # The paper's operating point is not knife-edge: the sweep varies
    # by less than 0.25 absolute recall across two orders of β.
    assert max(values) - min(values) < 0.25
    assert all(value >= 0.0 for value in values)
