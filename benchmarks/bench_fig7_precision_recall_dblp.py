"""Figure 7 — precision vs recall on DBLP (same run as Figure 6)."""

from _linkpred_runs import five_method_curves, precision_recall_table
from conftest import write_result


def test_fig7_precision_recall_dblp(benchmark, dblp_graph, dblp_sim,
                                    paper_params, eval_params):
    curves = benchmark.pedantic(
        five_method_curves,
        args=("dblp", dblp_graph, dblp_sim, paper_params, eval_params),
        rounds=1, iterations=1)

    text = ("Figure 7 — precision vs recall (DBLP)\n"
            + precision_recall_table(curves) + "\n")
    write_result("fig7_precision_recall_dblp", text)

    for n in (5, 10, 20):
        assert curves["Tr"].precision_at(n) >= \
            curves["TwitterRank"].precision_at(n)
