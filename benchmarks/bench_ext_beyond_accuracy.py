"""Extension bench — beyond-accuracy profile of the three methods.

Quantifies the Section 5.3 narrative ("TwitterRank generally recommends
accounts with a large number of followers, Tr can also recommend
smaller but more-specialized accounts"): mean popularity, novelty,
catalog coverage, topical specialisation and intra-list diversity of
each method's top-5 lists over the same query users.
"""

from conftest import write_result

from repro.baselines import SalsaRecommender, TwitterRank
from repro.core.katz import katz_rank
from repro.core.recommender import Recommender
from repro.eval.beyond_accuracy import beyond_accuracy_report

TOPIC = "technology"
NUM_USERS = 25
TOP_K = 5


def test_ext_beyond_accuracy(benchmark, twitter_graph, web_sim,
                             paper_params):
    recommender = Recommender(twitter_graph, web_sim, paper_params)
    twitterrank = TwitterRank(twitter_graph)
    salsa = SalsaRecommender(twitter_graph, circle_size=30)
    users = [n for n in twitter_graph.nodes()
             if twitter_graph.out_degree(n) >= 3][:NUM_USERS]

    def run():
        lists = {
            "Tr": [[r.node for r in recommender.recommend(
                u, TOPIC, top_n=TOP_K)] for u in users],
            "Katz": [[n for n, _ in katz_rank(
                twitter_graph, u, paper_params, top_n=TOP_K)]
                for u in users],
            "TwitterRank": [[n for n, _ in twitterrank.recommend(
                u, TOPIC, top_n=TOP_K)] for u in users],
            "SALSA": [[n for n, _ in salsa.recommend(u, top_n=TOP_K)]
                      for u in users],
        }
        return {
            name: beyond_accuracy_report(twitter_graph, web_sim,
                                         method_lists, TOPIC)
            for name, method_lists in lists.items()
        }

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    metrics = ["mean_popularity", "novelty", "catalog_coverage",
               "specialisation", "diversity"]
    lines = ["Extension — beyond-accuracy profile (top-5, "
             f"{NUM_USERS} users, topic={TOPIC})",
             "  " + f"{'metric':18s}" + "".join(
                 f"{name:>13s}" for name in reports)]
    for metric in metrics:
        row = f"  {metric:18s}" + "".join(
            f"{reports[name][metric]:13.3f}" for name in reports)
        lines.append(row)
    write_result("ext_beyond_accuracy", "\n".join(lines) + "\n")

    # The paper's claim, quantified:
    assert reports["Tr"]["mean_popularity"] <= \
        reports["TwitterRank"]["mean_popularity"]
    assert reports["Tr"]["novelty"] >= reports["TwitterRank"]["novelty"]
    assert reports["Tr"]["specialisation"] >= \
        reports["TwitterRank"]["specialisation"] - 0.05
    # Global rankers repeat the same winners; Tr personalises more.
    assert reports["Tr"]["catalog_coverage"] >= \
        reports["TwitterRank"]["catalog_coverage"]
