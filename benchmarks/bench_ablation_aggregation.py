"""Ablation (beyond the paper) — multi-topic score aggregation rules.

Section 3.2 combines per-topic scores with a weighted linear
combination and cites Aslam & Montague for alternatives. This bench
runs the link-prediction protocol on *multi-topic* queries (the full
label set of each removed edge) and compares the fused rankings of
every rule in :mod:`repro.core.aggregation`.
"""

from conftest import TEST_EDGES, write_result

from repro.config import EvaluationParams, ScoreParams
from repro.core.aggregation import AGGREGATORS
from repro.core.recommender import Recommender
from repro.eval import LinkPredictionProtocol
from repro.eval.metrics import rank_of_target

PARAMS = ScoreParams(beta=0.0005, alpha=0.85)


def test_ablation_aggregation_rules(benchmark, twitter_graph, web_sim):
    protocol = LinkPredictionProtocol(
        twitter_graph,
        EvaluationParams(test_size=min(40, TEST_EDGES), num_negatives=500),
        seed=17)
    recommender = Recommender(protocol.graph, web_sim, PARAMS)
    # the full multi-topic label of each removed edge, from the
    # original (pre-removal) graph
    queries = [
        (edge, sorted(twitter_graph.edge_topics(edge.source, edge.target)))
        for edge in protocol.test_edges
    ]

    def run():
        ranks = {name: [] for name in AGGREGATORS}
        for edge, topics in queries:
            state = recommender.state_for(edge.source, topics)
            pool = protocol._candidates[edge]
            pool_set = set(pool)
            lists = {
                topic: {
                    node: value
                    for node, value in state.scores.get(topic, {}).items()
                    if node in pool_set
                }
                for topic in topics
            }
            for name, rule in AGGREGATORS.items():
                fused = rule(lists)
                ranks[name].append(rank_of_target(fused, edge.target, pool))
        return {
            name: sum(1 for r in values if r <= 10) / len(values)
            for name, values in ranks.items()
        }

    recalls = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Ablation — recall@10 by aggregation rule (multi-topic queries)",
             f"  {'rule':10s} {'recall@10':>10s}"]
    for name in sorted(recalls):
        lines.append(f"  {name:10s} {recalls[name]:10.3f}")
    write_result("ablation_aggregation", "\n".join(lines) + "\n")

    # No rule should be catastrophically worse than the paper's default
    # on this task; all operate on the same per-topic lists.
    baseline = recalls["weighted"]
    for name, value in recalls.items():
        assert value >= baseline - 0.25, name
