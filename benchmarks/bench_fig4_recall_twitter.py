"""Figure 4 — recall@N on Twitter: Tr vs Katz vs TwitterRank vs the
Tr−auth / Tr−sim ablations.

Paper shape to reproduce (2.2M-node crawl):

- Tr best at every N (top-1: 34% vs Katz 29% vs TwitterRank 4%);
- Katz clearly second;
- TwitterRank an order of magnitude behind at small N;
- both ablations sit between Katz and full Tr.
"""

from _linkpred_runs import five_method_curves, recall_table
from conftest import write_result


def test_fig4_recall_at_n_twitter(benchmark, twitter_graph, web_sim,
                                  paper_params, eval_params):
    curves = benchmark.pedantic(
        five_method_curves,
        args=("twitter", twitter_graph, web_sim, paper_params, eval_params),
        rounds=1, iterations=1)

    text = ("Figure 4 — recall@N (Twitter)\n"
            + recall_table(curves) + "\n")
    write_result("fig4_recall_twitter", text)

    # Who-wins shape (paper: Tr > Katz >> TwitterRank at top-10)
    assert curves["Tr"].recall_at(10) >= curves["Katz"].recall_at(10)
    assert curves["Tr"].recall_at(10) > curves["TwitterRank"].recall_at(10)
    assert curves["Katz"].recall_at(20) > curves["TwitterRank"].recall_at(20)
    # Ablations: full Tr at least matches each single-ingredient variant
    assert curves["Tr"].recall_at(20) >= curves["Tr-auth"].recall_at(20) - 0.05
    assert curves["Tr"].recall_at(20) >= curves["Tr-sim"].recall_at(20) - 0.05
