"""Figure 6 — recall@N on DBLP.

Paper shape: recall rises faster than on Twitter for Tr and Katz (the
self-citation phenomenon leaves many alternative short paths), while
TwitterRank — popularity-driven — does slightly worse than on Twitter.
"""

from _linkpred_runs import five_method_curves, recall_table
from conftest import write_result


def test_fig6_recall_at_n_dblp(benchmark, dblp_graph, dblp_sim,
                               paper_params, eval_params):
    curves = benchmark.pedantic(
        five_method_curves,
        args=("dblp", dblp_graph, dblp_sim, paper_params, eval_params),
        rounds=1, iterations=1)

    text = ("Figure 6 — recall@N (DBLP)\n"
            + recall_table(curves) + "\n")
    write_result("fig6_recall_dblp", text)

    assert curves["Tr"].recall_at(10) >= curves["TwitterRank"].recall_at(10)
    assert curves["Katz"].recall_at(10) >= curves["TwitterRank"].recall_at(10)
