"""Extension bench — network cost of distributed recommendation
(paper §6 future work: partition the graph and place landmarks so that
scores are evaluated "locally", minimising network transfer).

Compares the three partitioners at 4 partitions on identical queries:
edge-cut quality, propagation messages, and landmark-list transfer.
Answers are partition-invariant (asserted), so the only thing at stake
is traffic.
"""

from conftest import write_result

from repro.config import LandmarkParams, ScoreParams
from repro.datasets import generate_twitter_graph
from repro.distributed import (
    DistributedLandmarkService,
    edge_cut_fraction,
    greedy_partition,
    hash_partition,
    topic_partition,
)
from repro.landmarks import LandmarkIndex, select_landmarks

TOPIC = "technology"
NUM_PARTS = 4
PARAMS = ScoreParams(beta=0.0005, alpha=0.85)


def test_ext_distributed_transfer_costs(benchmark, web_sim):
    graph = generate_twitter_graph(2000, seed=321)
    landmarks = select_landmarks(graph, "In-Deg", 30, rng=5)
    index = LandmarkIndex.build(
        graph, landmarks, [TOPIC], web_sim, params=PARAMS,
        landmark_params=LandmarkParams(num_landmarks=30, top_n=100))
    partitioners = {
        "hash": hash_partition(graph, NUM_PARTS),
        "greedy": greedy_partition(graph, NUM_PARTS, seed=5),
        "topic": topic_partition(graph, NUM_PARTS),
    }
    queries = [n for n in graph.nodes()
               if graph.out_degree(n) >= 3
               and n not in set(landmarks)][:15]

    def run():
        rows = {}
        reference = None
        for name, assignment in partitioners.items():
            service = DistributedLandmarkService(
                graph, assignment, web_sim, index)
            messages = 0
            entries = 0
            answers = []
            for query in queries:
                response = service.recommend(query, TOPIC, top_n=10)
                messages += response.cost.propagation.remote_values
                entries += response.cost.entries_transferred
                answers.append([n for n, _ in response])
            if reference is None:
                reference = answers
            else:
                assert answers == reference  # partition-invariant
            rows[name] = (edge_cut_fraction(graph, assignment),
                          messages / len(queries),
                          entries / len(queries))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Extension — distributed query cost by partitioner "
             f"({NUM_PARTS} partitions, {len(queries)} queries)",
             f"  {'partitioner':12s} {'edge cut':>9s} "
             f"{'msgs/query':>11s} {'entries/query':>14s}"]
    for name, (cut, messages, entries) in rows.items():
        lines.append(f"  {name:12s} {cut:9.3f} {messages:11.1f} "
                     f"{entries:14.1f}")
    write_result("ext_distributed_transfer", "\n".join(lines) + "\n")

    # connectivity-aware partitioning must beat the hash baseline on
    # propagation traffic, mirroring its edge-cut advantage.
    assert rows["greedy"][0] < rows["hash"][0]
    assert rows["greedy"][1] < rows["hash"][1]
    assert rows["topic"][1] < rows["hash"][1]
