"""Figure 9 — recall@10 by topic popularity (social/leisure/technology).

Paper shape: the *less* popular the topic, the better the recall — for
the rare topic ``social`` the paper reports 0.959 / 0.751 / 0.253 for
Tr / Katz / TwitterRank, against 0.462 / 0.424 / 0.09 for the popular
``technology``; and Tr (which exploits semantic similarity between
topics) wins on every slice.
"""

from conftest import write_result

from repro.baselines import TwitterRank
from repro.config import EvaluationParams
from repro.core.recommender import Recommender
from repro.eval import (
    LinkPredictionProtocol,
    katz_scorer,
    tr_scorer,
    twitterrank_scorer,
)
from repro.eval.slices import topic_slice_filter

TOPICS = ("social", "leisure", "technology")


def test_fig9_topic_popularity(benchmark, twitter_graph, web_sim,
                               paper_params):
    def run():
        results = {}
        for topic in TOPICS:
            protocol = LinkPredictionProtocol(
                twitter_graph,
                EvaluationParams(test_size=40, num_negatives=1000,
                                 k_in=1, k_out=1),
                seed=9, edge_filter=topic_slice_filter(topic),
                forced_topic=topic)
            working = protocol.graph
            curves = protocol.run({
                "Tr": tr_scorer(Recommender(working, web_sim, paper_params)),
                "Katz": katz_scorer(working, paper_params),
                "TwitterRank": twitterrank_scorer(TwitterRank(working)),
            })
            results[topic] = {
                name: curve.recall_at(10) for name, curve in curves.items()}
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Figure 9 — recall@10 by topic popularity (Twitter)",
             f"  {'topic':12s} {'Tr':>7s} {'Katz':>7s} {'TwitterRank':>12s}"]
    for topic in TOPICS:
        row = results[topic]
        lines.append(f"  {topic:12s} {row['Tr']:7.3f} {row['Katz']:7.3f} "
                     f"{row['TwitterRank']:12.3f}")
    write_result("fig9_topic_popularity", "\n".join(lines) + "\n")

    # Tr wins on every topic slice (the paper's second conclusion).
    for topic in TOPICS:
        assert results[topic]["Tr"] >= results[topic]["Katz"] - 0.05
        assert results[topic]["Tr"] >= results[topic]["TwitterRank"]
    # Rare topic easier than popular topic for the path-based methods.
    assert results["social"]["Tr"] >= results["technology"]["Tr"] - 0.05
