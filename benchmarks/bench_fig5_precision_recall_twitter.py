"""Figure 5 — precision vs recall on Twitter.

Same protocol run as Figure 4, re-plotted. Paper shape: for recall
beyond ~0.4, Tr's precision is at least twice Katz's and an order of
magnitude above TwitterRank's.
"""

from _linkpred_runs import five_method_curves, precision_recall_table
from conftest import write_result


def test_fig5_precision_recall_twitter(benchmark, twitter_graph, web_sim,
                                       paper_params, eval_params):
    curves = benchmark.pedantic(
        five_method_curves,
        args=("twitter", twitter_graph, web_sim, paper_params, eval_params),
        rounds=1, iterations=1)

    text = ("Figure 5 — precision vs recall (Twitter)\n"
            + precision_recall_table(curves) + "\n")
    write_result("fig5_precision_recall_twitter", text)

    # At matched N, Tr dominates TwitterRank on precision.
    for n in (5, 10, 20):
        assert curves["Tr"].precision_at(n) >= \
            curves["TwitterRank"].precision_at(n)
