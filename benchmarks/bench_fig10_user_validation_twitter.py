"""Figure 10 — simulated user validation on Twitter.

Paper shape (54-judge panel, topics technology/social/leisure):

- ``social`` gives homogeneous, middling marks (2.7-2.9 for all three
  methods — the posts are ambiguous);
- on the clearer topics, the content-aware methods (Tr, TwitterRank)
  out-rate Katz;
- Tr leads on the medium-popularity topic (leisure), TwitterRank is
  competitive on the most popular topic (technology).

The judge panel is simulated (see DESIGN.md substitutions); what must
hold is the comparative outcome, primarily Tr/TwitterRank > Katz on
topical relevance.
"""

from conftest import write_result

from repro.baselines import TwitterRank
from repro.core.katz import katz_rank
from repro.core.recommender import Recommender
from repro.eval.userstudy import JudgePanel, run_twitter_study

TOPICS = ("technology", "social", "leisure")


def test_fig10_user_validation(benchmark, twitter_graph, web_sim,
                               paper_params):
    recommender = Recommender(twitter_graph, web_sim, paper_params)
    twitterrank = TwitterRank(twitter_graph)

    def tr_method(user, topic, k):
        return [r.node for r in recommender.recommend(user, topic, top_n=k)]

    def katz_method(user, topic, k):
        return [n for n, _ in katz_rank(twitter_graph, user, paper_params,
                                        top_n=k)]

    def twr_method(user, topic, k):
        return [n for n, _ in twitterrank.recommend(user, topic, top_n=k)]

    methods = {"Katz": katz_method, "Tr": tr_method,
               "TwitterRank": twr_method}

    result = benchmark.pedantic(
        run_twitter_study,
        args=(twitter_graph, web_sim, methods),
        kwargs={"topics": TOPICS, "panel": JudgePanel(size=54, seed=10),
                "num_query_users": 8, "seed": 10},
        rounds=1, iterations=1)

    lines = ["Figure 10 — mean relevance marks (simulated 54-judge panel)",
             f"  {'topic':12s} {'Katz':>6s} {'Tr':>6s} {'TwitterRank':>12s}"]
    for topic in TOPICS:
        lines.append(
            f"  {topic:12s} {result.mark('Katz', topic):6.2f} "
            f"{result.mark('Tr', topic):6.2f} "
            f"{result.mark('TwitterRank', topic):12.2f}")
    lines.append(f"  {'overall':12s} {result.overall('Katz'):6.2f} "
                 f"{result.overall('Tr'):6.2f} "
                 f"{result.overall('TwitterRank'):12.2f}")
    write_result("fig10_user_validation_twitter", "\n".join(lines) + "\n")

    # Content-aware Tr out-rates purely topological Katz on average.
    assert result.overall("Tr") >= result.overall("Katz")
    # Every mark stays on the 1-5 scale.
    for method in methods:
        for topic in TOPICS:
            assert 1.0 <= result.mark(method, topic) <= 5.0
