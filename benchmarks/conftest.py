"""Shared benchmark infrastructure.

Every bench reproduces one table or figure of the paper. The computed
rows are written to ``benchmarks/results/<experiment>.txt`` and echoed
in the terminal summary, so ``pytest benchmarks/ --benchmark-only``
leaves both a timing table (pytest-benchmark) and the reproduced
numbers behind.

Scale knobs (environment variables):

- ``REPRO_BENCH_TWITTER_NODES`` (default 4000)
- ``REPRO_BENCH_DBLP_AUTHORS``  (default 1000)
- ``REPRO_BENCH_TEST_EDGES``    (default 60)

The paper ran on 2.2M users; the defaults here keep the full suite in
minutes while preserving the comparative shapes (see DESIGN.md §2).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro import ScoreParams, SimilarityMatrix, dblp_taxonomy, web_taxonomy
from repro.config import EvaluationParams
from repro.datasets import generate_dblp_dataset, generate_twitter_dataset

RESULTS_DIR = Path(__file__).parent / "results"

TWITTER_NODES = int(os.environ.get("REPRO_BENCH_TWITTER_NODES", "4000"))
DBLP_AUTHORS = int(os.environ.get("REPRO_BENCH_DBLP_AUTHORS", "1000"))
TEST_EDGES = int(os.environ.get("REPRO_BENCH_TEST_EDGES", "60"))

#: The paper's decay factors (Section 5.2).
PAPER_PARAMS = ScoreParams(beta=0.0005, alpha=0.85)

_written: list[Path] = []


def write_result(name: str, text: str) -> Path:
    """Persist one experiment's rows and register them for the summary."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text, encoding="utf-8")
    _written.append(path)
    return path


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Echo every result file produced during this run."""
    if not _written:
        return
    terminalreporter.section("reproduced tables & figures")
    for path in _written:
        terminalreporter.write_line(f"--- {path.name} " + "-" * 40)
        for line in path.read_text(encoding="utf-8").splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def twitter_dataset():
    return generate_twitter_dataset(TWITTER_NODES, seed=2016,
                                    with_tweets=False)


@pytest.fixture(scope="session")
def twitter_graph(twitter_dataset):
    return twitter_dataset.graph


@pytest.fixture(scope="session")
def dblp_dataset():
    return generate_dblp_dataset(DBLP_AUTHORS, seed=2016)


@pytest.fixture(scope="session")
def dblp_graph(dblp_dataset):
    return dblp_dataset.graph


@pytest.fixture(scope="session")
def web_sim():
    return SimilarityMatrix.from_taxonomy(web_taxonomy())


@pytest.fixture(scope="session")
def dblp_sim():
    return SimilarityMatrix.from_taxonomy(dblp_taxonomy())


@pytest.fixture(scope="session")
def paper_params():
    return PAPER_PARAMS


@pytest.fixture(scope="session")
def eval_params():
    return EvaluationParams(test_size=TEST_EDGES, num_negatives=1000)
