"""Table 5 — landmark selection and precompute times per strategy.

Paper shape: random / band strategies select in ~2ms per landmark;
degree-weighted sampling costs ~100-1000x more; coverage/centrality
strategies are the slowest by further orders of magnitude. The
Algorithm-1 precompute time per landmark is essentially strategy-
independent (the paper's 12-15 minutes on the 2.2M-node crawl).
"""

import pytest
from conftest import write_result

from repro.config import LandmarkParams
from repro.core.fast import scipy_available
from repro.eval.landmarks_eval import time_selection_strategies
from repro.landmarks import LandmarkIndex, select_landmarks
from repro.landmarks.selection import STRATEGIES
from repro.obs.clock import Stopwatch


def test_table5_selection_and_precompute_times(benchmark, twitter_graph,
                                               web_sim, paper_params):
    rows = benchmark.pedantic(
        time_selection_strategies,
        args=(twitter_graph, ["technology"], web_sim),
        kwargs={"num_landmarks": 20, "params": paper_params,
                "precompute_sample": 3, "seed": 12},
        rounds=1, iterations=1)

    lines = ["Table 5 — landmark selection / precompute per strategy",
             f"  {'strategy':10s} {'select (ms)':>12s} {'compute (s)':>12s}"]
    by_name = {}
    for row in rows:
        by_name[row.strategy] = row
        lines.append(f"  {row.strategy:10s} {row.select_ms_per_landmark:12.3f} "
                     f"{row.precompute_s_per_landmark:12.4f}")
    write_result("table5_landmark_build", "\n".join(lines) + "\n")

    assert set(by_name) == set(STRATEGIES)
    # Coverage strategies are much slower to select than Random.
    assert by_name["Central"].select_ms_per_landmark > \
        5 * by_name["Random"].select_ms_per_landmark
    # Precompute time is roughly strategy-independent (within 25x —
    # the paper observes 12-15 min across strategies).
    computes = [row.precompute_s_per_landmark for row in rows
                if row.precompute_s_per_landmark > 0]
    assert max(computes) < 25 * min(computes)


NUM_LANDMARKS = 100


@pytest.mark.skipif(not scipy_available(), reason="scipy not installed")
def test_table5_engine_speedup(benchmark, twitter_graph, web_sim,
                               paper_params):
    """Algorithm 1 at paper scale (|L| = 100): batched multi-source CSR
    propagation vs the serial dict reference engine."""
    landmarks = select_landmarks(twitter_graph, "Random", NUM_LANDMARKS,
                                 rng=12)
    landmark_params = LandmarkParams(num_landmarks=NUM_LANDMARKS, top_n=100)

    def build(engine):
        watch = Stopwatch()
        with watch:
            index = LandmarkIndex.build(
                twitter_graph, landmarks, ["technology"], web_sim,
                params=paper_params, landmark_params=landmark_params,
                engine=engine)
        return index, watch.elapsed

    def run():
        sparse_index, sparse_total = build("sparse")
        dict_index, dict_total = build("dict")
        # identical inverted lists (same nodes, scores within 1e-9)
        for landmark in landmarks:
            ours = sparse_index.recommendations(landmark, "technology")
            theirs = dict_index.recommendations(landmark, "technology")
            assert [e.node for e in ours] == [e.node for e in theirs]
            for a, b in zip(ours, theirs):
                assert a.score == pytest.approx(b.score, abs=1e-9)
        return (sparse_index.stats()["mean_build_seconds"], sparse_total,
                dict_index.stats()["mean_build_seconds"], dict_total)

    sparse_mean, sparse_total, dict_mean, dict_total = benchmark.pedantic(
        run, rounds=1, iterations=1)
    speedup = dict_mean / sparse_mean if sparse_mean > 0 else float("inf")

    lines = [f"Table 5 ext — Algorithm 1 engines ({NUM_LANDMARKS} landmarks)",
             f"  {'engine':8s} {'s/landmark':>12s} {'total (s)':>12s}",
             f"  {'sparse':8s} {sparse_mean:12.4f} {sparse_total:12.2f}",
             f"  {'dict':8s} {dict_mean:12.4f} {dict_total:12.2f}",
             f"  per-landmark speedup  {speedup:8.1f}x"]
    write_result("table5_engine_speedup", "\n".join(lines) + "\n")

    # the whole point of the batched engine
    assert speedup >= 3.0
