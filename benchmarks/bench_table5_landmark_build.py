"""Table 5 — landmark selection and precompute times per strategy.

Paper shape: random / band strategies select in ~2ms per landmark;
degree-weighted sampling costs ~100-1000x more; coverage/centrality
strategies are the slowest by further orders of magnitude. The
Algorithm-1 precompute time per landmark is essentially strategy-
independent (the paper's 12-15 minutes on the 2.2M-node crawl).
"""

from conftest import write_result

from repro.eval.landmarks_eval import time_selection_strategies
from repro.landmarks.selection import STRATEGIES


def test_table5_selection_and_precompute_times(benchmark, twitter_graph,
                                               web_sim, paper_params):
    rows = benchmark.pedantic(
        time_selection_strategies,
        args=(twitter_graph, ["technology"], web_sim),
        kwargs={"num_landmarks": 20, "params": paper_params,
                "precompute_sample": 3, "seed": 12},
        rounds=1, iterations=1)

    lines = ["Table 5 — landmark selection / precompute per strategy",
             f"  {'strategy':10s} {'select (ms)':>12s} {'compute (s)':>12s}"]
    by_name = {}
    for row in rows:
        by_name[row.strategy] = row
        lines.append(f"  {row.strategy:10s} {row.select_ms_per_landmark:12.3f} "
                     f"{row.precompute_s_per_landmark:12.4f}")
    write_result("table5_landmark_build", "\n".join(lines) + "\n")

    assert set(by_name) == set(STRATEGIES)
    # Coverage strategies are much slower to select than Random.
    assert by_name["Central"].select_ms_per_landmark > \
        5 * by_name["Random"].select_ms_per_landmark
    # Precompute time is roughly strategy-independent (within 25x —
    # the paper observes 12-15 min across strategies).
    computes = [row.precompute_s_per_landmark for row in rows
                if row.precompute_s_per_landmark > 0]
    assert max(computes) < 25 * min(computes)
