"""Centrality measures implemented from scratch.

The landmark-selection study (Table 5) contrasts cheap random/degree
strategies against centrality-based ones whose cost the paper quotes as
``O(N² log N + N·E)``. We implement:

- exact betweenness centrality via Brandes' algorithm (the modern
  replacement for the Johnson's-algorithm formulation the paper cites);
- sampled (pivot-based) approximate betweenness, which is what makes
  centrality selection feasible on the benchmark graphs;
- closeness centrality (exact and sampled);
- degree centralities as trivial helpers.

All functions treat the graph as unweighted and directed.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Optional, Sequence

from ..utils.rng import SeedLike, rng_from_seed
from .labeled_graph import LabeledSocialGraph


def _brandes_accumulate(graph: LabeledSocialGraph, source: int,
                        scores: Dict[int, float]) -> None:
    """One source iteration of Brandes' algorithm (directed, unweighted)."""
    sigma: Dict[int, float] = {source: 1.0}
    distance: Dict[int, int] = {source: 0}
    predecessors: Dict[int, list] = {source: []}
    order: list = []
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        order.append(node)
        for neighbor in graph.out_neighbors(node):
            if neighbor not in distance:
                distance[neighbor] = distance[node] + 1
                predecessors[neighbor] = []
                frontier.append(neighbor)
            if distance[neighbor] == distance[node] + 1:
                sigma[neighbor] = sigma.get(neighbor, 0.0) + sigma[node]
                predecessors[neighbor].append(node)
    delta: Dict[int, float] = {node: 0.0 for node in order}
    for node in reversed(order):
        for predecessor in predecessors[node]:
            delta[predecessor] += (
                sigma[predecessor] / sigma[node]) * (1.0 + delta[node])
        if node != source:
            scores[node] = scores.get(node, 0.0) + delta[node]


def betweenness_centrality(graph: LabeledSocialGraph,
                           sources: Optional[Sequence[int]] = None,
                           normalized: bool = True,
                           ) -> Dict[int, float]:
    """(Approximate) betweenness centrality.

    Args:
        graph: The social graph.
        sources: Pivot nodes to run Brandes iterations from. ``None``
            runs from every node (exact betweenness).
        normalized: Divide by ``(n-1)(n-2)`` (directed normalisation),
            scaled by the pivot fraction when sampling.

    Returns:
        Mapping node → centrality (nodes never on a shortest path get 0).
    """
    nodes = list(graph.nodes())
    scores: Dict[int, float] = {node: 0.0 for node in nodes}
    pivots = nodes if sources is None else list(sources)
    for source in pivots:
        _brandes_accumulate(graph, source, scores)
    if normalized:
        n = len(nodes)
        scale = (n - 1) * (n - 2)
        if scale > 0:
            # When sampling pivots, extrapolate to the full-source sum.
            correction = len(nodes) / len(pivots) if pivots else 1.0
            factor = correction / scale
            scores = {node: value * factor for node, value in scores.items()}
    return scores


def sampled_betweenness(graph: LabeledSocialGraph, num_pivots: int,
                        seed: SeedLike = None) -> Dict[int, float]:
    """Betweenness estimated from *num_pivots* random pivot sources."""
    rng = rng_from_seed(seed)
    nodes = list(graph.nodes())
    if num_pivots >= len(nodes):
        pivots: Sequence[int] = nodes
    else:
        pivots = rng.sample(nodes, num_pivots)
    return betweenness_centrality(graph, sources=pivots)


def closeness_centrality(graph: LabeledSocialGraph,
                         nodes: Optional[Iterable[int]] = None,
                         direction: str = "out") -> Dict[int, float]:
    """Harmonic-free classical closeness with Wasserman–Faust correction.

    For node ``u`` with ``r`` reachable nodes at total distance ``s``:
    ``closeness(u) = ((r) / (n - 1)) * (r / s)``, the standard directed
    definition on possibly-disconnected graphs. Nodes reaching nothing
    get 0.
    """
    from .traversal import bfs_levels

    node_list = list(graph.nodes()) if nodes is None else list(nodes)
    n = graph.num_nodes
    result: Dict[int, float] = {}
    for node in node_list:
        distances = bfs_levels(graph, node, direction=direction)
        reachable = len(distances) - 1
        total = sum(distances.values())  # repro: ignore[R2] -- BFS hop counts are integers; the sum is exact in any order
        if reachable > 0 and total > 0 and n > 1:
            result[node] = (reachable / (n - 1)) * (reachable / total)
        else:
            result[node] = 0.0
    return result


def degree_centrality(graph: LabeledSocialGraph,
                      direction: str = "in") -> Dict[int, float]:
    """Degree centrality normalised by ``n - 1``."""
    n = graph.num_nodes
    scale = 1.0 / (n - 1) if n > 1 else 0.0
    if direction == "in":
        return {node: graph.in_degree(node) * scale for node in graph.nodes()}
    if direction == "out":
        return {node: graph.out_degree(node) * scale for node in graph.nodes()}
    raise ValueError(f"direction must be 'in' or 'out', got {direction!r}")
