"""Graph exploration primitives: BFS levels, k-vicinity, path iteration.

The paper's Algorithm 1 explores the out-direction of the follow graph
("u trusts his friends, the friends of his friends..."), so every
traversal here defaults to out-edges; the evaluation and centrality code
also needs the reverse direction, selected with ``direction="in"``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Sequence, Set, Tuple

from ..errors import ConfigurationError
from .labeled_graph import LabeledSocialGraph


def _neighbor_fn(graph: LabeledSocialGraph, direction: str):
    if direction == "out":
        return graph.out_neighbors
    if direction == "in":
        return graph.in_neighbors
    raise ConfigurationError(f"direction must be 'out' or 'in', got {direction!r}")


def bfs_levels(graph: LabeledSocialGraph, source: int,
               max_depth: int | None = None,
               direction: str = "out") -> Dict[int, int]:
    """Breadth-first distances from *source*.

    Returns:
        Mapping node → hop distance, including ``source`` at distance 0.
        Nodes beyond *max_depth* (when given) are omitted.
    """
    neighbors = _neighbor_fn(graph, direction)
    distances = {source: 0}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        depth = distances[node]
        if max_depth is not None and depth >= max_depth:
            continue
        for neighbor in neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = depth + 1
                frontier.append(neighbor)
    return distances


def k_vicinity(graph: LabeledSocialGraph, source: int, k: int,
               direction: str = "out") -> Set[int]:
    """The k-vicinity Υ_k: nodes reachable within *k* hops, source excluded."""
    distances = bfs_levels(graph, source, max_depth=k, direction=direction)
    return {node for node, depth in distances.items() if 0 < depth <= k}


def reachable_set(graph: LabeledSocialGraph, source: int,
                  direction: str = "out") -> Set[int]:
    """Υ_∞: every node reachable from *source* (source excluded)."""
    distances = bfs_levels(graph, source, direction=direction)
    del distances[source]
    return set(distances)


def shortest_path_lengths(graph: LabeledSocialGraph, source: int,
                          direction: str = "out") -> Dict[int, int]:
    """Alias of :func:`bfs_levels` without a depth cap, for readability."""
    return bfs_levels(graph, source, direction=direction)


def enumerate_walks(graph: LabeledSocialGraph, source: int, target: int,
                    max_length: int) -> Iterator[List[int]]:
    """Yield every walk (paths possibly revisiting nodes) source → target.

    The recommendation score of Definition 1 sums over *all* paths in
    the walk sense (cycles contribute, damped by β), so the reference
    brute-force used to validate the power iteration must enumerate
    walks, not simple paths. Exponential — test-sized graphs only.
    """
    if max_length < 1:
        return
    stack: List[Tuple[List[int]]] = [[source]]
    while stack:
        walk = stack.pop()
        if len(walk) - 1 >= max_length:
            continue
        for neighbor in graph.out_neighbors(walk[-1]):
            extended = walk + [neighbor]
            if neighbor == target:
                yield extended
            stack.append(extended)


def weakly_connected_components(graph: LabeledSocialGraph) -> List[Set[int]]:
    """Weakly-connected components (direction ignored)."""
    seen: Set[int] = set()
    components: List[Set[int]] = []
    for start in graph.nodes():
        if start in seen:
            continue
        component = {start}
        frontier = deque([start])
        while frontier:
            node = frontier.popleft()
            for neighbor in graph.out_neighbors(node):
                if neighbor not in component:
                    component.add(neighbor)
                    frontier.append(neighbor)
            for neighbor in graph.in_neighbors(node):
                if neighbor not in component:
                    component.add(neighbor)
                    frontier.append(neighbor)
        seen |= component
        components.append(component)
    return components


def sample_pairs_within_distance(graph: LabeledSocialGraph,
                                 sources: Sequence[int], k: int,
                                 direction: str = "out",
                                 ) -> Dict[int, Set[int]]:
    """For each source, its k-vicinity — bulk helper for coverage metrics."""
    return {
        source: k_vicinity(graph, source, k, direction=direction)
        for source in sources
    }
