"""Pluggable array storage for :class:`~repro.graph.snapshot.GraphSnapshot`.

A snapshot is, at bottom, a dozen parallel ``int64`` arrays (CSR out/in
adjacency with interned edge labels, node ids, publisher-profile and
per-topic follower-count CSRs) plus a small amount of header metadata
(epoch, topic vocabulary, label interning table, per-topic maxima).
This module owns that representation on disk and in memory:

- :class:`SnapshotHeader` — the versioned ``header.json`` metadata with
  per-array dtype/length/checksum records;
- :class:`SnapshotWriter` — chunked, resumable appends into the raw
  ``<name>.bin`` array files (the streaming generator writes through
  this without ever holding a full edge list);
- :class:`ArrayStore` and its two backends:
  :class:`RamArrayStore` (arrays loaded eagerly with ``np.fromfile``)
  and :class:`MmapArrayStore` (arrays opened lazily as read-only
  ``np.memmap`` views, so slicing pages in only what is touched);
- lazy read-side structures (:class:`ContiguousPositions`,
  :class:`CsrSetSequence`, :class:`CsrCountsSequence`) that decode the
  profile/follower CSRs on access instead of materialising per-node
  Python objects for the whole graph.

The on-disk layout is one directory::

    <dir>/header.json      # SnapshotHeader (written last, atomically)
    <dir>/<array>.bin      # raw little-endian int64, C order

Both backends expose bitwise-identical arrays, which is what keeps the
RAM-vs-mmap parity guarantees of the scorers trivially true: every
engine reads the same bytes either way.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import (IO, Dict, Iterator, List, Mapping, Optional, Sequence,
                    Tuple, Union)

import numpy as np

from ..errors import SnapshotFormatError

PathLike = Union[str, Path]

#: The on-disk format marker in ``header.json``.
SNAPSHOT_FORMAT = "repro-snapshot"
#: Current layout version; bump on any incompatible change.
SNAPSHOT_VERSION = 1

#: Every array a snapshot directory must contain, in canonical order.
ARRAY_NAMES: Tuple[str, ...] = (
    "node_ids",
    "out_indptr", "out_indices", "out_label_ids",
    "in_indptr", "in_indices", "in_label_ids",
    "prof_indptr", "prof_topic_ids",
    "fol_indptr", "fol_topic_ids", "fol_counts",
)

#: The single supported array dtype (explicit-endian so headers are
#: portable across machines).
ARRAY_DTYPE = "<i8"
_ITEMSIZE = np.dtype(ARRAY_DTYPE).itemsize

_HEADER_NAME = "header.json"
_VERIFY_CHUNK_BYTES = 1 << 22  # 4 MiB reads during full verification


def _array_path(directory: Path, name: str) -> Path:
    return directory / f"{name}.bin"


@dataclass(frozen=True)
class ArraySpec:
    """Header record for one persisted array."""

    dtype: str
    count: int
    crc32: int

    @property
    def nbytes(self) -> int:
        """Exact file size the array must occupy on disk."""
        return self.count * _ITEMSIZE


@dataclass(frozen=True)
class SnapshotHeader:
    """Validated metadata of one on-disk snapshot directory.

    ``labels`` is the interning table as topic-*id* lists (indexed by
    label id, ids into ``topics``), so the header stays compact even
    for graphs with millions of edges.
    """

    epoch: int
    num_nodes: int
    num_edges: int
    contiguous_ids: bool
    topics: Tuple[str, ...]
    labels: Tuple[Tuple[int, ...], ...]
    max_followers: Dict[str, int]
    arrays: Dict[str, ArraySpec] = field(default_factory=dict)

    def to_json(self) -> str:
        """Serialise to the ``header.json`` document."""
        payload = {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "epoch": self.epoch,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "contiguous_ids": self.contiguous_ids,
            "topics": list(self.topics),
            "labels": [list(ids) for ids in self.labels],
            "max_followers": {t: self.max_followers[t]
                              for t in sorted(self.max_followers)},
            "arrays": {
                name: {"dtype": spec.dtype, "count": spec.count,
                       "crc32": spec.crc32}
                for name, spec in sorted(self.arrays.items())
            },
        }
        return json.dumps(payload, indent=1, sort_keys=True)

    @classmethod
    def from_json(cls, text: str, path: object) -> "SnapshotHeader":
        """Parse and validate a ``header.json`` document.

        Raises:
            SnapshotFormatError: malformed JSON, wrong format marker or
                version, missing/extra arrays, or an unsupported dtype.
        """
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise SnapshotFormatError(path, f"unparsable header: {exc}")
        if not isinstance(payload, dict):
            raise SnapshotFormatError(path, "header is not a JSON object")
        if payload.get("format") != SNAPSHOT_FORMAT:
            raise SnapshotFormatError(
                path, f"not a {SNAPSHOT_FORMAT} directory "
                      f"(format={payload.get('format')!r})")
        if payload.get("version") != SNAPSHOT_VERSION:
            raise SnapshotFormatError(
                path, f"unsupported snapshot version "
                      f"{payload.get('version')!r} "
                      f"(this build reads version {SNAPSHOT_VERSION})")
        try:
            raw_arrays = payload["arrays"]
            arrays = {
                name: ArraySpec(dtype=str(spec["dtype"]),
                                count=int(spec["count"]),
                                crc32=int(spec["crc32"]))
                for name, spec in raw_arrays.items()
            }
            header = cls(
                epoch=int(payload["epoch"]),
                num_nodes=int(payload["num_nodes"]),
                num_edges=int(payload["num_edges"]),
                contiguous_ids=bool(payload["contiguous_ids"]),
                topics=tuple(str(t) for t in payload["topics"]),
                labels=tuple(tuple(int(i) for i in ids)
                             for ids in payload["labels"]),
                max_followers={str(t): int(c) for t, c
                               in payload["max_followers"].items()},
                arrays=arrays,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotFormatError(path, f"incomplete header: {exc!r}")
        missing = sorted(set(ARRAY_NAMES) - set(arrays))
        if missing:
            raise SnapshotFormatError(
                path, f"header lists no spec for arrays {missing}")
        extra = sorted(set(arrays) - set(ARRAY_NAMES))
        if extra:
            raise SnapshotFormatError(
                path, f"header lists unknown arrays {extra}")
        for name, spec in arrays.items():
            if spec.dtype != ARRAY_DTYPE:
                raise SnapshotFormatError(
                    path, f"array {name!r} has unsupported dtype "
                          f"{spec.dtype!r} (expected {ARRAY_DTYPE!r})")
            if spec.count < 0:
                raise SnapshotFormatError(
                    path, f"array {name!r} has negative count {spec.count}")
        expected_counts = {
            "out_indptr": header.num_nodes + 1,
            "in_indptr": header.num_nodes + 1,
            "prof_indptr": header.num_nodes + 1,
            "fol_indptr": header.num_nodes + 1,
            "node_ids": header.num_nodes,
            "out_indices": header.num_edges,
            "out_label_ids": header.num_edges,
            "in_indices": header.num_edges,
            "in_label_ids": header.num_edges,
        }
        for name, count in expected_counts.items():
            if arrays[name].count != count:
                raise SnapshotFormatError(
                    path, f"array {name!r} has {arrays[name].count} "
                          f"entries, header geometry implies {count}")
        return header

    def total_bytes(self) -> int:
        """Sum of all array file sizes (the in-RAM equivalent floor)."""
        # Integer byte counts: order-independent, but keep the
        # iteration deterministic anyway.
        return sum(sorted(spec.nbytes for spec in self.arrays.values()))


def read_header(path: PathLike) -> SnapshotHeader:
    """Load and validate ``header.json`` of a snapshot directory.

    Raises:
        SnapshotFormatError: missing or invalid header.
    """
    directory = Path(path)
    header_path = directory / _HEADER_NAME
    try:
        text = header_path.read_text(encoding="utf-8")
    except OSError as exc:
        raise SnapshotFormatError(
            directory, f"missing or unreadable {_HEADER_NAME}: {exc}")
    return SnapshotHeader.from_json(text, directory)


def _check_file_sizes(directory: Path, header: SnapshotHeader) -> None:
    for name, spec in header.arrays.items():
        file_path = _array_path(directory, name)
        try:
            actual = file_path.stat().st_size
        except OSError as exc:
            raise SnapshotFormatError(
                directory, f"array file {name}.bin is unreadable: {exc}")
        if actual != spec.nbytes:
            raise SnapshotFormatError(
                directory,
                f"array file {name}.bin is {actual} bytes, header "
                f"declares {spec.count} x {spec.dtype} = {spec.nbytes}")


def verify_snapshot(path: PathLike) -> SnapshotHeader:
    """Fully verify a snapshot directory (sizes *and* checksums).

    Reads every array file in bounded chunks and compares its CRC-32
    against the header record; much slower than :func:`read_header` +
    size checks, so it is opt-in (``open_snapshot(..., verify=True)``).

    Raises:
        SnapshotFormatError: any structural or checksum mismatch.
    """
    directory = Path(path)
    header = read_header(directory)
    _check_file_sizes(directory, header)
    for name, spec in header.arrays.items():
        crc = 0
        with _array_path(directory, name).open("rb") as handle:
            for chunk in iter(lambda h=handle: h.read(_VERIFY_CHUNK_BYTES),
                              b""):
                crc = zlib.crc32(chunk, crc)
        if crc != spec.crc32:
            raise SnapshotFormatError(
                directory,
                f"array file {name}.bin failed checksum validation "
                f"(crc32 {crc} != header {spec.crc32})")
    return header


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------
class _ArrayProgress:
    """Mutable append state of one array file."""

    __slots__ = ("handle", "count", "crc")

    def __init__(self, handle: IO[bytes], count: int, crc: int) -> None:
        self.handle = handle
        self.count = count
        self.crc = crc


class SnapshotWriter:
    """Chunked writer for the on-disk snapshot format.

    Arrays are appended chunk by chunk (any number of calls per array,
    in any interleaving), each chunk folded into a running CRC-32;
    :meth:`finalize` closes the files and writes ``header.json``
    atomically, which is what makes a directory a valid snapshot — a
    crash before finalize leaves no header and therefore no snapshot.

    The append state is checkpointable: :meth:`state` captures every
    array's (count, crc) pair as a JSON-safe dict and :meth:`restore`
    reopens the files truncated back to exactly that point, so the
    streaming generator can resume emission after an interruption
    without rewriting or re-checksumming earlier chunks.
    """

    def __init__(self, path: PathLike) -> None:
        self._directory = Path(path)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._arrays: Dict[str, _ArrayProgress] = {}
        self._finalized = False

    @property
    def directory(self) -> Path:
        """The snapshot directory being written."""
        return self._directory

    def append(self, name: str, values: np.ndarray) -> None:
        """Append *values* (coerced to little-endian int64) to *name*."""
        if name not in ARRAY_NAMES:
            raise SnapshotFormatError(
                self._directory, f"unknown snapshot array {name!r}")
        chunk = np.ascontiguousarray(values, dtype=ARRAY_DTYPE)
        progress = self._arrays.get(name)
        if progress is None:
            handle = _array_path(self._directory, name).open("wb")
            progress = _ArrayProgress(handle, 0, 0)
            self._arrays[name] = progress
        data = chunk.tobytes()
        progress.handle.write(data)
        progress.count += chunk.size
        progress.crc = zlib.crc32(data, progress.crc)

    def state(self) -> Dict[str, Dict[str, int]]:
        """JSON-safe checkpoint of the append progress.

        Pending buffered bytes are flushed first so the recorded counts
        are durable on disk.
        """
        for progress in self._arrays.values():
            progress.handle.flush()
            os.fsync(progress.handle.fileno())
        return {name: {"count": progress.count, "crc32": progress.crc}
                for name, progress in sorted(self._arrays.items())}

    def restore(self, state: Mapping[str, Mapping[str, int]]) -> None:
        """Resume appending from a :meth:`state` checkpoint.

        Every checkpointed file is truncated back to the recorded
        element count (dropping any partially-written tail) and the
        running CRC is restored, so subsequent appends continue as if
        the interruption never happened.
        """
        for name, spec in state.items():
            if name not in ARRAY_NAMES:
                raise SnapshotFormatError(
                    self._directory,
                    f"checkpoint names unknown array {name!r}")
            count = int(spec["count"])
            file_path = _array_path(self._directory, name)
            try:
                handle = file_path.open("r+b")
            except OSError as exc:
                raise SnapshotFormatError(
                    self._directory,
                    f"cannot resume array {name}.bin: {exc}")
            handle.truncate(count * _ITEMSIZE)
            handle.seek(count * _ITEMSIZE)
            self._arrays[name] = _ArrayProgress(
                handle, count, int(spec["crc32"]))

    def count(self, name: str) -> int:
        """Elements appended to *name* so far."""
        progress = self._arrays.get(name)
        return progress.count if progress is not None else 0

    def finalize(self, *, epoch: int, num_nodes: int, num_edges: int,
                 contiguous_ids: bool, topics: Sequence[str],
                 labels: Sequence[Sequence[int]],
                 max_followers: Mapping[str, int]) -> SnapshotHeader:
        """Close all array files and write the header atomically."""
        specs: Dict[str, ArraySpec] = {}
        for name in ARRAY_NAMES:
            progress = self._arrays.get(name)
            if progress is None:
                # An array with no appended chunk is legal (e.g. an
                # edgeless graph): materialise its empty file.
                self.append(name, np.empty(0, dtype=np.int64))
                progress = self._arrays[name]
            specs[name] = ArraySpec(dtype=ARRAY_DTYPE,
                                    count=progress.count,
                                    crc32=progress.crc)
        header = SnapshotHeader(
            epoch=epoch, num_nodes=num_nodes, num_edges=num_edges,
            contiguous_ids=contiguous_ids, topics=tuple(topics),
            labels=tuple(tuple(ids) for ids in labels),
            max_followers=dict(max_followers), arrays=specs)
        self.close()
        tmp_path = self._directory / (_HEADER_NAME + ".tmp")
        tmp_path.write_text(header.to_json() + "\n", encoding="utf-8")
        os.replace(tmp_path, self._directory / _HEADER_NAME)
        self._finalized = True
        # Fail fast if the writer produced a directory this same build
        # cannot read back (geometry bugs surface here, not at open).
        _check_file_sizes(self._directory, read_header(self._directory))
        return header

    def close(self) -> None:
        """Close every open array file (safe to call repeatedly)."""
        for progress in self._arrays.values():
            if not progress.handle.closed:
                progress.handle.flush()
                progress.handle.close()


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------
class ArrayStore:
    """Read-side access to one snapshot directory's arrays.

    Subclasses fix the residency policy: :class:`RamArrayStore` loads
    eagerly into heap arrays, :class:`MmapArrayStore` maps lazily so
    the OS pages data in on first touch. Both return arrays with
    identical dtype, shape and bytes.
    """

    #: Backend tag ("ram" / "mmap") surfaced by the obs gauges.
    backend: str = "abstract"

    def __init__(self, path: PathLike, header: SnapshotHeader) -> None:
        self.path = Path(path)
        self.header = header

    def get(self, name: str) -> np.ndarray:
        """The named array (read-only semantics; never mutate)."""
        raise NotImplementedError

    def bytes_resident(self) -> int:
        """Array bytes guaranteed to occupy private process memory."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(path={str(self.path)!r}, "
                f"nodes={self.header.num_nodes}, "
                f"edges={self.header.num_edges})")


class RamArrayStore(ArrayStore):
    """Backend that loads every array eagerly into process memory."""

    backend = "ram"

    def __init__(self, path: PathLike, header: SnapshotHeader) -> None:
        super().__init__(path, header)
        self._arrays: Dict[str, np.ndarray] = {
            name: np.fromfile(_array_path(self.path, name),
                              dtype=ARRAY_DTYPE)
            for name in ARRAY_NAMES
        }

    def get(self, name: str) -> np.ndarray:
        return self._arrays[name]

    def bytes_resident(self) -> int:
        return sum(sorted(array.nbytes for array in self._arrays.values()))


class MmapArrayStore(ArrayStore):
    """Backend that memory-maps arrays read-only on first access.

    Mapped pages live in the OS page cache and are reclaimable under
    pressure, so :meth:`bytes_resident` reports 0: nothing is pinned
    to the process heap. Pickling ships only the directory path — the
    receiving process re-opens (and re-validates) the same files,
    which is how shard workers cross process boundaries without
    copying a million-node snapshot through the pickle stream.
    """

    backend = "mmap"

    def __init__(self, path: PathLike, header: SnapshotHeader) -> None:
        super().__init__(path, header)
        self._mapped: Dict[str, np.ndarray] = {}

    def get(self, name: str) -> np.ndarray:
        array = self._mapped.get(name)
        if array is None:
            spec = self.header.arrays[name]
            if spec.count == 0:
                array = np.empty(0, dtype=ARRAY_DTYPE)
            else:
                array = np.memmap(_array_path(self.path, name),
                                  dtype=ARRAY_DTYPE, mode="r",
                                  shape=(spec.count,))
            self._mapped[name] = array
        return array

    def bytes_resident(self) -> int:
        return 0

    def __getstate__(self) -> Dict[str, str]:
        return {"path": str(self.path)}

    def __setstate__(self, state: Dict[str, str]) -> None:
        path = Path(state["path"])
        header = read_header(path)
        _check_file_sizes(path, header)
        MmapArrayStore.__init__(self, path, header)


def open_array_store(path: PathLike, backend: str = "mmap") -> ArrayStore:
    """Open a snapshot directory as a validated :class:`ArrayStore`.

    Args:
        path: Snapshot directory written by :class:`SnapshotWriter`.
        backend: ``"mmap"`` (lazy, page-cache resident — the default)
            or ``"ram"`` (eager heap arrays).

    Raises:
        SnapshotFormatError: invalid header, missing array file, or a
            file whose size disagrees with the header; also an unknown
            *backend* name.
    """
    directory = Path(path)
    header = read_header(directory)
    _check_file_sizes(directory, header)
    if backend == "mmap":
        return MmapArrayStore(directory, header)
    if backend == "ram":
        return RamArrayStore(directory, header)
    raise SnapshotFormatError(
        directory, f"unknown store backend {backend!r} "
                   f"(expected 'ram' or 'mmap')")


# ----------------------------------------------------------------------
# Lazy read-side structures
# ----------------------------------------------------------------------
class ContiguousPositions(Mapping):
    """Identity ``node id -> dense position`` map for ids ``0..n-1``.

    Store-backed snapshots of generated graphs have contiguous ids, so
    the position table every router and scorer consults collapses to a
    range check — no n-entry dict on the heap.
    """

    __slots__ = ("_n",)

    def __init__(self, n: int) -> None:
        self._n = n

    def __getitem__(self, node: int) -> int:
        if isinstance(node, (int, np.integer)) and 0 <= node < self._n:
            return int(node)
        raise KeyError(node)

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._n))

    def __contains__(self, node: object) -> bool:
        return isinstance(node, (int, np.integer)) and 0 <= node < self._n


class CsrSetSequence(Sequence):
    """Lazy ``Sequence[frozenset[str]]`` view over a topic-id CSR.

    Decodes one row per access instead of materialising a frozenset
    per node for the whole graph (the store-backed replacement for the
    eager ``profiles`` tuple).
    """

    __slots__ = ("_indptr", "_topic_ids", "_topics")

    def __init__(self, indptr: np.ndarray, topic_ids: np.ndarray,
                 topics: Tuple[str, ...]) -> None:
        self._indptr = indptr
        self._topic_ids = topic_ids
        self._topics = topics

    def __len__(self) -> int:
        return len(self._indptr) - 1

    def _row(self, index: int) -> Tuple[int, int]:
        n = len(self._indptr) - 1
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(index)
        return int(self._indptr[index]), int(self._indptr[index + 1])

    def __getitem__(self, index):
        if isinstance(index, slice):
            return tuple(self[i]
                         for i in range(*index.indices(len(self))))
        start, stop = self._row(index)
        topics = self._topics
        return frozenset(topics[t]
                         for t in self._topic_ids[start:stop].tolist())


class CsrCountsSequence(Sequence):
    """Lazy ``Sequence[Dict[str, int]]`` over a (topic, count) CSR.

    The store-backed replacement for the eager per-node follower-count
    dicts; each access decodes one node's counts (rows are sorted by
    topic id, so the decoded dicts are deterministic).
    """

    __slots__ = ("_indptr", "_topic_ids", "_counts", "_topics")

    def __init__(self, indptr: np.ndarray, topic_ids: np.ndarray,
                 counts: np.ndarray, topics: Tuple[str, ...]) -> None:
        self._indptr = indptr
        self._topic_ids = topic_ids
        self._counts = counts
        self._topics = topics

    def __len__(self) -> int:
        return len(self._indptr) - 1

    def _row(self, index: int) -> Tuple[int, int]:
        n = len(self._indptr) - 1
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(index)
        return int(self._indptr[index]), int(self._indptr[index + 1])

    def __getitem__(self, index):
        if isinstance(index, slice):
            return tuple(self[i]
                         for i in range(*index.indices(len(self))))
        start, stop = self._row(index)
        topics = self._topics
        return {
            topics[t]: int(c)
            for t, c in zip(self._topic_ids[start:stop].tolist(),
                            self._counts[start:stop].tolist())
        }


def encode_topic_csr(rows: Sequence, topic_ids: Mapping[str, int],
                     counts: bool = False
                     ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Encode per-node topic sets (or count dicts) as a sorted CSR.

    Args:
        rows: Per-node iterables of topics, or — with ``counts=True`` —
            per-node ``{topic: count}`` mappings.
        topic_ids: Topic → interned id.
        counts: Whether *rows* carries counts.

    Returns:
        ``(indptr, topic_id_data, count_data)`` with rows sorted by
        topic id; ``count_data`` is ``None`` unless ``counts`` is set.
    """
    indptr: List[int] = [0]
    data: List[int] = []
    values: List[int] = []
    for row in rows:
        if counts:
            items = sorted((topic_ids[topic], int(count))
                           for topic, count in row.items())
            data.extend(tid for tid, _ in items)
            values.extend(count for _, count in items)
        else:
            data.extend(sorted(topic_ids[topic] for topic in row))
        indptr.append(len(data))
    indptr_arr = np.asarray(indptr, dtype=np.int64)
    data_arr = np.asarray(data, dtype=np.int64)
    if counts:
        return indptr_arr, data_arr, np.asarray(values, dtype=np.int64)
    return indptr_arr, data_arr, None
