"""Directed labeled social-graph substrate (Section 3.1 of the paper)."""

from .labeled_graph import LabeledSocialGraph
from .snapshot import GraphSnapshot, as_snapshot
from .builders import graph_from_edges, graph_from_records
from .traversal import bfs_levels, k_vicinity, reachable_set
from .stats import GraphStats, compute_stats
from .io import (open_snapshot, read_edge_list, read_jsonl, save_snapshot,
                 write_edge_list, write_jsonl)
from .storage import (ArrayStore, MmapArrayStore, RamArrayStore,
                      SnapshotHeader, SnapshotWriter, open_array_store,
                      verify_snapshot)

__all__ = [
    "LabeledSocialGraph",
    "GraphSnapshot",
    "as_snapshot",
    "graph_from_edges",
    "graph_from_records",
    "bfs_levels",
    "k_vicinity",
    "reachable_set",
    "GraphStats",
    "compute_stats",
    "read_edge_list",
    "write_edge_list",
    "read_jsonl",
    "write_jsonl",
    "save_snapshot",
    "open_snapshot",
    "ArrayStore",
    "RamArrayStore",
    "MmapArrayStore",
    "SnapshotHeader",
    "SnapshotWriter",
    "open_array_store",
    "verify_snapshot",
]
