"""The directed labeled social graph of Section 3.1.

Nodes are user accounts (integer ids). A directed edge ``(u, v)`` means
*u follows v* — u receives v's posts. Node labels are the topics a user
publishes on (the *publisher profile*); edge labels are the topics on
which the follower is interested in the followee's posts.

The structure maintains, incrementally, the per-topic follower counts
``|Γu(t)|`` (how many accounts follow ``u`` on topic ``t``) that the
authority score of Section 3.2 needs, so authority lookups never require
a graph exploration — exactly the locality property the paper points out
for score updates.
"""

from __future__ import annotations

from typing import (TYPE_CHECKING, Dict, FrozenSet, Iterable, Iterator,
                    Mapping, Optional, Tuple)

from ..errors import (
    DuplicateNodeError,
    EdgeNotFoundError,
    NodeNotFoundError,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .snapshot import GraphSnapshot

TopicSet = FrozenSet[str]
_EMPTY: TopicSet = frozenset()


class LabeledSocialGraph:
    """Directed multigraph-free labeled social graph.

    Example:
        >>> g = LabeledSocialGraph()
        >>> g.add_node(1, topics=["technology"])
        >>> g.add_node(2, topics=["technology", "bigdata"])
        >>> g.add_edge(1, 2, topics=["technology"])
        >>> g.follower_count(2)
        1
        >>> g.follower_count_on(2, "technology")
        1
    """

    def __init__(self) -> None:
        self._node_topics: Dict[int, TopicSet] = {}
        # u -> {v: edge topics} for edges u -> v (u follows v)
        self._out: Dict[int, Dict[int, TopicSet]] = {}
        # v -> {u: edge topics} for edges u -> v
        self._in: Dict[int, Dict[int, TopicSet]] = {}
        # u -> {topic: |Γu(t)|}, maintained incrementally
        self._followers_on: Dict[int, Dict[str, int]] = {}
        self._num_edges = 0
        # topic -> max_v |Γv(t)|; recomputed lazily after mutations
        self._max_followers_cache: Optional[Dict[str, int]] = None
        # bumped on every mutation; snapshots carry the epoch they saw
        self._epoch = 0
        self._snapshot_cache: Optional["GraphSnapshot"] = None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _touch(self) -> None:
        """Record a mutation: bump the epoch (read by snapshots)."""
        self._epoch += 1

    def add_node(self, node: int, topics: Iterable[str] = ()) -> None:
        """Add *node* with publisher-profile *topics*.

        Raises:
            DuplicateNodeError: if the node already exists.
        """
        if node in self._node_topics:
            raise DuplicateNodeError(node)
        self._node_topics[node] = frozenset(topics)
        self._out[node] = {}
        self._in[node] = {}
        self._followers_on[node] = {}
        self._touch()

    def ensure_node(self, node: int, topics: Iterable[str] = ()) -> None:
        """Add *node* if absent; otherwise leave it untouched."""
        if node not in self._node_topics:
            self.add_node(node, topics)

    def set_node_topics(self, node: int, topics: Iterable[str]) -> None:
        """Replace the publisher profile of *node*."""
        self._require_node(node)
        self._node_topics[node] = frozenset(topics)
        self._touch()

    def add_edge(self, source: int, target: int,
                 topics: Iterable[str] = ()) -> None:
        """Add the follow edge *source* → *target* labeled with *topics*.

        Endpoints are created implicitly if missing (with empty
        profiles). Re-adding an existing edge replaces its labels; the
        per-topic follower counts are kept consistent.

        Raises:
            ValueError: on self-loops — an account cannot follow itself.
        """
        if source == target:
            raise ValueError(f"self-loop on node {source} is not allowed")
        self.ensure_node(source)
        self.ensure_node(target)
        label = frozenset(topics)
        previous = self._out[source].get(target)
        if previous is None:
            self._num_edges += 1
        else:
            self._retract_follower_counts(target, previous)
        self._out[source][target] = label
        self._in[target][source] = label
        counts = self._followers_on[target]
        for topic in sorted(label):
            counts[topic] = counts.get(topic, 0) + 1
        self._max_followers_cache = None
        self._touch()

    def set_edge_topics(self, source: int, target: int,
                        topics: Iterable[str]) -> None:
        """Relabel an existing edge.

        Raises:
            EdgeNotFoundError: if the edge does not exist.
        """
        if target not in self._out.get(source, {}):
            raise EdgeNotFoundError(source, target)
        self.add_edge(source, target, topics)

    def remove_edge(self, source: int, target: int) -> TopicSet:
        """Remove the edge and return its (former) topic labels.

        Raises:
            EdgeNotFoundError: if the edge does not exist.
        """
        out_edges = self._out.get(source)
        if out_edges is None or target not in out_edges:
            raise EdgeNotFoundError(source, target)
        label = out_edges.pop(target)
        del self._in[target][source]
        self._retract_follower_counts(target, label)
        self._num_edges -= 1
        self._max_followers_cache = None
        self._touch()
        return label

    def _retract_follower_counts(self, target: int, label: TopicSet) -> None:
        counts = self._followers_on[target]
        for topic in label:
            remaining = counts[topic] - 1
            if remaining:
                counts[topic] = remaining
            else:
                del counts[topic]

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Monotonic mutation counter; snapshots record the epoch they saw."""
        return self._epoch

    def snapshot(self) -> "GraphSnapshot":
        """Return a frozen array-backed view of the graph at this epoch.

        The snapshot is cached: repeated calls between mutations return
        the same object, so scorers constructed from the same graph
        share one set of CSR arrays and one :class:`AuthorityIndex`.
        The first call after any mutation rebuilds.
        """
        snap = self._snapshot_cache
        if snap is None or snap.epoch != self._epoch:
            from .snapshot import GraphSnapshot
            snap = GraphSnapshot.from_graph(self)
            self._snapshot_cache = snap
        return snap

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of accounts in the graph."""
        return len(self._node_topics)

    @property
    def num_edges(self) -> int:
        """Number of follow edges."""
        return self._num_edges

    def __len__(self) -> int:
        return len(self._node_topics)

    def __contains__(self, node: int) -> bool:
        return node in self._node_topics

    def has_edge(self, source: int, target: int) -> bool:
        """Whether *source* follows *target*."""
        return target in self._out.get(source, {})

    def nodes(self) -> Iterator[int]:
        """Iterate over every account id."""
        return iter(self._node_topics)

    def edges(self) -> Iterator[Tuple[int, int, TopicSet]]:
        """Yield every edge as ``(source, target, topics)``."""
        for source, targets in self._out.items():
            for target, label in targets.items():
                yield source, target, label

    def node_topics(self, node: int) -> TopicSet:
        """Publisher profile of *node*."""
        self._require_node(node)
        return self._node_topics[node]

    def edge_topics(self, source: int, target: int) -> TopicSet:
        """Topic labels of the edge *source* → *target*."""
        try:
            return self._out[source][target]
        except KeyError:
            raise EdgeNotFoundError(source, target) from None

    def out_neighbors(self, node: int) -> Mapping[int, TopicSet]:
        """Accounts *node* follows, mapped to the edge labels."""
        self._require_node(node)
        return self._out[node]

    def in_neighbors(self, node: int) -> Mapping[int, TopicSet]:
        """Followers of *node* (Γ_node), mapped to the edge labels."""
        self._require_node(node)
        return self._in[node]

    def followers(self, node: int) -> Mapping[int, TopicSet]:
        """Alias for :meth:`in_neighbors` matching the paper's Γu."""
        return self.in_neighbors(node)

    def out_degree(self, node: int) -> int:
        """Number of accounts *node* follows."""
        self._require_node(node)
        return len(self._out[node])

    def in_degree(self, node: int) -> int:
        """Number of followers of *node*."""
        self._require_node(node)
        return len(self._in[node])

    def follower_count(self, node: int) -> int:
        """``|Γu|`` — total number of followers of *node*."""
        return self.in_degree(node)

    def follower_count_on(self, node: int, topic: str) -> int:
        """``|Γu(t)|`` — followers of *node* whose edge carries *topic*."""
        self._require_node(node)
        return self._followers_on[node].get(topic, 0)

    def follower_topic_counts(self, node: int) -> Mapping[str, int]:
        """All per-topic follower counts of *node* (zero counts omitted)."""
        self._require_node(node)
        return self._followers_on[node]

    def max_followers_on(self, topic: str) -> int:
        """``max_v |Γv(t)|`` — global popularity normaliser (Section 3.2).

        Computed once after mutations and cached, mirroring the paper's
        observation that this value can be stored and refreshed
        periodically.
        """
        if self._max_followers_cache is None:
            cache: Dict[str, int] = {}
            for counts in self._followers_on.values():
                for t, count in counts.items():
                    if count > cache.get(t, 0):
                        cache[t] = count
            self._max_followers_cache = cache
        return self._max_followers_cache.get(topic, 0)

    def topics(self) -> FrozenSet[str]:
        """The set of topics appearing on any node or edge."""
        seen = set()
        for label in self._node_topics.values():
            seen |= label
        for targets in self._out.values():
            for label in targets.values():
                seen |= label
        return frozenset(seen)

    def copy(self) -> "LabeledSocialGraph":
        """Deep-enough copy: topic sets are immutable and shared."""
        clone = LabeledSocialGraph()
        clone._node_topics = dict(self._node_topics)
        clone._out = {u: dict(vs) for u, vs in self._out.items()}
        clone._in = {v: dict(us) for v, us in self._in.items()}
        clone._followers_on = {
            u: dict(counts) for u, counts in self._followers_on.items()
        }
        clone._num_edges = self._num_edges
        clone._epoch = self._epoch
        return clone

    def _require_node(self, node: int) -> None:
        if node not in self._node_topics:
            raise NodeNotFoundError(node)

    def __repr__(self) -> str:
        return (f"LabeledSocialGraph(nodes={self.num_nodes}, "
                f"edges={self.num_edges})")
