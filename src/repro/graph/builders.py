"""Convenience constructors for :class:`LabeledSocialGraph`."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence, Tuple, Union

from .labeled_graph import LabeledSocialGraph

EdgeSpec = Union[
    Tuple[int, int],
    Tuple[int, int, Iterable[str]],
]


def graph_from_edges(edges: Iterable[EdgeSpec],
                     node_topics: Mapping[int, Iterable[str]] | None = None,
                     ) -> LabeledSocialGraph:
    """Build a graph from ``(source, target[, topics])`` tuples.

    Args:
        edges: Edge specs; a missing third element means an unlabeled
            edge.
        node_topics: Optional publisher profiles keyed by node id;
            nodes mentioned here but absent from *edges* are still
            created.

    Example:
        >>> g = graph_from_edges([(1, 2, ["tech"]), (2, 3)])
        >>> sorted(g.nodes())
        [1, 2, 3]
    """
    graph = LabeledSocialGraph()
    if node_topics:
        for node, topics in node_topics.items():
            graph.ensure_node(node, topics)
    for spec in edges:
        if len(spec) == 2:
            source, target = spec  # type: ignore[misc]
            topics: Iterable[str] = ()
        else:
            source, target, topics = spec  # type: ignore[misc]
        graph.add_edge(source, target, topics)
    return graph


def graph_from_records(records: Iterable[Mapping]) -> LabeledSocialGraph:
    """Build a graph from dict records, e.g. parsed JSON lines.

    Two record shapes are accepted:

    - node records: ``{"node": id, "topics": [...]}``;
    - edge records: ``{"source": id, "target": id, "topics": [...]}``.

    Raises:
        ValueError: on a record that is neither shape.
    """
    graph = LabeledSocialGraph()
    for record in records:
        if "node" in record:
            graph.ensure_node(int(record["node"]),
                              record.get("topics", ()))
        elif "source" in record and "target" in record:
            graph.add_edge(int(record["source"]), int(record["target"]),
                           record.get("topics", ()))
        else:
            raise ValueError(f"unrecognised graph record: {record!r}")
    return graph


def complete_graph(n: int, topics: Sequence[str] = ()) -> LabeledSocialGraph:
    """Fully-connected directed graph on ``n`` nodes (no self-loops).

    Handy for worst-case path-count tests (the ``N^k`` bound mentioned
    in Section 4) and for convergence-condition tests, where the
    spectral radius is known to be ``n - 1``.
    """
    graph = LabeledSocialGraph()
    for node in range(n):
        graph.add_node(node, topics)
    for source in range(n):
        for target in range(n):
            if source != target:
                graph.add_edge(source, target, topics)
    return graph


def path_graph(n: int, topics: Sequence[str] = ()) -> LabeledSocialGraph:
    """Directed path ``0 -> 1 -> ... -> n-1``; single-path score tests."""
    graph = LabeledSocialGraph()
    for node in range(n):
        graph.add_node(node, topics)
    for node in range(n - 1):
        graph.add_edge(node, node + 1, topics)
    return graph
