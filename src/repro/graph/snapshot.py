"""Frozen, epoch-versioned array view of the labeled graph.

Every scorer in the repo — the exact engine, the CSR engine, the
baselines, landmark preprocessing and queries — is read-only over the
follow graph, yet each used to re-derive its own view of the mutable
:class:`~repro.graph.labeled_graph.LabeledSocialGraph` dicts.
:class:`GraphSnapshot` is the one compact read representation they now
share:

- a dense node index (sorted node ids ↔ positions ``0..n-1``);
- CSR out- and in-adjacency (``*_indptr`` / ``*_indices``), each row
  sorted by neighbour id, with a parallel interned label id per edge;
- interned topic ids and distinct edge-label sets (the labeling
  pipeline produces far fewer distinct label sets than edges);
- per-node per-topic follower counts and the global
  ``max_v |Γv(t)|`` normaliser — everything the authority score reads.

A snapshot is built once via :meth:`LabeledSocialGraph.snapshot` and
stamped with the graph's **epoch** (a monotonic mutation counter), so
consumers can cheaply detect staleness instead of silently serving
pre-mutation scores: :meth:`ensure_fresh` raises
:class:`~repro.errors.StaleSnapshotError` unless the caller opts in
with ``allow_stale=True`` (eval replays, deliberately lagged serving).

The in-adjacency CSR *is* the paper's matrix ``A`` (``A[v, u] = 1``
iff u follows v): ``csr_matrix((ones, in_indices, in_indptr))`` shares
these arrays with no Python-level edge loop.
"""

from __future__ import annotations

import weakref
from typing import (Dict, FrozenSet, Iterator, List, Mapping, Optional,
                    Tuple, Union)

import numpy as np

from ..errors import EdgeNotFoundError, NodeNotFoundError, StaleSnapshotError
from ..obs import runtime as _obs
from .labeled_graph import LabeledSocialGraph, TopicSet
from .storage import (ArrayStore, ContiguousPositions, CsrCountsSequence,
                      CsrSetSequence)

GraphLike = Union[LabeledSocialGraph, "GraphSnapshot"]


class GraphSnapshot:
    """Immutable array-backed view of one graph epoch.

    Mirrors the read API of :class:`LabeledSocialGraph` (``nodes``,
    ``out_neighbors``, ``follower_count_on``, ...) so traversals and
    scorers accept either interchangeably, and additionally exposes the
    dense index and CSR arrays for vectorised consumers.

    Build via :meth:`LabeledSocialGraph.snapshot` (cached per epoch) or
    :meth:`from_graph`; never mutate the arrays.
    """

    def __init__(self, graph: LabeledSocialGraph) -> None:
        # Direct access to the graph's internals is the point of this
        # module: the snapshot is the sanctioned boundary (rule R8
        # keeps everything outside graph/ on this side of it).
        node_topics = graph._node_topics
        node_list = sorted(node_topics)
        position = {node: i for i, node in enumerate(node_list)}

        label_ids: Dict[TopicSet, int] = {}
        labels: List[TopicSet] = []

        def intern(label: TopicSet) -> int:
            lid = label_ids.get(label)
            if lid is None:
                lid = len(labels)
                label_ids[label] = lid
                labels.append(label)
            return lid

        out_indptr = [0]
        out_indices: List[int] = []
        out_labels: List[int] = []
        for node in node_list:
            row = graph._out[node]
            for neighbor in sorted(row):
                out_indices.append(position[neighbor])
                out_labels.append(intern(row[neighbor]))
            out_indptr.append(len(out_indices))

        in_indptr = [0]
        in_indices: List[int] = []
        in_labels: List[int] = []
        for node in node_list:
            row = graph._in[node]
            for follower in sorted(row):
                in_indices.append(position[follower])
                in_labels.append(intern(row[follower]))
            in_indptr.append(len(in_indices))

        vocabulary = set()
        for profile in node_topics.values():
            vocabulary |= profile
        for label in labels:
            vocabulary |= label

        max_followers: Dict[str, int] = {}
        for node in node_list:
            for topic, count in graph._followers_on[node].items():
                if count > max_followers.get(topic, 0):
                    max_followers[topic] = count

        #: Node ids in dense-index order (position ``i`` ↔ ``node_ids[i]``).
        self.node_ids: Tuple[int, ...] = tuple(node_list)
        #: Node id → dense position. Treat as read-only.
        self.position: Dict[int, int] = position
        self.out_indptr = np.asarray(out_indptr, dtype=np.int64)
        self.out_indices = np.asarray(out_indices, dtype=np.int64)
        self.out_label_ids = np.asarray(out_labels, dtype=np.int64)
        self.in_indptr = np.asarray(in_indptr, dtype=np.int64)
        self.in_indices = np.asarray(in_indices, dtype=np.int64)
        self.in_label_ids = np.asarray(in_labels, dtype=np.int64)
        #: Distinct edge-label sets; ``labels[label_id]`` is the frozenset.
        self.labels: Tuple[TopicSet, ...] = tuple(labels)
        #: Sorted topic vocabulary (union of node profiles and edge labels).
        self.topic_list: Tuple[str, ...] = tuple(sorted(vocabulary))
        #: Topic → interned topic id.
        self.topic_ids: Dict[str, int] = {
            topic: i for i, topic in enumerate(self.topic_list)}
        #: Publisher profiles by dense position.
        self.profiles: Tuple[TopicSet, ...] = tuple(
            node_topics[node] for node in node_list)
        self._follower_counts: Tuple[Dict[str, int], ...] = tuple(
            dict(graph._followers_on[node]) for node in node_list)
        self._max_followers = max_followers
        #: The graph epoch this snapshot captured.
        self.epoch: int = graph._epoch

        self._graph_ref: Optional["weakref.ref[LabeledSocialGraph]"] = (
            weakref.ref(graph))
        #: Backing :class:`~repro.graph.storage.ArrayStore` for
        #: store-loaded snapshots; ``None`` when built from a live graph.
        self._store: Optional[ArrayStore] = None
        n = len(node_list)
        self._out_items_cache: List[Optional[list]] = [None] * n
        self._out_map_cache: List[Optional[Dict[int, TopicSet]]] = [None] * n
        self._in_map_cache: List[Optional[Dict[int, TopicSet]]] = [None] * n
        self._in_rows: Optional[np.ndarray] = None
        self._authority = None

    # ------------------------------------------------------------------
    # Construction & freshness
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: LabeledSocialGraph) -> "GraphSnapshot":
        """Build a snapshot of *graph* at its current epoch."""
        with _obs.span("graph.snapshot_build") as _sp:
            snapshot = cls(graph)
            if _sp:
                _sp.set(nodes=snapshot.num_nodes, edges=snapshot.num_edges,
                        epoch=snapshot.epoch,
                        distinct_labels=len(snapshot.labels))
        _obs.count("graph.snapshot_rebuilds_total")
        _obs.gauge("graph.snapshot_epoch", float(snapshot.epoch))
        return snapshot

    @classmethod
    def from_store(cls, store: ArrayStore) -> "GraphSnapshot":
        """Materialise a snapshot over an opened :class:`ArrayStore`.

        Adjacency arrays are exactly the store's arrays (heap-resident
        for the RAM backend, lazily-paged ``np.memmap`` views for the
        mmap backend); the per-node Python-side structures — position
        table, publisher profiles, follower counts — are lazy views
        that decode rows on access, so residency stays bounded by what
        the scorers actually touch. The store's header supplies the
        epoch, so the epoch-keyed caches downstream (landmark vectors,
        shard generations) key store-loaded snapshots exactly like the
        originals they were saved from.

        Store-loaded snapshots have no source graph and are therefore
        never stale. Most callers want
        :func:`repro.graph.io.open_snapshot`, which opens, validates
        and instruments in one step.
        """
        header = store.header
        self = cls.__new__(cls)
        n = header.num_nodes
        self.out_indptr = store.get("out_indptr")
        self.out_indices = store.get("out_indices")
        self.out_label_ids = store.get("out_label_ids")
        self.in_indptr = store.get("in_indptr")
        self.in_indices = store.get("in_indices")
        self.in_label_ids = store.get("in_label_ids")
        topics = tuple(header.topics)
        self.topic_list = topics
        self.topic_ids = {topic: i for i, topic in enumerate(topics)}
        self.labels = tuple(
            frozenset(topics[t] for t in ids) for ids in header.labels)
        if header.contiguous_ids:
            # Generated graphs have ids 0..n-1: the id↔position maps
            # collapse to identity views with no per-node heap cost.
            self.node_ids = range(n)
            self.position = ContiguousPositions(n)
        else:
            ids = [int(i) for i in store.get("node_ids").tolist()]
            self.node_ids = tuple(ids)
            self.position = {node: i for i, node in enumerate(ids)}
        self.profiles = CsrSetSequence(
            store.get("prof_indptr"), store.get("prof_topic_ids"), topics)
        self._follower_counts = CsrCountsSequence(
            store.get("fol_indptr"), store.get("fol_topic_ids"),
            store.get("fol_counts"), topics)
        self._max_followers = dict(header.max_followers)
        self.epoch = header.epoch
        self._graph_ref = None
        self._store = store
        self._out_items_cache = [None] * n
        self._out_map_cache = [None] * n
        self._in_map_cache = [None] * n
        self._in_rows = None
        self._authority = None
        return self

    @property
    def store_backend(self) -> str:
        """Which :class:`ArrayStore` backend holds the arrays.

        ``"ram"`` for graph-built and RAM-store snapshots, ``"mmap"``
        for memory-mapped ones.
        """
        return self._store.backend if self._store is not None else "ram"

    @property
    def bytes_resident(self) -> int:
        """Array bytes pinned to process memory by this snapshot.

        Graph-built snapshots own their CSR arrays on the heap; a
        store-backed snapshot delegates to the store (0 for mmap —
        mapped pages live in the reclaimable OS page cache).
        """
        if self._store is not None:
            return self._store.bytes_resident()
        return int(sum(a.nbytes for a in (
            self.out_indptr, self.out_indices, self.out_label_ids,
            self.in_indptr, self.in_indices, self.in_label_ids)))

    def out_slice(self, lo: int, hi: int):
        """Rebased out-CSR of dense positions ``[lo, hi)``.

        Returns ``(indptr, indices, label_ids)`` where ``indptr`` is
        rebased to start at 0 (a small per-shard copy) while
        ``indices`` / ``label_ids`` are *views* of the snapshot's
        arrays — for an mmap-backed snapshot they stay file-backed, so
        a shard worker pages in only the rows it actually reads
        instead of deep-copying its slice.
        """
        edge_lo = int(self.out_indptr[lo])
        edge_hi = int(self.out_indptr[hi])
        indptr = self.out_indptr[lo:hi + 1] - edge_lo
        return (indptr, self.out_indices[edge_lo:edge_hi],
                self.out_label_ids[edge_lo:edge_hi])

    @property
    def is_stale(self) -> bool:
        """Whether the source graph has mutated since this was built.

        A snapshot whose graph was garbage-collected (or that crossed a
        process boundary via pickle) has no graph to lag behind and is
        never stale.
        """
        graph = self._graph_ref() if self._graph_ref is not None else None
        return graph is not None and graph.epoch != self.epoch

    def ensure_fresh(self, allow_stale: bool = False) -> "GraphSnapshot":
        """Assert this snapshot still matches its graph's epoch.

        Args:
            allow_stale: Read anyway when the graph has moved on; the
                stale read is counted in ``graph.stale_reads_total``.

        Raises:
            StaleSnapshotError: stale and ``allow_stale`` is false.
        """
        graph = self._graph_ref() if self._graph_ref is not None else None
        if graph is not None and graph.epoch != self.epoch:
            if not allow_stale:
                raise StaleSnapshotError(self.epoch, graph.epoch)
            _obs.count("graph.stale_reads_total")
        return self

    # ------------------------------------------------------------------
    # Dense index
    # ------------------------------------------------------------------
    def index_of(self, node: int) -> int:
        """Dense position of *node* (raises on unknown ids)."""
        index = self.position.get(node)
        if index is None:
            raise NodeNotFoundError(node)
        return index

    def node_at(self, index: int) -> int:
        """Node id at dense position *index*."""
        return self.node_ids[index]

    def in_edge_rows(self) -> np.ndarray:
        """Row (target position) of every in-CSR edge, lazily cached.

        Aligned with ``in_indices`` / ``in_label_ids``: entry ``k`` is
        the dense position of the node edge ``k`` points *into*.
        """
        rows = self._in_rows
        if rows is None:
            rows = np.repeat(np.arange(len(self.node_ids), dtype=np.int64),
                             np.diff(self.in_indptr))
            self._in_rows = rows
        return rows

    def out_items(self, node: int) -> list:
        """``(neighbor_id, label)`` pairs of *node*, ascending by id.

        The per-node list is materialised once and cached — the hot
        read of the exact engine's frontier loop (which previously
        re-sorted a dict view on every visit).
        """
        index = self.index_of(node)
        cached = self._out_items_cache[index]
        if cached is None:
            start = int(self.out_indptr[index])
            stop = int(self.out_indptr[index + 1])
            node_ids = self.node_ids
            labels = self.labels
            cached = [
                (node_ids[j], labels[l])
                for j, l in zip(self.out_indices[start:stop].tolist(),
                                self.out_label_ids[start:stop].tolist())
            ]
            self._out_items_cache[index] = cached
        return cached

    def authority(self):
        """The shared :class:`~repro.core.scores.AuthorityIndex`.

        One cached instance per snapshot, so every scorer built from
        the same snapshot reuses one warm auth memo instead of each
        constructing its own.
        """
        authority = self._authority
        if authority is None:
            from ..core.scores import AuthorityIndex
            authority = AuthorityIndex(self)
            self._authority = authority
        return authority

    # ------------------------------------------------------------------
    # Graph-mirroring read API
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of accounts in the snapshot."""
        return len(self.node_ids)

    @property
    def num_edges(self) -> int:
        """Number of follow edges."""
        return len(self.out_indices)

    def __len__(self) -> int:
        return len(self.node_ids)

    def __contains__(self, node: int) -> bool:
        return node in self.position

    def nodes(self) -> Iterator[int]:
        """Iterate over every account id (ascending)."""
        return iter(self.node_ids)

    def edges(self) -> Iterator[Tuple[int, int, TopicSet]]:
        """Yield every edge as ``(source, target, topics)``."""
        for source in self.node_ids:
            for target, label in self.out_items(source):
                yield source, target, label

    def has_edge(self, source: int, target: int) -> bool:
        """Whether *source* follows *target*."""
        source_index = self.position.get(source)
        if source_index is None:
            return False
        return target in self._out_map(source_index)

    def node_topics(self, node: int) -> TopicSet:
        """Publisher profile of *node*."""
        return self.profiles[self.index_of(node)]

    def edge_topics(self, source: int, target: int) -> TopicSet:
        """Topic labels of the edge *source* → *target*."""
        source_index = self.position.get(source)
        if source_index is not None:
            label = self._out_map(source_index).get(target)
            if label is not None:
                return label
        raise EdgeNotFoundError(source, target)

    def _out_map(self, index: int) -> Dict[int, TopicSet]:
        cached = self._out_map_cache[index]
        if cached is None:
            cached = dict(self.out_items(self.node_ids[index]))
            self._out_map_cache[index] = cached
        return cached

    def _in_map(self, index: int) -> Dict[int, TopicSet]:
        cached = self._in_map_cache[index]
        if cached is None:
            start = int(self.in_indptr[index])
            stop = int(self.in_indptr[index + 1])
            node_ids = self.node_ids
            labels = self.labels
            cached = {
                node_ids[j]: labels[l]
                for j, l in zip(self.in_indices[start:stop].tolist(),
                                self.in_label_ids[start:stop].tolist())
            }
            self._in_map_cache[index] = cached
        return cached

    def out_neighbors(self, node: int) -> Mapping[int, TopicSet]:
        """Accounts *node* follows, mapped to the edge labels."""
        return self._out_map(self.index_of(node))

    def in_neighbors(self, node: int) -> Mapping[int, TopicSet]:
        """Followers of *node* (Γ_node), mapped to the edge labels."""
        return self._in_map(self.index_of(node))

    def followers(self, node: int) -> Mapping[int, TopicSet]:
        """Alias for :meth:`in_neighbors` matching the paper's Γu."""
        return self.in_neighbors(node)

    def out_degree(self, node: int) -> int:
        """Number of accounts *node* follows."""
        index = self.index_of(node)
        return int(self.out_indptr[index + 1] - self.out_indptr[index])

    def in_degree(self, node: int) -> int:
        """Number of followers of *node*."""
        index = self.index_of(node)
        return int(self.in_indptr[index + 1] - self.in_indptr[index])

    def follower_count(self, node: int) -> int:
        """``|Γu|`` — total number of followers of *node*."""
        return self.in_degree(node)

    def follower_count_on(self, node: int, topic: str) -> int:
        """``|Γu(t)|`` — followers of *node* whose edge carries *topic*."""
        return self._follower_counts[self.index_of(node)].get(topic, 0)

    def follower_topic_counts(self, node: int) -> Mapping[str, int]:
        """All per-topic follower counts of *node* (zero counts omitted)."""
        return self._follower_counts[self.index_of(node)]

    def max_followers_on(self, topic: str) -> int:
        """``max_v |Γv(t)|`` — global popularity normaliser (Section 3.2)."""
        return self._max_followers.get(topic, 0)

    def topics(self) -> FrozenSet[str]:
        """The set of topics appearing on any node or edge."""
        return frozenset(self.topic_list)

    # ------------------------------------------------------------------
    # Pickling (the distributed layer ships snapshots across workers)
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, object]:
        store = getattr(self, "_store", None)
        if store is not None and store.backend == "mmap":
            # Ship only the (tiny) store descriptor: the receiving
            # process re-opens and re-maps the same snapshot directory
            # instead of funnelling every array through the pickle
            # stream — this is what keeps cross-process shard workers
            # cheap for mmap-backed snapshots.
            return {"_mmap_store": store}
        state = dict(self.__dict__)
        state["_graph_ref"] = None
        state["_authority"] = None
        state["_out_items_cache"] = None
        state["_out_map_cache"] = None
        state["_in_map_cache"] = None
        state["_in_rows"] = None
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        mmap_store = state.pop("_mmap_store", None)
        if mmap_store is not None:
            restored = GraphSnapshot.from_store(mmap_store)
            self.__dict__.update(restored.__dict__)
            return
        self.__dict__.update(state)
        self.__dict__.setdefault("_store", None)
        n = len(self.node_ids)
        self._out_items_cache = [None] * n
        self._out_map_cache = [None] * n
        self._in_map_cache = [None] * n

    def __repr__(self) -> str:
        return (f"GraphSnapshot(nodes={self.num_nodes}, "
                f"edges={self.num_edges}, epoch={self.epoch})")


def as_snapshot(source: GraphLike, allow_stale: bool = False) -> GraphSnapshot:
    """Resolve a graph-or-snapshot argument to a usable snapshot.

    A live graph yields its (cached, always-fresh) current snapshot; a
    snapshot is returned as-is after an epoch check — stale snapshots
    raise :class:`~repro.errors.StaleSnapshotError` unless
    ``allow_stale`` is set.
    """
    if isinstance(source, LabeledSocialGraph):
        return source.snapshot()
    return source.ensure_fresh(allow_stale)
