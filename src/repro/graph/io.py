"""Serialisation of labeled graphs.

Three formats:

- a labeled edge-list text format, one edge per line:
  ``source<TAB>target<TAB>topic1,topic2`` (topics optional), with node
  profiles in an optional companion header section ``#node id t1,t2``;
- JSON-lines with explicit node and edge records, round-tripping every
  detail (used by the CLI and the dataset cache);
- the binary snapshot directory (:func:`save_snapshot` /
  :func:`open_snapshot`): the :class:`~repro.graph.storage` layout —
  ``header.json`` plus raw int64 array files — that a
  :class:`~repro.graph.snapshot.GraphSnapshot` can serve straight from
  disk via ``np.memmap`` without rebuilding anything.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, Union

import numpy as np

from ..obs import runtime as _obs
from .builders import graph_from_records
from .labeled_graph import LabeledSocialGraph
from .snapshot import GraphLike, GraphSnapshot, as_snapshot
from .storage import (SnapshotHeader, SnapshotWriter, encode_topic_csr,
                      open_array_store, verify_snapshot)

PathLike = Union[str, Path]

#: Nodes per chunk when encoding the profile/follower CSRs for disk.
_SAVE_CHUNK_NODES = 65536
#: Elements per chunk when appending large adjacency arrays.
_SAVE_CHUNK_ELEMS = 1 << 22


def write_edge_list(graph: LabeledSocialGraph, path: PathLike) -> None:
    """Write *graph* in the labeled edge-list format."""
    target_path = Path(path)
    with target_path.open("w", encoding="utf-8") as handle:
        for node in sorted(graph.nodes()):
            topics = graph.node_topics(node)
            if topics:
                handle.write(f"#node\t{node}\t{','.join(sorted(topics))}\n")
        for source, target, label in sorted(graph.edges()):
            topics_field = ",".join(sorted(label))
            handle.write(f"{source}\t{target}\t{topics_field}\n")


def read_edge_list(path: PathLike) -> LabeledSocialGraph:
    """Read a graph written by :func:`write_edge_list`.

    Raises:
        ValueError: on a malformed line (wrong field count).
    """
    graph = LabeledSocialGraph()
    source_path = Path(path)
    with source_path.open("r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.rstrip("\n")
            if not line:
                continue
            fields = line.split("\t")
            if fields[0] == "#node":
                if len(fields) != 3:
                    raise ValueError(
                        f"{source_path}:{line_number}: bad node line {line!r}")
                topics = _split_topics(fields[2])
                node = int(fields[1])
                if node in graph:
                    graph.set_node_topics(node, topics)
                else:
                    graph.add_node(node, topics)
            else:
                if len(fields) not in (2, 3):
                    raise ValueError(
                        f"{source_path}:{line_number}: bad edge line {line!r}")
                topics = _split_topics(fields[2]) if len(fields) == 3 else []
                graph.add_edge(int(fields[0]), int(fields[1]), topics)
    return graph


def _split_topics(field: str) -> list[str]:
    return [topic for topic in field.split(",") if topic]


def write_jsonl(graph: LabeledSocialGraph, path: PathLike) -> None:
    """Write *graph* as JSON lines (node records then edge records)."""
    target_path = Path(path)
    with target_path.open("w", encoding="utf-8") as handle:
        for node in sorted(graph.nodes()):
            record = {"node": node,
                      "topics": sorted(graph.node_topics(node))}
            handle.write(json.dumps(record) + "\n")
        for source, target, label in sorted(graph.edges()):
            record = {"source": source, "target": target,
                      "topics": sorted(label)}
            handle.write(json.dumps(record) + "\n")


def read_jsonl(path: PathLike) -> LabeledSocialGraph:
    """Read a graph written by :func:`write_jsonl`."""
    return graph_from_records(_iter_jsonl(Path(path)))


def _iter_jsonl(path: Path) -> Iterator[dict]:
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def _append_chunked(writer: SnapshotWriter, name: str,
                    array: np.ndarray) -> None:
    """Append *array* in bounded chunks (tobytes copies per chunk)."""
    arr = np.asarray(array, dtype=np.int64)
    for start in range(0, arr.shape[0], _SAVE_CHUNK_ELEMS):
        writer.append(name, arr[start:start + _SAVE_CHUNK_ELEMS])


def _append_topic_csr(writer: SnapshotWriter, indptr_name: str,
                      data_name: str, rows, topic_ids,
                      counts_name: Union[str, None] = None) -> None:
    """Encode per-node topic rows as CSR, appending chunk by chunk."""
    writer.append(indptr_name, np.zeros(1, dtype=np.int64))
    base = 0
    for start in range(0, len(rows), _SAVE_CHUNK_NODES):
        sub = rows[start:start + _SAVE_CHUNK_NODES]
        indptr, data, values = encode_topic_csr(
            sub, topic_ids, counts=counts_name is not None)
        writer.append(indptr_name, indptr[1:] + base)
        writer.append(data_name, data)
        if counts_name is not None and values is not None:
            writer.append(counts_name, values)
        base += int(data.shape[0])


def save_snapshot(source: GraphLike, path: PathLike,
                  allow_stale: bool = False) -> SnapshotHeader:
    """Persist a snapshot as an on-disk directory.

    Writes the :mod:`repro.graph.storage` layout — adjacency CSRs,
    node ids, profile and follower-count CSRs as raw int64 files plus
    a checksummed ``header.json`` (written last, atomically). The
    resulting directory round-trips bitwise through
    :func:`open_snapshot` with either store backend.

    Args:
        source: A live graph (its current snapshot is saved) or an
            existing :class:`GraphSnapshot`.
        path: Target directory (created if missing).
        allow_stale: Forwarded to the snapshot freshness check.

    Returns:
        The written :class:`~repro.graph.storage.SnapshotHeader`.
    """
    snapshot = as_snapshot(source, allow_stale)
    directory = Path(path)
    with _obs.span("graph.snapshot_save") as _sp:
        writer = SnapshotWriter(directory)
        try:
            n = snapshot.num_nodes
            ids = np.asarray(snapshot.node_ids, dtype=np.int64)
            contiguous = bool(n == 0 or (ids == np.arange(n)).all())
            _append_chunked(writer, "node_ids", ids)
            _append_chunked(writer, "out_indptr", snapshot.out_indptr)
            _append_chunked(writer, "out_indices", snapshot.out_indices)
            _append_chunked(writer, "out_label_ids", snapshot.out_label_ids)
            _append_chunked(writer, "in_indptr", snapshot.in_indptr)
            _append_chunked(writer, "in_indices", snapshot.in_indices)
            _append_chunked(writer, "in_label_ids", snapshot.in_label_ids)
            topic_ids = snapshot.topic_ids
            _append_topic_csr(writer, "prof_indptr", "prof_topic_ids",
                              snapshot.profiles, topic_ids)
            _append_topic_csr(writer, "fol_indptr", "fol_topic_ids",
                              snapshot._follower_counts, topic_ids,
                              counts_name="fol_counts")
            header = writer.finalize(
                epoch=snapshot.epoch, num_nodes=n,
                num_edges=snapshot.num_edges, contiguous_ids=contiguous,
                topics=snapshot.topic_list,
                labels=[sorted(topic_ids[t] for t in label)
                        for label in snapshot.labels],
                max_followers={t: snapshot.max_followers_on(t)
                               for t in sorted(snapshot.topics())
                               if snapshot.max_followers_on(t)})
        finally:
            writer.close()
        if _sp:
            _sp.set(nodes=n, edges=snapshot.num_edges,
                    epoch=snapshot.epoch, bytes=header.total_bytes())
    return header


def open_snapshot(path: PathLike, store: str = "mmap",
                  verify: bool = False) -> GraphSnapshot:
    """Open an on-disk snapshot directory as a :class:`GraphSnapshot`.

    The returned snapshot is bitwise-equivalent to the one
    :func:`save_snapshot` serialised: same arrays, label interning,
    epoch — so every scorer (and the epoch-keyed landmark-vector
    cache) treats it exactly like the original.

    Emits the ``graph.snapshot_load`` span plus the
    ``snapshot.bytes_resident`` / ``snapshot.store_backend`` gauge
    pair (backend encoded as 0=ram, 1=mmap; see docs/OBSERVABILITY.md).

    Args:
        path: Snapshot directory.
        store: ``"mmap"`` (default — arrays page in lazily) or
            ``"ram"`` (arrays loaded eagerly onto the heap).
        verify: Additionally checksum every array file against the
            header (full read; off by default).

    Raises:
        SnapshotFormatError: corrupted or mismatched directory.
    """
    with _obs.span("graph.snapshot_load") as _sp:
        if verify:
            verify_snapshot(path)
        array_store = open_array_store(path, backend=store)
        snapshot = GraphSnapshot.from_store(array_store)
        if _sp:
            _sp.set(nodes=snapshot.num_nodes, edges=snapshot.num_edges,
                    epoch=snapshot.epoch, store=array_store.backend)
    _obs.gauge("snapshot.bytes_resident", float(snapshot.bytes_resident))
    _obs.gauge("snapshot.store_backend",
               1.0 if array_store.backend == "mmap" else 0.0)
    return snapshot
