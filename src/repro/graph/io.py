"""Serialisation of labeled graphs.

Two formats:

- a labeled edge-list text format, one edge per line:
  ``source<TAB>target<TAB>topic1,topic2`` (topics optional), with node
  profiles in an optional companion header section ``#node id t1,t2``;
- JSON-lines with explicit node and edge records, round-tripping every
  detail (used by the CLI and the dataset cache).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, Union

from .builders import graph_from_records
from .labeled_graph import LabeledSocialGraph

PathLike = Union[str, Path]


def write_edge_list(graph: LabeledSocialGraph, path: PathLike) -> None:
    """Write *graph* in the labeled edge-list format."""
    target_path = Path(path)
    with target_path.open("w", encoding="utf-8") as handle:
        for node in sorted(graph.nodes()):
            topics = graph.node_topics(node)
            if topics:
                handle.write(f"#node\t{node}\t{','.join(sorted(topics))}\n")
        for source, target, label in sorted(graph.edges()):
            topics_field = ",".join(sorted(label))
            handle.write(f"{source}\t{target}\t{topics_field}\n")


def read_edge_list(path: PathLike) -> LabeledSocialGraph:
    """Read a graph written by :func:`write_edge_list`.

    Raises:
        ValueError: on a malformed line (wrong field count).
    """
    graph = LabeledSocialGraph()
    source_path = Path(path)
    with source_path.open("r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.rstrip("\n")
            if not line:
                continue
            fields = line.split("\t")
            if fields[0] == "#node":
                if len(fields) != 3:
                    raise ValueError(
                        f"{source_path}:{line_number}: bad node line {line!r}")
                topics = _split_topics(fields[2])
                node = int(fields[1])
                if node in graph:
                    graph.set_node_topics(node, topics)
                else:
                    graph.add_node(node, topics)
            else:
                if len(fields) not in (2, 3):
                    raise ValueError(
                        f"{source_path}:{line_number}: bad edge line {line!r}")
                topics = _split_topics(fields[2]) if len(fields) == 3 else []
                graph.add_edge(int(fields[0]), int(fields[1]), topics)
    return graph


def _split_topics(field: str) -> list[str]:
    return [topic for topic in field.split(",") if topic]


def write_jsonl(graph: LabeledSocialGraph, path: PathLike) -> None:
    """Write *graph* as JSON lines (node records then edge records)."""
    target_path = Path(path)
    with target_path.open("w", encoding="utf-8") as handle:
        for node in sorted(graph.nodes()):
            record = {"node": node,
                      "topics": sorted(graph.node_topics(node))}
            handle.write(json.dumps(record) + "\n")
        for source, target, label in sorted(graph.edges()):
            record = {"source": source, "target": target,
                      "topics": sorted(label)}
            handle.write(json.dumps(record) + "\n")


def read_jsonl(path: PathLike) -> LabeledSocialGraph:
    """Read a graph written by :func:`write_jsonl`."""
    return graph_from_records(_iter_jsonl(Path(path)))


def _iter_jsonl(path: Path) -> Iterator[dict]:
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)
