"""Landmark-based shortest-path distance oracle.

The classical technique the paper builds on (Section 2 cites Das Sarma
et al.'s sketches, Potamias et al., Tretyakov et al., Gubichev et al.):
precompute BFS distances from/to a landmark set, then estimate
``d(u, v) ≈ min_λ d(u, λ) + d(λ, v)`` at query time.

By the triangle inequality the estimate is an **upper bound** on the
true distance — the mirror image of the paper's observation that its
score approximation is a **lower bound** on the true recommendation
score (both consider only paths through landmarks; for distances that
can only overestimate, for additive path-score sums it can only
undercount). The test suite checks both halves of that contrast.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..errors import ConfigurationError, NodeNotFoundError
from .labeled_graph import LabeledSocialGraph
from .traversal import bfs_levels


class LandmarkDistanceOracle:
    """Precomputed landmark distances with O(|L|) query time.

    Args:
        graph: The directed graph.
        landmarks: Landmark node set (any Table-4 strategy's output).

    Example:
        >>> from repro.graph.builders import path_graph
        >>> oracle = LandmarkDistanceOracle(path_graph(5), [2])
        >>> oracle.estimate(0, 4)
        4.0
    """

    def __init__(self, graph: LabeledSocialGraph,
                 landmarks: Sequence[int]) -> None:
        if not landmarks:
            raise ConfigurationError("the oracle needs at least one landmark")
        for landmark in landmarks:
            if landmark not in graph:
                raise NodeNotFoundError(landmark)
        self.graph = graph
        self.landmarks: Tuple[int, ...] = tuple(dict.fromkeys(landmarks))
        # d(λ, v): forward BFS; d(v, λ): BFS over reversed edges.
        self._from_landmark: Dict[int, Dict[int, int]] = {}
        self._to_landmark: Dict[int, Dict[int, int]] = {}
        for landmark in self.landmarks:
            self._from_landmark[landmark] = bfs_levels(
                graph, landmark, direction="out")
            self._to_landmark[landmark] = bfs_levels(
                graph, landmark, direction="in")

    # ------------------------------------------------------------------
    def estimate(self, source: int, target: int) -> float:
        """Upper-bound estimate of the hop distance source → target.

        Returns ``math.inf`` when no landmark connects the two nodes —
        which does *not* prove disconnection, only that the oracle
        cannot witness a path.
        """
        if source == target:
            return 0.0
        best = math.inf
        for landmark in self.landmarks:
            first_leg = self._to_landmark[landmark].get(source)
            if first_leg is None:
                continue
            second_leg = self._from_landmark[landmark].get(target)
            if second_leg is None:
                continue
            total = first_leg + second_leg
            if total < best:
                best = float(total)
        return best

    def exact_distance(self, source: int, target: int) -> float:
        """Ground-truth BFS distance (for accuracy studies and tests)."""
        distances = bfs_levels(self.graph, source, direction="out")
        value = distances.get(target)
        return math.inf if value is None else float(value)

    def witness(self, source: int, target: int) -> Optional[int]:
        """The landmark realising the best estimate (``None`` if none)."""
        best = math.inf
        chosen: Optional[int] = None
        for landmark in self.landmarks:
            first_leg = self._to_landmark[landmark].get(source)
            second_leg = self._from_landmark[landmark].get(target)
            if first_leg is None or second_leg is None:
                continue
            total = first_leg + second_leg
            if total < best:
                best = float(total)
                chosen = landmark
        return chosen

    # ------------------------------------------------------------------
    def mean_relative_error(self, pairs: Iterable[Tuple[int, int]]) -> float:
        """Average ``(estimate − exact) / exact`` over connected pairs.

        The standard accuracy figure of the landmark-selection papers
        the reproduction cites; pairs whose exact distance is 0 or ∞
        are skipped.
        """
        errors = []
        for source, target in pairs:
            exact = self.exact_distance(source, target)
            if exact == 0.0 or math.isinf(exact):
                continue
            estimate = self.estimate(source, target)
            if math.isinf(estimate):
                continue
            errors.append((estimate - exact) / exact)
        if not errors:
            return 0.0
        return sum(errors) / len(errors)

    @property
    def storage_entries(self) -> int:
        """Stored (node, distance) pairs across all landmark BFS maps."""
        return (sum(len(d) for d in self._from_landmark.values())
                + sum(len(d) for d in self._to_landmark.values()))

    def __repr__(self) -> str:
        return (f"LandmarkDistanceOracle(landmarks={len(self.landmarks)}, "
                f"entries={self.storage_entries})")
