"""Topological properties of a labeled graph (Table 2 of the paper)."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Mapping

from .labeled_graph import LabeledSocialGraph


@dataclass(frozen=True)
class GraphStats:
    """The exact row set of the paper's Table 2, plus label coverage."""

    num_nodes: int
    num_edges: int
    avg_out_degree: float
    avg_in_degree: float
    max_in_degree: int
    max_out_degree: int
    labeled_edge_fraction: float
    labeled_node_fraction: float

    def as_rows(self) -> list[tuple[str, str]]:
        """Render as (property, value) rows matching Table 2's layout."""
        return [
            ("Total number of nodes", f"{self.num_nodes:,}"),
            ("Total number of edges", f"{self.num_edges:,}"),
            ("Avg. out-degree", f"{self.avg_out_degree:.1f}"),
            ("Avg. in-degree", f"{self.avg_in_degree:.1f}"),
            ("max in-degree", f"{self.max_in_degree:,}"),
            ("max out-degree", f"{self.max_out_degree:,}"),
            ("Labeled edge fraction", f"{self.labeled_edge_fraction:.3f}"),
            ("Labeled node fraction", f"{self.labeled_node_fraction:.3f}"),
        ]


def compute_stats(graph: LabeledSocialGraph) -> GraphStats:
    """Compute Table-2 style statistics in a single pass."""
    n = graph.num_nodes
    if n == 0:
        return GraphStats(0, 0, 0.0, 0.0, 0, 0, 0.0, 0.0)
    max_in = 0
    max_out = 0
    labeled_edges = 0
    labeled_nodes = 0
    for node in graph.nodes():
        out_deg = graph.out_degree(node)
        in_deg = graph.in_degree(node)
        max_in = max(max_in, in_deg)
        max_out = max(max_out, out_deg)
        if graph.node_topics(node):
            labeled_nodes += 1
    for _, _, label in graph.edges():
        if label:
            labeled_edges += 1
    m = graph.num_edges
    return GraphStats(
        num_nodes=n,
        num_edges=m,
        avg_out_degree=m / n,
        avg_in_degree=m / n,
        max_in_degree=max_in,
        max_out_degree=max_out,
        labeled_edge_fraction=labeled_edges / m if m else 0.0,
        labeled_node_fraction=labeled_nodes / n,
    )


def in_degree_distribution(graph: LabeledSocialGraph) -> Dict[int, int]:
    """Histogram: in-degree value → number of nodes with that degree."""
    counter: Counter = Counter(graph.in_degree(node) for node in graph.nodes())
    return dict(counter)


def out_degree_distribution(graph: LabeledSocialGraph) -> Dict[int, int]:
    """Histogram: out-degree value → number of nodes with that degree."""
    counter: Counter = Counter(graph.out_degree(node) for node in graph.nodes())
    return dict(counter)


def edges_per_topic(graph: LabeledSocialGraph) -> Dict[str, int]:
    """Number of edges labeled with each topic (Figure 3's distribution).

    An edge carrying several topics counts once per topic, matching how
    the paper's labeling pipeline reports its biased distribution.
    """
    counter: Counter = Counter()
    for _, _, label in graph.edges():
        counter.update(label)
    return dict(counter)


def reciprocity(graph: LabeledSocialGraph) -> float:
    """Fraction of edges whose reverse edge also exists.

    Twitter's follow graph is famously low-reciprocity compared with
    friendship graphs; the synthetic generator asserts this property.
    """
    if graph.num_edges == 0:
        return 0.0
    mutual = sum(
        1 for source, target, _ in graph.edges()
        if graph.has_edge(target, source)
    )
    return mutual / graph.num_edges


def topic_follower_totals(graph: LabeledSocialGraph) -> Mapping[str, int]:
    """Total follow-relations per topic, i.e. Σ_u |Γu(t)| for each t."""
    totals: Counter = Counter()
    for node in graph.nodes():
        totals.update(graph.follower_topic_counts(node))
    return dict(totals)
