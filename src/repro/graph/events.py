"""Follow/unfollow event model shared across layers.

The event dataclasses live in :mod:`repro.graph` — not in
:mod:`repro.dynamics`, which *produces* streams of them — because the
write-ahead log (:mod:`repro.landmarks.wal`) and the serving platform
also speak this vocabulary. Layering (``docs/ARCHITECTURE.md``,
``src/repro/analysis/layers.toml``) puts ``graph`` below both, so the
shared shape sits here and the churn *simulation* stays in
:mod:`repro.dynamics.events`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple


class EventKind(enum.Enum):
    """What happened to a follow edge."""

    FOLLOW = "follow"
    UNFOLLOW = "unfollow"
    #: Relabel an existing edge (the interest topics changed without
    #: the follow relationship itself changing).
    RETOPIC = "retopic"


@dataclass(frozen=True)
class EdgeEvent:
    """One timestamped follow-graph mutation.

    Attributes:
        kind: Follow, unfollow, or retopic.
        source: The follower.
        target: The followee.
        topics: Edge label (empty for unfollows; the replacement label
            for retopics).
        time: Logical timestamp (event index).
    """

    kind: EventKind
    source: int
    target: int
    topics: Tuple[str, ...]
    time: int

    @property
    def is_follow(self) -> bool:
        """Whether this event creates an edge."""
        return self.kind is EventKind.FOLLOW

    @property
    def is_retopic(self) -> bool:
        """Whether this event relabels an existing edge."""
        return self.kind is EventKind.RETOPIC
