"""Follow/unfollow event model shared across layers.

The event dataclasses live in :mod:`repro.graph` — not in
:mod:`repro.dynamics`, which *produces* streams of them — because the
write-ahead log (:mod:`repro.landmarks.wal`) and the serving platform
also speak this vocabulary. Layering (``docs/ARCHITECTURE.md``,
``src/repro/analysis/layers.toml``) puts ``graph`` below both, so the
shared shape sits here and the churn *simulation* stays in
:mod:`repro.dynamics.events`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple


class EventKind(enum.Enum):
    """What happened to a follow edge."""

    FOLLOW = "follow"
    UNFOLLOW = "unfollow"


@dataclass(frozen=True)
class EdgeEvent:
    """One timestamped follow-graph mutation.

    Attributes:
        kind: Follow or unfollow.
        source: The follower.
        target: The followee.
        topics: Edge label (empty for unfollows).
        time: Logical timestamp (event index).
    """

    kind: EventKind
    source: int
    target: int
    topics: Tuple[str, ...]
    time: int

    @property
    def is_follow(self) -> bool:
        """Whether this event creates an edge."""
        return self.kind is EventKind.FOLLOW
