"""Append-friendly delta overlay over a pinned :class:`GraphSnapshot`.

The ingest path (:mod:`repro.ingest`) cannot afford the write
amplification of the live-graph route — every
:class:`~repro.graph.labeled_graph.LabeledSocialGraph` mutation bumps
the epoch and forces a full CSR rebuild on the next
:meth:`~repro.graph.labeled_graph.LabeledSocialGraph.snapshot`. A
:class:`DeltaSnapshot` instead wraps a frozen base snapshot plus small
per-node add/remove logs:

- reads present the same ``GraphLike`` surface as the base (every
  graph-mirroring method of :class:`GraphSnapshot`, plus ``out_items``
  and ``authority()``), merging the base CSR row with the node's
  overlay log on access — untouched nodes read straight through to the
  base arrays;
- writes are :class:`~repro.graph.events.EdgeEvent` applications
  (follow / unfollow / retopic) with exactly the skip semantics of
  :class:`~repro.dynamics.stream.GraphStream` — an unfollow or retopic
  of a missing edge is a counted no-op;
- :meth:`DeltaSnapshot.compact` folds the logs into a **fresh base**
  :class:`GraphSnapshot`, bit-identical (arrays, interned labels,
  counts, epoch) to what a live graph replaying the same events would
  produce via ``graph.snapshot()``.

Epoch accounting mirrors the live graph exactly: every applied event
bumps the epoch once, plus once per endpoint node it implicitly
creates, so the compacted snapshot's epoch equals the live-graph
rebuild's epoch for the same event sequence (the property pinned by
``tests/graph/test_overlay.py``).
"""

from __future__ import annotations

from typing import (Dict, FrozenSet, Iterator, List, Mapping, Optional,
                    Set, Tuple)

import numpy as np

from ..errors import EdgeNotFoundError, NodeNotFoundError
from ..obs import runtime as _obs
from .events import EdgeEvent, EventKind
from .labeled_graph import TopicSet
from .snapshot import GraphSnapshot

_EMPTY: TopicSet = frozenset()


class DeltaSnapshot:
    """A base :class:`GraphSnapshot` plus per-node add/remove logs.

    Presents the shared ``GraphLike`` read surface, so the dict-based
    scorers (:func:`repro.core.exact.single_source_scores`, the
    authority index, traversals) read the overlay directly; vectorised
    consumers (the CSR engine, shard workers) take the
    :meth:`compact`-ed base instead.

    Args:
        base: The pinned snapshot the overlay grows from.
    """

    def __init__(self, base: GraphSnapshot) -> None:
        self.base = base
        #: Publisher profiles of nodes created by the overlay (events
        #: implicitly create endpoints with empty profiles, exactly
        #: like ``LabeledSocialGraph.add_edge``).
        self._new_profiles: Dict[int, TopicSet] = {}
        # Per-node overlay logs: target -> label, or None for a
        # tombstone superseding a base edge. One dict per touched
        # source (out) / target (in); untouched nodes have no entry.
        self._out_over: Dict[int, Dict[int, Optional[TopicSet]]] = {}
        self._in_over: Dict[int, Dict[int, Optional[TopicSet]]] = {}
        # Copy-on-write per-topic follower counts of touched targets.
        self._counts_over: Dict[int, Dict[str, int]] = {}
        self._num_edges = base.num_edges
        self._epoch = base.epoch
        self._max_cache: Optional[Dict[str, int]] = None
        self._authority = None
        self._csr_cache: Optional[GraphSnapshot] = None
        #: Events applied (mutating) / skipped (missing-edge no-ops).
        self.events_applied = 0
        self.events_skipped = 0

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def apply(self, event: EdgeEvent) -> bool:
        """Apply one event to the overlay; ``False`` for no-op skips.

        Mirrors :meth:`repro.dynamics.stream.GraphStream.apply`: a
        follow of an existing edge relabels it; an unfollow or retopic
        of a missing edge is skipped.
        """
        if event.kind is EventKind.FOLLOW:
            self._add_edge(event.source, event.target,
                           frozenset(event.topics))
        elif event.kind is EventKind.RETOPIC:
            if self._edge_label(event.source, event.target) is None:
                self.events_skipped += 1
                return False
            self._add_edge(event.source, event.target,
                           frozenset(event.topics))
        else:
            if self._edge_label(event.source, event.target) is None:
                self.events_skipped += 1
                return False
            self._remove_edge(event.source, event.target)
        self.events_applied += 1
        _obs.count("graph.overlay_events_total")
        return True

    def _ensure_node(self, node: int) -> None:
        if node not in self.base.position and node not in self._new_profiles:
            self._new_profiles[node] = _EMPTY
            self._counts_over[node] = {}
            self._epoch += 1  # LabeledSocialGraph.add_node bumps once

    def _add_edge(self, source: int, target: int, label: TopicSet) -> None:
        if source == target:
            raise ValueError(f"self-loop on node {source} is not allowed")
        self._ensure_node(source)
        self._ensure_node(target)
        previous = self._edge_label(source, target)
        if previous is None:
            self._num_edges += 1
        else:
            self._retract_counts(target, previous)
        self._out_over.setdefault(source, {})[target] = label
        self._in_over.setdefault(target, {})[source] = label
        counts = self._counts_of(target)
        for topic in sorted(label):
            counts[topic] = counts.get(topic, 0) + 1
        self._touch()

    def _remove_edge(self, source: int, target: int) -> None:
        label = self._edge_label(source, target)
        if label is None:
            raise EdgeNotFoundError(source, target)
        self._out_over.setdefault(source, {})[target] = None
        self._in_over.setdefault(target, {})[source] = None
        self._retract_counts(target, label)
        self._num_edges -= 1
        self._touch()

    def _retract_counts(self, target: int, label: TopicSet) -> None:
        counts = self._counts_of(target)
        for topic in label:
            remaining = counts[topic] - 1
            if remaining:
                counts[topic] = remaining
            else:
                del counts[topic]

    def _counts_of(self, target: int) -> Dict[str, int]:
        counts = self._counts_over.get(target)
        if counts is None:
            if target in self.base.position:
                counts = dict(self.base.follower_topic_counts(target))
            else:
                counts = {}
            self._counts_over[target] = counts
        return counts

    def _touch(self) -> None:
        self._epoch += 1
        self._max_cache = None
        self._authority = None

    # ------------------------------------------------------------------
    # Overlay-aware row merging
    # ------------------------------------------------------------------
    def _edge_label(self, source: int, target: int) -> Optional[TopicSet]:
        over = self._out_over.get(source)
        if over is not None and target in over:
            return over[target]
        if source in self._new_profiles or source not in self.base.position:
            return None
        return self.base.out_neighbors(source).get(target)

    def _merged_row(self, node: int, over: Dict[int, Dict[int,
                    Optional[TopicSet]]], base_row) -> Dict[int, TopicSet]:
        if node in self._new_profiles:
            merged: Dict[int, TopicSet] = {}
        else:
            merged = dict(base_row(node))
        log = over.get(node)
        if log:
            for other, label in log.items():
                if label is None:
                    merged.pop(other, None)
                else:
                    merged[other] = label
        return merged

    def _require_node(self, node: int) -> None:
        if node not in self.base.position and node not in self._new_profiles:
            raise NodeNotFoundError(node)

    # ------------------------------------------------------------------
    # GraphLike read surface
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Epoch the overlay has advanced to (base epoch + mutations)."""
        return self._epoch

    @property
    def is_stale(self) -> bool:
        """An overlay is its own source of truth — never stale."""
        return False

    def ensure_fresh(self, allow_stale: bool = False) -> "DeltaSnapshot":
        """Overlays carry their own epoch; always fresh by definition."""
        return self

    @property
    def overlay_edges(self) -> int:
        """Total log entries (adds + tombstones) across all nodes."""
        return (sum(len(log) for log in self._out_over.values())  # repro: ignore[R2] -- integer cardinalities; addition is exact in any order
                + len(self._new_profiles))

    @property
    def num_nodes(self) -> int:
        """Number of accounts (base plus overlay-created)."""
        return self.base.num_nodes + len(self._new_profiles)

    @property
    def num_edges(self) -> int:
        """Number of follow edges after the logs."""
        return self._num_edges

    def __len__(self) -> int:
        return self.num_nodes

    def __contains__(self, node: int) -> bool:
        return node in self.base.position or node in self._new_profiles

    def nodes(self) -> Iterator[int]:
        """Iterate over every account id (ascending)."""
        if not self._new_profiles:
            return iter(self.base.node_ids)
        merged = sorted(set(self.base.node_ids) | set(self._new_profiles))
        return iter(merged)

    def edges(self) -> Iterator[Tuple[int, int, TopicSet]]:
        """Yield every edge as ``(source, target, topics)``."""
        for source in self.nodes():
            for target, label in self.out_items(source):
                yield source, target, label

    def has_edge(self, source: int, target: int) -> bool:
        """Whether *source* follows *target* after the logs."""
        return self._edge_label(source, target) is not None

    def node_topics(self, node: int) -> TopicSet:
        """Publisher profile of *node*."""
        profile = self._new_profiles.get(node)
        if profile is not None:
            return profile
        return self.base.node_topics(node)

    def edge_topics(self, source: int, target: int) -> TopicSet:
        """Topic labels of the edge *source* → *target*."""
        label = self._edge_label(source, target)
        if label is None:
            raise EdgeNotFoundError(source, target)
        return label

    def out_neighbors(self, node: int) -> Mapping[int, TopicSet]:
        """Accounts *node* follows, mapped to the edge labels."""
        self._require_node(node)
        return self._merged_row(node, self._out_over,
                                self.base.out_neighbors)

    def in_neighbors(self, node: int) -> Mapping[int, TopicSet]:
        """Followers of *node* (Γ_node), mapped to the edge labels."""
        self._require_node(node)
        return self._merged_row(node, self._in_over, self.base.in_neighbors)

    def followers(self, node: int) -> Mapping[int, TopicSet]:
        """Alias for :meth:`in_neighbors` matching the paper's Γu."""
        return self.in_neighbors(node)

    def out_items(self, node: int) -> list:
        """``(neighbor_id, label)`` pairs of *node*, ascending by id.

        Untouched base nodes return the base's cached list unchanged;
        touched nodes merge their log into a freshly sorted list.
        """
        if node not in self._out_over and node not in self._new_profiles:
            return self.base.out_items(node)
        merged = self.out_neighbors(node)
        return sorted(merged.items())

    def out_degree(self, node: int) -> int:
        """Number of accounts *node* follows."""
        if node not in self._out_over and node not in self._new_profiles:
            return self.base.out_degree(node)
        return len(self.out_neighbors(node))

    def in_degree(self, node: int) -> int:
        """Number of followers of *node*."""
        if node not in self._in_over and node not in self._new_profiles:
            return self.base.in_degree(node)
        return len(self.in_neighbors(node))

    def follower_count(self, node: int) -> int:
        """``|Γu|`` — total number of followers of *node*."""
        return self.in_degree(node)

    def follower_count_on(self, node: int, topic: str) -> int:
        """``|Γu(t)|`` — followers of *node* whose edge carries *topic*."""
        counts = self._counts_over.get(node)
        if counts is not None:
            return counts.get(topic, 0)
        return self.base.follower_count_on(node, topic)

    def follower_topic_counts(self, node: int) -> Mapping[str, int]:
        """All per-topic follower counts of *node* (zero counts omitted)."""
        counts = self._counts_over.get(node)
        if counts is not None:
            return counts
        return self.base.follower_topic_counts(node)

    def max_followers_on(self, topic: str) -> int:
        """``max_v |Γv(t)|`` — recomputed lazily after overlay writes."""
        cache = self._max_cache
        if cache is None:
            cache = {}
            for index, node in enumerate(self.base.node_ids):
                counts = self._counts_over.get(node)
                if counts is None:
                    counts = self.base._follower_counts[index]
                for t, count in counts.items():
                    if count > cache.get(t, 0):
                        cache[t] = count
            for node in self._new_profiles:
                for t, count in self._counts_over.get(node, {}).items():
                    if count > cache.get(t, 0):
                        cache[t] = count
            self._max_cache = cache
        return cache.get(topic, 0)

    def topics(self) -> FrozenSet[str]:
        """The set of topics appearing on any node or edge."""
        seen = set(self.base.topics())
        for log in self._out_over.values():
            for label in log.values():
                if label:
                    seen |= label
        return frozenset(seen)

    # ------------------------------------------------------------------
    # CSR view — lets the batched engines bind to an overlay directly
    # ------------------------------------------------------------------
    def csr_view(self) -> GraphSnapshot:
        """An epoch-cached compaction serving the array attributes.

        :class:`~repro.core.fast.SparseEngine` binds to CSR arrays at
        construction; the properties below delegate to this view so
        ``SparseEngine(overlay)`` works unchanged. The view is rebuilt
        lazily after each applied event — construct engines *after*
        the events they should observe.
        """
        cache = self._csr_cache
        if cache is None or cache.epoch != self._epoch:
            cache = self.compact()
            self._csr_cache = cache
        return cache

    @property
    def node_ids(self):
        """Node ids in snapshot order (see :class:`GraphSnapshot`)."""
        return self.csr_view().node_ids

    @property
    def position(self):
        """node id → dense index of the current CSR view."""
        return self.csr_view().position

    @property
    def out_indptr(self):
        return self.csr_view().out_indptr

    @property
    def out_indices(self):
        return self.csr_view().out_indices

    @property
    def out_label_ids(self):
        return self.csr_view().out_label_ids

    @property
    def in_indptr(self):
        return self.csr_view().in_indptr

    @property
    def in_indices(self):
        return self.csr_view().in_indices

    @property
    def in_label_ids(self):
        return self.csr_view().in_label_ids

    @property
    def labels(self):
        """Interned edge labels of the current CSR view."""
        return self.csr_view().labels

    @property
    def topic_ids(self):
        """topic → interned id of the current CSR view."""
        return self.csr_view().topic_ids

    def in_edge_rows(self):
        """Delegates to the CSR view (sparse-engine weight builder)."""
        return self.csr_view().in_edge_rows()

    def index_of(self, node: int) -> int:
        """Dense index of *node* in the current CSR view."""
        return self.csr_view().index_of(node)

    def node_at(self, index: int) -> int:
        """Node id at dense *index* of the current CSR view."""
        return self.csr_view().node_at(index)

    def authority(self):
        """A per-overlay-epoch :class:`~repro.core.scores.AuthorityIndex`.

        Dropped on every applied event, so scorers reading through the
        overlay never see pre-mutation authority values.
        """
        authority = self._authority
        if authority is None:
            from ..core.scores import AuthorityIndex
            authority = AuthorityIndex(self)
            self._authority = authority
        return authority

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self) -> GraphSnapshot:
        """Fold the logs into a fresh base :class:`GraphSnapshot`.

        The result is constructed array-by-array (the
        :meth:`GraphSnapshot.from_store` pattern — no intermediate
        :class:`LabeledSocialGraph`) but is bit-identical to what a
        live graph replaying the same events would produce via
        ``graph.snapshot()``: same node order, same CSR arrays, same
        first-occurrence label interning (out rows then in rows, nodes
        ascending, neighbours ascending), same counts, same epoch.
        """
        with _obs.span("graph.overlay_compact") as _sp:
            snapshot = self._compact()
            if _sp:
                _sp.set(nodes=snapshot.num_nodes, edges=snapshot.num_edges,
                        overlay_edges=self.overlay_edges,
                        epoch=snapshot.epoch)
        _obs.count("graph.overlay_compactions_total")
        return snapshot

    def _compact(self) -> GraphSnapshot:
        base = self.base
        if self._new_profiles:
            node_list: List[int] = sorted(
                set(base.node_ids) | set(self._new_profiles))
        else:
            node_list = list(base.node_ids)
        position = {node: i for i, node in enumerate(node_list)}

        label_ids: Dict[TopicSet, int] = {}
        labels: List[TopicSet] = []

        def intern(label: TopicSet) -> int:
            lid = label_ids.get(label)
            if lid is None:
                lid = len(labels)
                label_ids[label] = lid
                labels.append(label)
            return lid

        out_indptr = [0]
        out_indices: List[int] = []
        out_labels: List[int] = []
        for node in node_list:
            for neighbor, label in self.out_items(node):
                out_indices.append(position[neighbor])
                out_labels.append(intern(label))
            out_indptr.append(len(out_indices))

        in_indptr = [0]
        in_indices: List[int] = []
        in_labels: List[int] = []
        for node in node_list:
            row = self.in_neighbors(node)
            for follower in sorted(row):
                in_indices.append(position[follower])
                in_labels.append(intern(row[follower]))
            in_indptr.append(len(in_indices))

        profiles = tuple(self.node_topics(node) for node in node_list)
        follower_counts = tuple(
            dict(self.follower_topic_counts(node)) for node in node_list)

        vocabulary: Set[str] = set()
        for profile in profiles:
            vocabulary |= profile
        for label in labels:
            vocabulary |= label

        max_followers: Dict[str, int] = {}
        for counts in follower_counts:
            for topic, count in counts.items():
                if count > max_followers.get(topic, 0):
                    max_followers[topic] = count

        snapshot = GraphSnapshot.__new__(GraphSnapshot)
        snapshot.node_ids = tuple(node_list)
        snapshot.position = position
        snapshot.out_indptr = np.asarray(out_indptr, dtype=np.int64)
        snapshot.out_indices = np.asarray(out_indices, dtype=np.int64)
        snapshot.out_label_ids = np.asarray(out_labels, dtype=np.int64)
        snapshot.in_indptr = np.asarray(in_indptr, dtype=np.int64)
        snapshot.in_indices = np.asarray(in_indices, dtype=np.int64)
        snapshot.in_label_ids = np.asarray(in_labels, dtype=np.int64)
        snapshot.labels = tuple(labels)
        snapshot.topic_list = tuple(sorted(vocabulary))
        snapshot.topic_ids = {
            topic: i for i, topic in enumerate(snapshot.topic_list)}
        snapshot.profiles = profiles
        snapshot._follower_counts = follower_counts
        snapshot._max_followers = max_followers
        snapshot.epoch = self._epoch
        snapshot._graph_ref = None
        snapshot._store = None
        n = len(node_list)
        snapshot._out_items_cache = [None] * n
        snapshot._out_map_cache = [None] * n
        snapshot._in_map_cache = [None] * n
        snapshot._in_rows = None
        snapshot._authority = None
        return snapshot

    def __repr__(self) -> str:
        return (f"DeltaSnapshot(base_epoch={self.base.epoch}, "
                f"epoch={self._epoch}, overlay_edges={self.overlay_edges})")
