"""Parameter objects shared across the library.

The paper fixes two decay factors (Section 5.2): ``beta = 0.0005`` (path
decay, the Katz damping) and ``alpha = 0.85`` (edge-distance decay).
These are collected in a frozen dataclass so every component — exact
power iteration, landmark preprocessing, query-time approximation,
baselines — agrees on one validated set of knobs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Mapping, Optional

from .errors import ConfigurationError

#: Decay values used throughout the paper's experiments (Section 5.2).
PAPER_BETA = 0.0005
PAPER_ALPHA = 0.85


@dataclass(frozen=True)
class ScoreParams:
    """Parameters of the Tr recommendation score (Definition 1).

    Attributes:
        beta: Path-length decay factor ``β ∈ (0, 1)``. Longer paths
            contribute ``β^|p|`` of their topical weight.
        alpha: Edge-distance decay factor ``α ∈ (0, 1]``. An edge at
            distance ``d`` from the query node contributes ``α^d``.
        tolerance: Convergence threshold for the iterative computation;
            iteration stops when the average score increment over the
            frontier falls below this value (Algorithm 1, line 15).
        max_iter: Safety cap on power-iteration steps.
    """

    beta: float = PAPER_BETA
    alpha: float = PAPER_ALPHA
    tolerance: float = 1e-9
    max_iter: int = 50

    def __post_init__(self) -> None:
        if not 0.0 < self.beta < 1.0:
            raise ConfigurationError(f"beta must be in (0, 1), got {self.beta}")
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {self.alpha}")
        if self.tolerance <= 0.0:
            raise ConfigurationError(
                f"tolerance must be positive, got {self.tolerance}")
        if self.max_iter < 1:
            raise ConfigurationError(
                f"max_iter must be at least 1, got {self.max_iter}")

    @property
    def edge_decay(self) -> float:
        """Combined per-hop decay ``α·β`` used for the topo_{αβ} vector."""
        return self.alpha * self.beta

    def with_(self, **changes: float) -> "ScoreParams":
        """Return a copy with the given fields replaced (validated)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class LandmarkParams:
    """Parameters of the landmark index (Section 4).

    Attributes:
        num_landmarks: Size of the landmark set ``|L|`` (paper uses 100).
        top_n: How many recommendations each landmark stores per topic
            (paper studies 10 / 100 / 1000).
        query_depth: BFS exploration depth at query time (paper uses 2).
        precompute_depth: Hard cap on the walk length explored during
            preprocessing (Algorithm 1). Propagation stops at the
            earlier of convergence (frontier mass below ``tolerance``)
            and this many rounds, so deep or cyclic graphs can never
            raise :class:`~repro.errors.ConvergenceError` while an
            index is being built. ``None`` removes the cap and demands
            convergence within ``ScoreParams.max_iter`` rounds.
    """

    num_landmarks: int = 100
    top_n: int = 100
    query_depth: int = 2
    precompute_depth: Optional[int] = 20

    def __post_init__(self) -> None:
        if self.num_landmarks < 1:
            raise ConfigurationError(
                f"num_landmarks must be >= 1, got {self.num_landmarks}")
        if self.top_n < 1:
            raise ConfigurationError(f"top_n must be >= 1, got {self.top_n}")
        if self.query_depth < 1:
            raise ConfigurationError(
                f"query_depth must be >= 1, got {self.query_depth}")
        if (self.precompute_depth is not None
                and self.precompute_depth < self.query_depth):
            raise ConfigurationError(
                "precompute_depth must be >= query_depth "
                f"({self.precompute_depth} < {self.query_depth})")


#: Engine names accepted everywhere an ``engine=`` knob exists.
ENGINE_CHOICES = ("auto", "dict", "sparse")


@dataclass(frozen=True)
class EngineParams:
    """Propagation-engine selection for bulk workloads.

    Attributes:
        engine: ``"dict"`` (the readable reference engine of
            :mod:`repro.core.exact`), ``"sparse"`` (the batched CSR
            engine of :mod:`repro.core.fast`; requires scipy), or
            ``"auto"`` (sparse when scipy is importable, dict
            otherwise).
        workers: Fan-out width for the dict engine: landmarks are
            propagated on a ``concurrent.futures`` thread pool of this
            size. Ignored by the sparse engine, whose batching already
            fills the machine through BLAS.
        batch_size: How many sources the sparse engine propagates per
            mat–mat product block.
    """

    engine: str = "auto"
    workers: int = 1
    batch_size: int = 32

    def __post_init__(self) -> None:
        if self.engine not in ENGINE_CHOICES:
            raise ConfigurationError(
                f"engine must be one of {ENGINE_CHOICES}, "
                f"got {self.engine!r}")
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}")
        if self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {self.batch_size}")


@dataclass(frozen=True)
class EvaluationParams:
    """Parameters of the Section 5.3 link-prediction protocol.

    Attributes:
        test_size: Number of removed edges per trial (paper: T = 100).
        num_negatives: Random candidate accounts mixed with the true
            target (paper: 1000).
        k_in: Minimum in-degree of a test edge's target.
        k_out: Minimum out-degree of a test edge's source.
        trials: Number of independent trials averaged (paper: 100).
        max_rank: Largest N for recall@N curves (paper plots up to 20).
    """

    test_size: int = 100
    num_negatives: int = 1000
    k_in: int = 3
    k_out: int = 3
    trials: int = 10
    max_rank: int = 20

    def __post_init__(self) -> None:
        for name in ("test_size", "num_negatives", "trials", "max_rank"):
            value = getattr(self, name)
            if value < 1:
                raise ConfigurationError(f"{name} must be >= 1, got {value}")
        if self.k_in < 0 or self.k_out < 0:
            raise ConfigurationError("k_in and k_out must be non-negative")


#: Default query-topic weights: uniform. Kept as a helper so callers can
#: express Section 3.2's "weighted linear combination" explicitly.
def normalize_weights(weights: Mapping[str, float]) -> dict[str, float]:
    """Normalise topic weights to sum to one.

    Raises:
        ConfigurationError: if the mapping is empty, has a negative
            weight, or sums to zero.
    """
    if not weights:
        raise ConfigurationError("query must contain at least one topic")
    if any(w < 0 for w in weights.values()):
        raise ConfigurationError("topic weights must be non-negative")
    total = math.fsum(weights.values())
    if total <= 0.0:
        raise ConfigurationError("topic weights must not all be zero")
    return {topic: w / total for topic, w in weights.items()}
