"""Vectorised propagation engine on CSR matrices.

The dict-based engine of :mod:`repro.core.exact` is the reference
implementation, readable next to Proposition 1. This engine computes
the same fixed point in vector form (Equation 6's iteration, literally)
on ``scipy.sparse`` CSR matrices:

- ``A`` — adjacency with ``A[v, u] = 1`` iff u follows v;
- ``S_t`` — per-topic semantic matrix with
  ``S_t[v, u] = maxsim(label(u→v), t) · auth(v, t)`` on edges,
  built lazily per topic and cached (the matrices share A's pattern).

Per step: ``tb ← β·A tb``, ``tab ← αβ·A tab``,
``r_t ← β·A r_t + βα·S_t tab``, accumulated until the frontier mass
drops below tolerance — the same stopping rule, so results match the
reference engine to floating-point accumulation order.

Use for bulk workloads (landmark preprocessing over many sources, the
evaluation protocol): the matrices are built once per graph and each
propagation is a handful of sparse mat-vecs. :meth:`SparseEngine.
multi_source` goes one step further and propagates a block of B
sources as n×B mat–mat products — one BLAS call replaces B Python-level
mat-vec loops, which is what makes Algorithm 1 cheap over hundreds of
landmarks.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

try:  # scipy is an optional test/bench dependency
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - exercised on scipy-less installs
    _sparse = None

from ..config import ENGINE_CHOICES, ScoreParams
from ..errors import ConfigurationError, ConvergenceError, NodeNotFoundError
from ..graph.labeled_graph import LabeledSocialGraph
from ..graph.snapshot import GraphLike, as_snapshot
from ..obs import runtime as _obs
from ..semantics.matrix import SimilarityMatrix
from .exact import ScoreState, semantic_edge_weights
from .scores import AuthorityIndex


def scipy_available() -> bool:
    """Whether the sparse engine can be used on this install."""
    return _sparse is not None


def resolve_engine(name: str) -> str:
    """Resolve an ``engine=`` knob to a concrete engine name.

    ``"auto"`` picks ``"sparse"`` when scipy is importable and falls
    back to ``"dict"`` otherwise; explicit names are validated.

    Raises:
        ConfigurationError: on an unknown name, or on an explicit
            ``"sparse"`` request when scipy is not installed.
    """
    if name not in ENGINE_CHOICES:
        raise ConfigurationError(
            f"engine must be one of {ENGINE_CHOICES}, got {name!r}")
    if name == "auto":
        return "sparse" if scipy_available() else "dict"
    if name == "sparse" and not scipy_available():
        raise ConfigurationError(
            "engine='sparse' requires scipy; install it or pass "
            "engine='auto' to fall back to the dict engine")
    return name


class SparseEngine:
    """Reusable CSR-based Tr propagation for one (snapshot, similarity).

    The engine is a thin wrapper over a
    :class:`~repro.graph.snapshot.GraphSnapshot`: the adjacency CSR
    *shares* the snapshot's in-adjacency arrays (construction runs no
    Python-level edge loop), and per-topic semantic matrices are built
    from the shared :func:`~repro.core.exact.semantic_edge_weights`
    and cached by interned topic id. Every scoring call re-checks the
    snapshot's epoch, so mutating the graph without
    :meth:`invalidate` fails loudly instead of serving stale scores.

    Args:
        graph: The labeled follow graph, or a prebuilt snapshot of it.
        similarity: Topic-similarity matrix.
        params: Decay/convergence parameters.
        authority: Optional shared authority cache; defaults to the
            snapshot's shared one.
        allow_stale: Keep scoring a snapshot whose graph has moved on
            (eval replays) instead of raising ``StaleSnapshotError``.

    Raises:
        ConfigurationError: when scipy is not installed.
    """

    def __init__(self, graph: GraphLike,
                 similarity: SimilarityMatrix,
                 params: ScoreParams = ScoreParams(),
                 authority: Optional[AuthorityIndex] = None,
                 allow_stale: bool = False) -> None:
        if _sparse is None:
            raise ConfigurationError(
                "the sparse engine requires scipy; install it or use "
                "repro.core.exact.single_source_scores")
        self.graph = graph
        self.similarity = similarity
        self.params = params
        self.allow_stale = allow_stale
        self._authority_shared = authority is None
        self._bind(as_snapshot(graph, allow_stale), authority)

    def _bind(self, snapshot: Any,
              authority: Optional[AuthorityIndex]) -> None:
        """Point the engine at *snapshot*, sharing its arrays."""
        self.snapshot = snapshot
        self._authority = (snapshot.authority() if authority is None
                           else authority)
        self._nodes: List[int] = list(snapshot.node_ids)
        self._position: Dict[int, int] = snapshot.position
        n = len(self._nodes)
        self._adjacency = _sparse.csr_matrix(
            (np.ones(len(snapshot.in_indices)), snapshot.in_indices,
             snapshot.in_indptr), shape=(n, n))
        # Cached S_t matrices keyed by the snapshot's interned topic
        # id; query topics outside the snapshot vocabulary get
        # engine-local negative ids.
        self._semantic_cache: Dict[int, "_sparse.csr_matrix"] = {}
        self._extra_topic_ids: Dict[str, int] = {}

    def _topic_key(self, topic: str) -> int:
        key = self.snapshot.topic_ids.get(topic)
        if key is None:
            key = self._extra_topic_ids.get(topic)
            if key is None:
                key = -1 - len(self._extra_topic_ids)
                self._extra_topic_ids[topic] = key
        return key

    # ------------------------------------------------------------------
    def _semantic_matrix(self, topic: str) -> Any:
        key = self._topic_key(topic)
        cached = self._semantic_cache.get(key)
        if cached is not None:
            return cached
        snapshot = self.snapshot
        weights = semantic_edge_weights(snapshot, self.similarity, topic,
                                        self._authority)
        n = len(self._nodes)
        matrix = _sparse.csr_matrix(
            (weights, snapshot.in_indices, snapshot.in_indptr), shape=(n, n))
        self._semantic_cache[key] = matrix
        return matrix

    def single_source(self, source: int, topics: Sequence[str],
                      max_depth: Optional[int] = None,
                      absorbing: Optional[frozenset] = None,
                      allow_stale: Optional[bool] = None) -> ScoreState:
        """Vectorised equivalent of
        :func:`repro.core.exact.single_source_scores`."""
        return self.multi_source([source], topics, max_depth=max_depth,
                                 absorbing=absorbing,
                                 allow_stale=allow_stale)[0]

    def multi_source(self, sources: Sequence[int], topics: Sequence[str],
                     max_depth: Optional[int] = None,
                     absorbing: Optional[frozenset] = None,
                     allow_stale: Optional[bool] = None,
                     ) -> List[ScoreState]:
        """Propagate a block of B sources simultaneously.

        The three frontier vectors of the reference engine become n×B
        blocks and every step is a sparse mat–mat product (``A @ R``),
        so the per-source cost is amortised across the batch — the
        regime of landmark preprocessing (Algorithm 1 over hundreds of
        landmarks) and the evaluation protocol.

        Convergence is tracked *per column*: a source whose frontier
        mass falls below ``params.tolerance`` is frozen (its column is
        dropped from subsequent products) while the rest keep
        iterating, so each returned :class:`ScoreState` carries the
        same ``iterations``/``converged`` it would get from
        :meth:`single_source`.

        Args:
            sources: Source nodes (one propagation per entry; the
                batch may be empty).
            topics: Topics to score, shared by every source.
            max_depth: Walk-length cap applied to every column;
                ``None`` runs each column to convergence.
            absorbing: Nodes whose mass is not propagated further —
                each column's own source always propagates, matching
                the reference engine.
            allow_stale: Per-call staleness override; ``None`` keeps
                the engine's construction-time setting.

        Returns:
            One :class:`ScoreState` per source, in input order.

        Raises:
            NodeNotFoundError: if any source is not in the graph.
            ConvergenceError: if ``max_depth`` is ``None`` and at
                least one column has not converged within
                ``params.max_iter`` rounds.
        """
        self.snapshot.ensure_fresh(
            self.allow_stale if allow_stale is None else allow_stale)
        positions: List[int] = []
        for source in sources:
            position = self._position.get(source)
            if position is None:
                raise NodeNotFoundError(source)
            positions.append(position)
        if not positions:
            return []

        params = self.params
        beta = params.beta
        alpha = params.alpha
        alphabeta = params.edge_decay
        n = len(self._nodes)
        batch = len(positions)
        adjacency = self._adjacency
        with _obs.span("sparse.semantic_build") as _sem:
            if _sem:
                _sem.set(topics=len(topics),
                         built=sum(1 for topic in topics
                                   if self._topic_key(topic)
                                   not in self._semantic_cache))
            semantic = [self._semantic_matrix(topic) for topic in topics]
        position_array = np.asarray(positions)

        absorb_mask = None
        if absorbing:
            absorb_mask = np.ones(n)
            for node in absorbing:
                index = self._position.get(node)
                if index is not None:
                    absorb_mask[index] = 0.0

        tb = np.zeros((n, batch))
        tb[position_array, np.arange(batch)] = 1.0
        tab = tb.copy()
        r = [np.zeros((n, batch)) for _ in topics]
        cumulative_tb = tb.copy()
        cumulative_tab = tab.copy()
        cumulative_r = [block.copy() for block in r]

        limit = params.max_iter if max_depth is None else max_depth
        iterations = np.zeros(batch, dtype=np.int64)
        converged = np.zeros(batch, dtype=bool)
        active = np.ones(batch, dtype=bool)

        with _obs.span("sparse.multi_source") as _root:
            if _root:
                _root.set(batch=batch, topics=len(topics), depth_limit=limit)
            for _ in range(limit):
                live = np.nonzero(active)[0]
                if live.size == 0:
                    break
                with _obs.span("sparse.iteration") as _step:
                    if _step:
                        _step.set(live_columns=int(live.size))
                    frontier_tb = tb[:, live]
                    frontier_tab = tab[:, live]
                    frontier_r = [block[:, live] for block in r]
                    if absorb_mask is not None:
                        columns = np.arange(live.size)
                        source_rows = position_array[live]
                        masked_tb = frontier_tb * absorb_mask[:, None]
                        masked_tab = frontier_tab * absorb_mask[:, None]
                        # each column's own source always propagates
                        masked_tb[source_rows, columns] = \
                            frontier_tb[source_rows, columns]
                        masked_tab[source_rows, columns] = \
                            frontier_tab[source_rows, columns]
                        frontier_tb, frontier_tab = masked_tb, masked_tab
                        masked_r = []
                        for block in frontier_r:
                            masked = block * absorb_mask[:, None]
                            masked[source_rows, columns] = \
                                block[source_rows, columns]
                            masked_r.append(masked)
                        frontier_r = masked_r
                    next_tb = beta * (adjacency @ frontier_tb)
                    next_tab = alphabeta * (adjacency @ frontier_tab)
                    next_r = [
                        beta * (adjacency @ frontier_r[i])
                        + beta * alpha * (semantic[i] @ frontier_tab)
                        for i in range(len(topics))
                    ]
                    iterations[live] += 1
                    new_mass = next_tb.sum(axis=0)
                    for block in next_r:
                        new_mass = new_mass + block.sum(axis=0)
                    cumulative_tb[:, live] += next_tb
                    cumulative_tab[:, live] += next_tab
                    for i in range(len(topics)):
                        cumulative_r[i][:, live] += next_r[i]
                    tb[:, live] = next_tb
                    tab[:, live] = next_tab
                    for i in range(len(topics)):
                        r[i][:, live] = next_r[i]
                    done = new_mass < params.tolerance
                    converged[live[done]] = True
                    active[live[done]] = False
                    if _step:
                        _step.set(residual=float(new_mass.max())
                                  if live.size else 0.0)
            rounds = int(iterations.max()) if batch else 0
            if _root:
                _root.set(iterations=rounds,
                          converged_columns=int(converged.sum()))
            _obs.count("sparse.batches_total")
            _obs.count("sparse.sources_total", batch)
            _obs.count("sparse.iterations_total", rounds)

        if max_depth is None and not converged.all():
            stuck = [sources[int(i)] for i in np.nonzero(~converged)[0]]
            raise ConvergenceError(
                f"sparse propagation from node(s) {stuck} did not "
                f"converge within {params.max_iter} iterations",
                iterations=int(iterations.max()))

        def to_dict(vector: np.ndarray) -> Dict[int, float]:
            indices = np.nonzero(vector)[0]
            return {self._nodes[int(i)]: float(vector[int(i)])
                    for i in indices}

        with _obs.span("sparse.collect") as _collect:
            states: List[ScoreState] = []
            for column, source in enumerate(sources):
                scores = {topic: to_dict(cumulative_r[i][:, column])
                          for i, topic in enumerate(topics)}
                states.append(ScoreState(
                    source=source,
                    scores=scores,
                    topo_beta=to_dict(cumulative_tb[:, column]),
                    topo_alphabeta=to_dict(cumulative_tab[:, column]),
                    iterations=int(iterations[column]),
                    converged=bool(converged[column]),
                ))
            if _collect:
                _collect.set(states=len(states))
        return states

    def invalidate(self) -> None:
        """Re-bind to the graph's current snapshot, dropping topic caches.

        Constructed from a live graph, the engine re-pins to
        ``graph.snapshot()`` (a cheap array share — no edge loop) so
        scoring resumes against the post-mutation state. Constructed
        from a bare snapshot there is nothing fresher to bind; only the
        per-topic caches are dropped.
        """
        if isinstance(self.graph, LabeledSocialGraph):
            if self._authority_shared:
                self._bind(self.graph.snapshot(), None)
            else:
                self._authority.invalidate()
                self._bind(self.graph.snapshot(), self._authority)
        else:
            self._semantic_cache.clear()
            self._extra_topic_ids.clear()
            self._authority.invalidate()
