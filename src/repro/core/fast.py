"""Vectorised propagation engine on CSR matrices.

The dict-based engine of :mod:`repro.core.exact` is the reference
implementation, readable next to Proposition 1. This engine computes
the same fixed point in vector form (Equation 6's iteration, literally)
on ``scipy.sparse`` CSR matrices:

- ``A`` — adjacency with ``A[v, u] = 1`` iff u follows v;
- ``S_t`` — per-topic semantic matrix with
  ``S_t[v, u] = maxsim(label(u→v), t) · auth(v, t)`` on edges,
  built lazily per topic and cached (the matrices share A's pattern).

Per step: ``tb ← β·A tb``, ``tab ← αβ·A tab``,
``r_t ← β·A r_t + βα·S_t tab``, accumulated until the frontier mass
drops below tolerance — the same stopping rule, so results match the
reference engine to floating-point accumulation order.

Use for bulk workloads (landmark preprocessing over many sources, the
evaluation protocol): the matrices are built once per graph and each
propagation is a handful of sparse mat-vecs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

try:  # scipy is an optional test/bench dependency
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - exercised on scipy-less installs
    _sparse = None

from ..config import ScoreParams
from ..errors import ConfigurationError, ConvergenceError, NodeNotFoundError
from ..graph.labeled_graph import LabeledSocialGraph
from ..semantics.matrix import SimilarityMatrix
from .exact import ScoreState
from .scores import AuthorityIndex


def scipy_available() -> bool:
    """Whether the sparse engine can be used on this install."""
    return _sparse is not None


class SparseEngine:
    """Reusable CSR-based Tr propagation for one (graph, similarity).

    Args:
        graph: The labeled follow graph (snapshot — mutate the graph,
            rebuild the engine).
        similarity: Topic-similarity matrix.
        params: Decay/convergence parameters.
        authority: Optional shared authority cache.

    Raises:
        ConfigurationError: when scipy is not installed.
    """

    def __init__(self, graph: LabeledSocialGraph,
                 similarity: SimilarityMatrix,
                 params: ScoreParams = ScoreParams(),
                 authority: Optional[AuthorityIndex] = None) -> None:
        if _sparse is None:
            raise ConfigurationError(
                "the sparse engine requires scipy; install it or use "
                "repro.core.exact.single_source_scores")
        self.graph = graph
        self.similarity = similarity
        self.params = params
        self._authority = authority or AuthorityIndex(graph)
        self._nodes: List[int] = sorted(graph.nodes())
        self._position: Dict[int, int] = {
            node: i for i, node in enumerate(self._nodes)}
        n = len(self._nodes)
        rows: List[int] = []
        cols: List[int] = []
        self._edge_labels: List[frozenset] = []
        for source, target, label in graph.edges():
            rows.append(self._position[target])
            cols.append(self._position[source])
            self._edge_labels.append(label)
        data = np.ones(len(rows))
        self._adjacency = _sparse.csr_matrix(
            (data, (rows, cols)), shape=(n, n))
        self._rows = np.asarray(rows)
        self._cols = np.asarray(cols)
        self._semantic_cache: Dict[str, "_sparse.csr_matrix"] = {}

    # ------------------------------------------------------------------
    def _semantic_matrix(self, topic: str):
        cached = self._semantic_cache.get(topic)
        if cached is not None:
            return cached
        weights = np.empty(len(self._edge_labels))
        auth_cache: Dict[int, float] = {}
        for index, label in enumerate(self._edge_labels):
            best = (self.similarity.max_similarity(label, topic)
                    if label else 0.0)
            if best:
                target_position = int(self._rows[index])
                auth_value = auth_cache.get(target_position)
                if auth_value is None:
                    node = self._nodes[target_position]
                    auth_value = self._authority.auth(node, topic)
                    auth_cache[target_position] = auth_value
                weights[index] = best * auth_value
            else:
                weights[index] = 0.0
        n = len(self._nodes)
        matrix = _sparse.csr_matrix(
            (weights, (self._rows, self._cols)), shape=(n, n))
        self._semantic_cache[topic] = matrix
        return matrix

    def single_source(self, source: int, topics: Sequence[str],
                      max_depth: Optional[int] = None,
                      absorbing: Optional[frozenset] = None) -> ScoreState:
        """Vectorised equivalent of
        :func:`repro.core.exact.single_source_scores`."""
        position = self._position.get(source)
        if position is None:
            raise NodeNotFoundError(source)
        params = self.params
        beta = params.beta
        alphabeta = params.edge_decay
        n = len(self._nodes)
        adjacency = self._adjacency
        semantic = [self._semantic_matrix(topic) for topic in topics]

        absorb_mask = None
        if absorbing:
            absorb_mask = np.ones(n)
            for node in absorbing:
                index = self._position.get(node)
                if index is not None:
                    absorb_mask[index] = 0.0
            absorb_mask[position] = 1.0  # the source always propagates

        tb = np.zeros(n)
        tb[position] = 1.0
        tab = tb.copy()
        r = [np.zeros(n) for _ in topics]
        cumulative_tb = tb.copy()
        cumulative_tab = tab.copy()
        cumulative_r = [vector.copy() for vector in r]

        limit = params.max_iter if max_depth is None else max_depth
        iterations = 0
        converged = False
        for _ in range(limit):
            if absorb_mask is not None:
                tb = tb * absorb_mask
                tab = tab * absorb_mask
                r = [vector * absorb_mask for vector in r]
            next_tb = beta * (adjacency @ tb)
            next_tab = alphabeta * (adjacency @ tab)
            next_r = [
                beta * (adjacency @ r[i])
                + beta * params.alpha * (semantic[i] @ tab)
                for i in range(len(topics))
            ]
            iterations += 1
            new_mass = float(next_tb.sum()
                             + sum(v.sum() for v in next_r))
            cumulative_tb += next_tb
            cumulative_tab += next_tab
            for i in range(len(topics)):
                cumulative_r[i] += next_r[i]
            tb, tab, r = next_tb, next_tab, next_r
            if new_mass < params.tolerance:
                converged = True
                break

        if max_depth is None and not converged:
            raise ConvergenceError(
                f"sparse propagation from node {source} did not converge "
                f"within {params.max_iter} iterations",
                iterations=iterations)

        def to_dict(vector: np.ndarray) -> Dict[int, float]:
            indices = np.nonzero(vector)[0]
            return {self._nodes[int(i)]: float(vector[int(i)])
                    for i in indices}

        scores = {topic: to_dict(cumulative_r[i])
                  for i, topic in enumerate(topics)}
        return ScoreState(
            source=source,
            scores=scores,
            topo_beta=to_dict(cumulative_tb),
            topo_alphabeta=to_dict(cumulative_tab),
            iterations=iterations,
            converged=converged,
        )

    def invalidate(self) -> None:
        """Drop the per-topic semantic caches (after authority changes)."""
        self._semantic_cache.clear()
        self._authority.invalidate()
