"""Vectorised propagation engine on CSR matrices.

The dict-based engine of :mod:`repro.core.exact` is the reference
implementation, readable next to Proposition 1. This engine computes
the same fixed point in vector form (Equation 6's iteration, literally)
on ``scipy.sparse`` CSR matrices:

- ``A`` — adjacency with ``A[v, u] = 1`` iff u follows v;
- ``S_t`` — per-topic semantic matrix with
  ``S_t[v, u] = maxsim(label(u→v), t) · auth(v, t)`` on edges,
  built lazily per topic and cached (the matrices share A's pattern).

Per step: ``tb ← β·A tb``, ``tab ← αβ·A tab``,
``r_t ← β·A r_t + βα·S_t tab``, accumulated until the frontier mass
drops below tolerance — the same stopping rule, so results match the
reference engine to floating-point accumulation order.

Use for bulk workloads (landmark preprocessing over many sources, the
evaluation protocol): the matrices are built once per graph and each
propagation is a handful of sparse mat-vecs. :meth:`SparseEngine.
multi_source` goes one step further and propagates a block of B
sources as n×B mat–mat products — one BLAS call replaces B Python-level
mat-vec loops, which is what makes Algorithm 1 cheap over hundreds of
landmarks.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

try:  # scipy is an optional test/bench dependency
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - exercised on scipy-less installs
    _sparse = None

from ..config import ENGINE_CHOICES, ScoreParams
from ..errors import ConfigurationError, ConvergenceError, NodeNotFoundError
from ..graph.labeled_graph import LabeledSocialGraph
from ..obs import runtime as _obs
from ..semantics.matrix import SimilarityMatrix
from .exact import ScoreState
from .scores import AuthorityIndex


def scipy_available() -> bool:
    """Whether the sparse engine can be used on this install."""
    return _sparse is not None


def resolve_engine(name: str) -> str:
    """Resolve an ``engine=`` knob to a concrete engine name.

    ``"auto"`` picks ``"sparse"`` when scipy is importable and falls
    back to ``"dict"`` otherwise; explicit names are validated.

    Raises:
        ConfigurationError: on an unknown name, or on an explicit
            ``"sparse"`` request when scipy is not installed.
    """
    if name not in ENGINE_CHOICES:
        raise ConfigurationError(
            f"engine must be one of {ENGINE_CHOICES}, got {name!r}")
    if name == "auto":
        return "sparse" if scipy_available() else "dict"
    if name == "sparse" and not scipy_available():
        raise ConfigurationError(
            "engine='sparse' requires scipy; install it or pass "
            "engine='auto' to fall back to the dict engine")
    return name


class SparseEngine:
    """Reusable CSR-based Tr propagation for one (graph, similarity).

    Args:
        graph: The labeled follow graph (snapshot — mutate the graph,
            rebuild the engine).
        similarity: Topic-similarity matrix.
        params: Decay/convergence parameters.
        authority: Optional shared authority cache.

    Raises:
        ConfigurationError: when scipy is not installed.
    """

    def __init__(self, graph: LabeledSocialGraph,
                 similarity: SimilarityMatrix,
                 params: ScoreParams = ScoreParams(),
                 authority: Optional[AuthorityIndex] = None) -> None:
        if _sparse is None:
            raise ConfigurationError(
                "the sparse engine requires scipy; install it or use "
                "repro.core.exact.single_source_scores")
        self.graph = graph
        self.similarity = similarity
        self.params = params
        self._authority = (authority if authority is not None
                           else AuthorityIndex(graph))
        self._nodes: List[int] = sorted(graph.nodes())
        self._position: Dict[int, int] = {
            node: i for i, node in enumerate(self._nodes)}
        n = len(self._nodes)
        rows: List[int] = []
        cols: List[int] = []
        self._edge_labels: List[frozenset] = []
        for source, target, label in graph.edges():
            rows.append(self._position[target])
            cols.append(self._position[source])
            self._edge_labels.append(label)
        data = np.ones(len(rows))
        self._adjacency = _sparse.csr_matrix(
            (data, (rows, cols)), shape=(n, n))
        self._rows = np.asarray(rows)
        self._cols = np.asarray(cols)
        self._semantic_cache: Dict[str, "_sparse.csr_matrix"] = {}

    # ------------------------------------------------------------------
    def _semantic_matrix(self, topic: str) -> Any:
        cached = self._semantic_cache.get(topic)
        if cached is not None:
            return cached
        weights = np.empty(len(self._edge_labels))
        auth_cache: Dict[int, float] = {}
        for index, label in enumerate(self._edge_labels):
            best = (self.similarity.max_similarity(label, topic)
                    if label else 0.0)
            if best:
                target_position = int(self._rows[index])
                auth_value = auth_cache.get(target_position)
                if auth_value is None:
                    node = self._nodes[target_position]
                    auth_value = self._authority.auth(node, topic)
                    auth_cache[target_position] = auth_value
                weights[index] = best * auth_value
            else:
                weights[index] = 0.0
        n = len(self._nodes)
        matrix = _sparse.csr_matrix(
            (weights, (self._rows, self._cols)), shape=(n, n))
        self._semantic_cache[topic] = matrix
        return matrix

    def single_source(self, source: int, topics: Sequence[str],
                      max_depth: Optional[int] = None,
                      absorbing: Optional[frozenset] = None) -> ScoreState:
        """Vectorised equivalent of
        :func:`repro.core.exact.single_source_scores`."""
        return self.multi_source([source], topics, max_depth=max_depth,
                                 absorbing=absorbing)[0]

    def multi_source(self, sources: Sequence[int], topics: Sequence[str],
                     max_depth: Optional[int] = None,
                     absorbing: Optional[frozenset] = None,
                     ) -> List[ScoreState]:
        """Propagate a block of B sources simultaneously.

        The three frontier vectors of the reference engine become n×B
        blocks and every step is a sparse mat–mat product (``A @ R``),
        so the per-source cost is amortised across the batch — the
        regime of landmark preprocessing (Algorithm 1 over hundreds of
        landmarks) and the evaluation protocol.

        Convergence is tracked *per column*: a source whose frontier
        mass falls below ``params.tolerance`` is frozen (its column is
        dropped from subsequent products) while the rest keep
        iterating, so each returned :class:`ScoreState` carries the
        same ``iterations``/``converged`` it would get from
        :meth:`single_source`.

        Args:
            sources: Source nodes (one propagation per entry; the
                batch may be empty).
            topics: Topics to score, shared by every source.
            max_depth: Walk-length cap applied to every column;
                ``None`` runs each column to convergence.
            absorbing: Nodes whose mass is not propagated further —
                each column's own source always propagates, matching
                the reference engine.

        Returns:
            One :class:`ScoreState` per source, in input order.

        Raises:
            NodeNotFoundError: if any source is not in the graph.
            ConvergenceError: if ``max_depth`` is ``None`` and at
                least one column has not converged within
                ``params.max_iter`` rounds.
        """
        positions: List[int] = []
        for source in sources:
            position = self._position.get(source)
            if position is None:
                raise NodeNotFoundError(source)
            positions.append(position)
        if not positions:
            return []

        params = self.params
        beta = params.beta
        alpha = params.alpha
        alphabeta = params.edge_decay
        n = len(self._nodes)
        batch = len(positions)
        adjacency = self._adjacency
        with _obs.span("sparse.semantic_build") as _sem:
            if _sem:
                _sem.set(topics=len(topics),
                         built=sum(1 for topic in topics
                                   if topic not in self._semantic_cache))
            semantic = [self._semantic_matrix(topic) for topic in topics]
        position_array = np.asarray(positions)

        absorb_mask = None
        if absorbing:
            absorb_mask = np.ones(n)
            for node in absorbing:
                index = self._position.get(node)
                if index is not None:
                    absorb_mask[index] = 0.0

        tb = np.zeros((n, batch))
        tb[position_array, np.arange(batch)] = 1.0
        tab = tb.copy()
        r = [np.zeros((n, batch)) for _ in topics]
        cumulative_tb = tb.copy()
        cumulative_tab = tab.copy()
        cumulative_r = [block.copy() for block in r]

        limit = params.max_iter if max_depth is None else max_depth
        iterations = np.zeros(batch, dtype=np.int64)
        converged = np.zeros(batch, dtype=bool)
        active = np.ones(batch, dtype=bool)

        with _obs.span("sparse.multi_source") as _root:
            if _root:
                _root.set(batch=batch, topics=len(topics), depth_limit=limit)
            for _ in range(limit):
                live = np.nonzero(active)[0]
                if live.size == 0:
                    break
                with _obs.span("sparse.iteration") as _step:
                    if _step:
                        _step.set(live_columns=int(live.size))
                    frontier_tb = tb[:, live]
                    frontier_tab = tab[:, live]
                    frontier_r = [block[:, live] for block in r]
                    if absorb_mask is not None:
                        columns = np.arange(live.size)
                        source_rows = position_array[live]
                        masked_tb = frontier_tb * absorb_mask[:, None]
                        masked_tab = frontier_tab * absorb_mask[:, None]
                        # each column's own source always propagates
                        masked_tb[source_rows, columns] = \
                            frontier_tb[source_rows, columns]
                        masked_tab[source_rows, columns] = \
                            frontier_tab[source_rows, columns]
                        frontier_tb, frontier_tab = masked_tb, masked_tab
                        masked_r = []
                        for block in frontier_r:
                            masked = block * absorb_mask[:, None]
                            masked[source_rows, columns] = \
                                block[source_rows, columns]
                            masked_r.append(masked)
                        frontier_r = masked_r
                    next_tb = beta * (adjacency @ frontier_tb)
                    next_tab = alphabeta * (adjacency @ frontier_tab)
                    next_r = [
                        beta * (adjacency @ frontier_r[i])
                        + beta * alpha * (semantic[i] @ frontier_tab)
                        for i in range(len(topics))
                    ]
                    iterations[live] += 1
                    new_mass = next_tb.sum(axis=0)
                    for block in next_r:
                        new_mass = new_mass + block.sum(axis=0)
                    cumulative_tb[:, live] += next_tb
                    cumulative_tab[:, live] += next_tab
                    for i in range(len(topics)):
                        cumulative_r[i][:, live] += next_r[i]
                    tb[:, live] = next_tb
                    tab[:, live] = next_tab
                    for i in range(len(topics)):
                        r[i][:, live] = next_r[i]
                    done = new_mass < params.tolerance
                    converged[live[done]] = True
                    active[live[done]] = False
                    if _step:
                        _step.set(residual=float(new_mass.max())
                                  if live.size else 0.0)
            rounds = int(iterations.max()) if batch else 0
            if _root:
                _root.set(iterations=rounds,
                          converged_columns=int(converged.sum()))
            _obs.count("sparse.batches_total")
            _obs.count("sparse.sources_total", batch)
            _obs.count("sparse.iterations_total", rounds)

        if max_depth is None and not converged.all():
            stuck = [sources[int(i)] for i in np.nonzero(~converged)[0]]
            raise ConvergenceError(
                f"sparse propagation from node(s) {stuck} did not "
                f"converge within {params.max_iter} iterations",
                iterations=int(iterations.max()))

        def to_dict(vector: np.ndarray) -> Dict[int, float]:
            indices = np.nonzero(vector)[0]
            return {self._nodes[int(i)]: float(vector[int(i)])
                    for i in indices}

        with _obs.span("sparse.collect") as _collect:
            states: List[ScoreState] = []
            for column, source in enumerate(sources):
                scores = {topic: to_dict(cumulative_r[i][:, column])
                          for i, topic in enumerate(topics)}
                states.append(ScoreState(
                    source=source,
                    scores=scores,
                    topo_beta=to_dict(cumulative_tb[:, column]),
                    topo_alphabeta=to_dict(cumulative_tab[:, column]),
                    iterations=int(iterations[column]),
                    converged=bool(converged[column]),
                ))
            if _collect:
                _collect.set(states=len(states))
        return states

    def invalidate(self) -> None:
        """Drop the per-topic semantic caches (after authority changes)."""
        self._semantic_cache.clear()
        self._authority.invalidate()
