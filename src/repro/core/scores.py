"""Building blocks of the Tr score (Section 3.2).

This module implements, directly from their defining equations:

- the per-node topical authority ``auth(u, t)`` (local × global);
- the per-edge semantic relevance ``ε_e(t) = α^d · max sim`` (Eq. 3);
- the topical path relevance ``ω̄_p(t) = Σ_e ε_e(t)·auth(end(e), t)``
  (Eq. 4) and the total path score ``ω_p(t) = β^|p| · ω̄_p(t)``;
- the composition property of Proposition 2, which the landmark
  machinery of Section 4 relies on.

The functions that take explicit paths are reference implementations:
they are what the property-based tests compare the fast iterative and
landmark computations against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

from ..config import ScoreParams
from ..graph.labeled_graph import LabeledSocialGraph
from ..semantics.matrix import SimilarityMatrix


class AuthorityIndex:
    """Cached per-(node, topic) authority scores.

    ``auth(u, t) = (|Γu(t)| / |Γu|) · log(1 + |Γu(t)|) / log(1 + max_v |Γv(t)|)``

    The local factor rewards specialisation; the global factor rewards
    per-topic popularity, log-smoothed. Both are 0 when nobody follows
    ``u`` on ``t``; local is 1 when ``u`` is followed exclusively on
    ``t``; global is 1 when ``u`` is the most-followed account on ``t``.

    Accepts a live graph or a prebuilt
    :class:`~repro.graph.snapshot.GraphSnapshot`; either way the
    follower counts are read from a snapshot (resolved lazily from a
    live graph), so a propagation never sees counts change mid-run.
    Prefer ``snapshot.authority()`` to share one warm index across
    every scorer built from the same snapshot.
    """

    def __init__(self, graph) -> None:
        self._graph = graph
        self._view = None
        self._cache: Dict[Tuple[int, str], float] = {}
        self._log_max: Dict[str, float] = {}

    def _resolve(self):
        """The frozen view counts are read from (snapshot when possible)."""
        view = self._view
        if view is None:
            source = self._graph
            view = (source.snapshot()
                    if isinstance(source, LabeledSocialGraph) else source)
            self._view = view
        return view

    def _log_max_followers(self, topic: str) -> float:
        cached = self._log_max.get(topic)
        if cached is None:
            cached = math.log1p(self._resolve().max_followers_on(topic))
            self._log_max[topic] = cached
        return cached

    def auth(self, node: int, topic: str) -> float:
        """Authority of *node* on *topic*, in ``[0, 1]``."""
        key = (node, topic)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        view = self._resolve()
        followers_on_topic = view.follower_count_on(node, topic)
        if followers_on_topic == 0:
            value = 0.0
        else:
            total_followers = view.follower_count(node)
            local = followers_on_topic / total_followers
            normaliser = self._log_max_followers(topic)
            # followers_on_topic >= 1 implies the global max >= 1 too,
            # so the normaliser is strictly positive here.
            global_popularity = math.log1p(followers_on_topic) / normaliser
            value = local * global_popularity
        self._cache[key] = value
        return value

    def local_authority(self, node: int, topic: str) -> float:
        """The specialisation factor alone (for ablation studies)."""
        view = self._resolve()
        followers_on_topic = view.follower_count_on(node, topic)
        if followers_on_topic == 0:
            return 0.0
        return followers_on_topic / view.follower_count(node)

    def global_popularity(self, node: int, topic: str) -> float:
        """The popularity factor alone (for ablation studies)."""
        followers_on_topic = self._resolve().follower_count_on(node, topic)
        if followers_on_topic == 0:
            return 0.0
        return math.log1p(followers_on_topic) / self._log_max_followers(topic)

    def warm(self, topics: Sequence[str]) -> None:
        """Precompute authority for every node on the given topics.

        After warming, lookups on these topics are pure dict reads —
        worth doing once before fanning propagations out across
        threads, so the memo dict is only read concurrently.
        """
        for topic in topics:
            self._log_max_followers(topic)
            for node in self._resolve().nodes():
                self.auth(node, topic)

    def invalidate(self) -> None:
        """Drop caches (and re-resolve the view) after a graph mutation."""
        self._cache.clear()
        self._log_max.clear()
        self._view = None


def edge_relevance(similarity: SimilarityMatrix, edge_topics: Iterable[str],
                   topic: str, distance: int, params: ScoreParams) -> float:
    """Equation 3: ``ε_e(t) = α^d · max_{t'∈label(e)} sim(t', t)``.

    Args:
        similarity: Precomputed topic-similarity matrix.
        edge_topics: Label set of the edge.
        topic: Query topic ``t``.
        distance: 1-based distance of the edge from the query node
            (the first edge on a path is at distance 1 — see Example 2).
        params: Supplies ``α``.
    """
    if distance < 1:
        raise ValueError(f"edge distance is 1-based, got {distance}")
    best = similarity.max_similarity(edge_topics, topic)
    return (params.alpha ** distance) * best


@dataclass(frozen=True)
class PathScore:
    """Total score of one path, with the pieces Prop. 2 composes.

    Attributes:
        length: Number of edges ``|p|``.
        total: ``ω_p(t) = β^|p| · Σ_e α^d(e)·sim·auth`` — the quantity
            summed by Definition 1.
    """

    length: int
    total: float

    def __add__(self, other: "PathScore") -> "PathScore":
        raise TypeError("use compose_path_scores; PathScore is not additive")


def path_score(graph: LabeledSocialGraph, similarity: SimilarityMatrix,
               authority: AuthorityIndex, nodes: Sequence[int], topic: str,
               params: ScoreParams) -> PathScore:
    """Score one explicit path given as a node sequence (Eq. 1 summand).

    Raises:
        EdgeNotFoundError: if consecutive nodes are not linked.
        ValueError: on a path with fewer than two nodes.
    """
    if len(nodes) < 2:
        raise ValueError("a path needs at least one edge")
    relevance = 0.0
    for distance, (source, target) in enumerate(zip(nodes, nodes[1:]), start=1):
        label = graph.edge_topics(source, target)
        relevance += (edge_relevance(similarity, label, topic, distance, params)
                      * authority.auth(target, topic))
    length = len(nodes) - 1
    return PathScore(length=length, total=(params.beta ** length) * relevance)


def compose_path_scores(first: PathScore, second: PathScore,
                        params: ScoreParams) -> PathScore:
    """Proposition 2: score of the concatenation ``p1.p2``.

    ``ω_{p1.p2}(t) = β^|p2|·ω_{p1}(t) + (β·α)^|p1|·ω_{p2}(t)``
    """
    beta, alpha = params.beta, params.alpha
    total = ((beta ** second.length) * first.total
             + ((beta * alpha) ** first.length) * second.total)
    return PathScore(length=first.length + second.length, total=total)


def single_edge_score(similarity: SimilarityMatrix,
                      authority: AuthorityIndex, edge_topics: Iterable[str],
                      target: int, topic: str, params: ScoreParams) -> float:
    """``ω_{w→v}(t) = β·α·maxsim(label, t)·auth(v, t)`` (Prop. 1).

    The total score of the length-one path consisting of one edge into
    *target* — the increment term of the iterative computation.
    """
    best = similarity.max_similarity(edge_topics, topic)
    if best == 0.0:
        return 0.0
    return params.beta * params.alpha * best * authority.auth(target, topic)
