"""The Tr recommendation score (Section 3) and its exact computation."""

from .scores import (
    AuthorityIndex,
    PathScore,
    compose_path_scores,
    edge_relevance,
    path_score,
)
from .exact import (
    ScoreState,
    matrix_scores,
    single_source_scores,
    spectral_radius,
    verify_convergence_condition,
)
from .katz import katz_scores
from .fast import SparseEngine, scipy_available
from .recommender import Recommendation, Recommender
from .aggregation import AGGREGATORS, comb_mnz, comb_sum, weighted_sum

__all__ = [
    "AuthorityIndex",
    "PathScore",
    "edge_relevance",
    "path_score",
    "compose_path_scores",
    "ScoreState",
    "single_source_scores",
    "matrix_scores",
    "spectral_radius",
    "verify_convergence_condition",
    "katz_scores",
    "SparseEngine",
    "scipy_available",
    "Recommender",
    "Recommendation",
    "AGGREGATORS",
    "weighted_sum",
    "comb_sum",
    "comb_mnz",
]
