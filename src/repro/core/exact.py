"""Exact Tr score computation (Section 3.3).

Two interchangeable engines:

- :func:`single_source_scores` — the sparse frontier propagation of
  Proposition 1, which is also the inner loop of Algorithm 1 (landmark
  preprocessing) and, depth-limited, of Algorithm 2 (query-time
  exploration). Iteration ``k`` adds the contribution of all walks of
  length exactly ``k``, so the cumulative state after ``k`` rounds
  covers every walk of length ``≤ k``.
- :func:`matrix_scores` — the closed-form linear-system solution of
  Equation 6 (numpy dense), used as ground truth in tests and for small
  graphs.

Plus the Proposition 3 machinery: spectral-radius estimation and the
``β < 1/σ_max(A)`` convergence check.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

try:  # optional: accelerates spectral_radius on large graphs
    from scipy import sparse as _scipy_sparse
except ImportError:  # pragma: no cover - exercised on scipy-less installs
    _scipy_sparse = None

from ..config import ScoreParams
from ..errors import ConvergenceError
from ..graph.snapshot import GraphLike, GraphSnapshot, as_snapshot
from ..obs import runtime as _obs
from ..semantics.matrix import SimilarityMatrix
from .scores import AuthorityIndex

TopicScores = Dict[str, Dict[int, float]]


@dataclass
class ScoreState:
    """Cumulative result of a propagation from one source node.

    Attributes:
        source: The query node the propagation started from.
        scores: Per topic, the recommendation vector ``σ(source, ·, t)``
            over every reached node.
        topo_beta: Katz topological scores ``topo_β(source, ·)``
            (Eq. 2). The source's own entry includes the empty path
            (value ≥ 1), matching the matrix form ``(I − βA)^{-1}``.
        topo_alphabeta: Same with combined decay ``α·β`` — the
            ``topo_{αβ}`` vector Prop. 1 and Prop. 4 need.
        iterations: Number of propagation rounds executed.
        converged: Whether the frontier mass fell below tolerance
            (always ``False`` for depth-capped query explorations that
            hit the cap first).
    """

    source: int
    scores: TopicScores
    topo_beta: Dict[int, float]
    topo_alphabeta: Dict[int, float]
    iterations: int = 0
    converged: bool = False

    def score(self, node: int, topic: str) -> float:
        """``σ(source, node, topic)`` (0.0 for unreached nodes)."""
        return self.scores.get(topic, {}).get(node, 0.0)

    def ranked(self, topic: str, top_n: Optional[int] = None,
               exclude: Iterable[int] = ()) -> list[Tuple[int, float]]:
        """Nodes ranked by descending score on *topic*.

        Args:
            topic: Topic to rank on.
            top_n: Truncate to the best ``n`` entries (``None`` = all).
            exclude: Nodes to omit (typically the source and the
                accounts it already follows).
        """
        excluded = set(exclude)
        entries = [
            (node, value)
            for node, value in self.scores.get(topic, {}).items()
            if node not in excluded and value > 0.0
        ]
        entries.sort(key=lambda kv: (-kv[1], kv[0]))
        if top_n is not None:
            return entries[:top_n]
        return entries


class _MaxSimCache:
    """Memoises ``max_{t'∈label} sim(t', t)`` per (label, topic) pair.

    Edge labels are shared frozensets, so the cache hit rate is high:
    the labeling pipeline produces far fewer distinct label sets than
    edges.
    """

    def __init__(self, similarity: SimilarityMatrix) -> None:
        self._similarity = similarity
        self._cache: Dict[Tuple[frozenset, str], float] = {}

    def max_similarity(self, label: frozenset, topic: str) -> float:
        key = (label, topic)
        cached = self._cache.get(key)
        if cached is None:
            cached = self._similarity.max_similarity(label, topic)
            self._cache[key] = cached
        return cached


def single_source_scores(
    graph: GraphLike,
    source: int,
    topics: Sequence[str],
    similarity: SimilarityMatrix,
    authority: Optional[AuthorityIndex] = None,
    params: ScoreParams = ScoreParams(),
    max_depth: Optional[int] = None,
    sim_cache: Optional[_MaxSimCache] = None,
    absorbing: Optional[frozenset] = None,
    allow_stale: bool = False,
) -> ScoreState:
    """Propagate Tr scores from *source* (Prop. 1 / Algorithm 1).

    Args:
        graph: The labeled follow graph, or a prebuilt
            :class:`~repro.graph.snapshot.GraphSnapshot` of it. A live
            graph reads through its current (always fresh) snapshot.
        source: Query node ``u``.
        topics: Topics to score; may be empty for a pure topological
            (Katz) propagation.
        similarity: Topic-similarity matrix.
        authority: Authority index; defaults to the snapshot's shared
            one, so repeated calls over the same snapshot reuse one
            warm auth memo.
        params: Decay factors and convergence knobs.
        max_depth: Cap on walk length. ``None`` runs to convergence
            (preprocessing mode); small values (2–3) give the
            query-time exploration of Algorithm 2.
        sim_cache: Optional shared max-similarity cache.
        absorbing: Nodes whose mass is *not* propagated further (the
            source always propagates). Algorithm 2 passes the landmark
            set here: the BFS is pruned at landmarks so that paths
            through them are counted once, by Prop. 4 composition —
            the pruning Section 5.4 credits for the flat query times.
        allow_stale: Score a snapshot even when its graph has mutated
            since it was built (eval replays); by default a stale
            snapshot raises instead of silently serving old scores.

    Returns:
        The cumulative :class:`ScoreState`.

    Raises:
        StaleSnapshotError: a stale snapshot without ``allow_stale``.
        ConvergenceError: if ``max_depth`` is ``None`` and the frontier
            mass has not fallen below tolerance after
            ``params.max_iter`` rounds (a symptom of ``β`` violating
            Prop. 3 on this graph).
    """
    snapshot = as_snapshot(graph, allow_stale)
    if authority is None:
        authority = snapshot.authority()
    cache = sim_cache if sim_cache is not None else _MaxSimCache(similarity)
    beta = params.beta
    alphabeta = params.edge_decay
    edge_factor = params.beta * params.alpha

    cumulative_scores: TopicScores = {topic: {} for topic in topics}
    cumulative_tb: Dict[int, float] = {source: 1.0}
    cumulative_tab: Dict[int, float] = {source: 1.0}

    frontier_r: Dict[str, Dict[int, float]] = {topic: {} for topic in topics}
    frontier_tb: Dict[int, float] = {source: 1.0}
    frontier_tab: Dict[int, float] = {source: 1.0}

    limit = params.max_iter if max_depth is None else max_depth
    iterations = 0
    converged = False
    residual = 0.0

    with _obs.span("exact.single_source") as _root:
        if _root:
            _root.set(source=source, topics=len(topics), depth_limit=limit,
                      absorbing=len(absorbing) if absorbing else 0)
        for _ in range(limit):
            with _obs.span("exact.iteration") as _step:
                next_r: Dict[str, Dict[int, float]] = {
                    topic: {} for topic in topics}
                next_tb: Dict[int, float] = {}
                next_tab: Dict[int, float] = {}
                touched = set(frontier_tb)
                for topic in topics:
                    touched.update(frontier_r[topic])
                if absorbing:
                    touched = {
                        walker for walker in touched
                        if walker == source or walker not in absorbing
                    }
                if not touched:
                    converged = True
                    if _step:
                        _step.set(residual=0.0, frontier_size=0)
                    break
                for walker in sorted(touched):
                    tb_mass = frontier_tb.get(walker, 0.0)
                    tab_mass = frontier_tab.get(walker, 0.0)
                    r_masses = [frontier_r[topic].get(walker, 0.0)
                                for topic in topics]
                    for neighbor, label in snapshot.out_items(walker):
                        if tb_mass:
                            next_tb[neighbor] = (
                                next_tb.get(neighbor, 0.0) + beta * tb_mass)
                        if tab_mass:
                            next_tab[neighbor] = (
                                next_tab.get(neighbor, 0.0)
                                + alphabeta * tab_mass)
                        for topic, r_mass in zip(topics, r_masses):
                            increment = beta * r_mass
                            if tab_mass and label:
                                best = cache.max_similarity(label, topic)
                                if best:
                                    auth_value = authority.auth(neighbor,
                                                                topic)
                                    if auth_value:
                                        increment += (tab_mass * edge_factor
                                                      * best * auth_value)
                            if increment:
                                bucket = next_r[topic]
                                bucket[neighbor] = (
                                    bucket.get(neighbor, 0.0) + increment)
                iterations += 1
                new_mass = math.fsum(
                    math.fsum(bucket.values()) for bucket in next_r.values())
                new_mass += math.fsum(next_tb.values())
                for node, value in sorted(next_tb.items()):
                    cumulative_tb[node] = cumulative_tb.get(node, 0.0) + value
                for node, value in sorted(next_tab.items()):
                    cumulative_tab[node] = (
                        cumulative_tab.get(node, 0.0) + value)
                for topic in topics:
                    bucket = cumulative_scores[topic]
                    for node, value in sorted(next_r[topic].items()):
                        bucket[node] = bucket.get(node, 0.0) + value
                frontier_r, frontier_tb, frontier_tab = (
                    next_r, next_tb, next_tab)
                residual = new_mass
                if _step:
                    _step.set(residual=new_mass,
                              frontier_size=len(touched))
                if new_mass < params.tolerance:
                    converged = True
                    break
        if _root:
            _root.set(iterations=iterations, converged=converged,
                      residual=residual)
        _obs.count("exact.calls_total")
        _obs.count("exact.iterations_total", iterations)

    if max_depth is None and not converged:
        remaining = math.fsum(
            math.fsum(b.values()) for b in frontier_r.values())
        raise ConvergenceError(
            f"propagation from node {source} did not converge within "
            f"{params.max_iter} iterations (check β against Prop. 3)",
            iterations=iterations, residual=remaining)

    return ScoreState(
        source=source,
        scores=cumulative_scores,
        topo_beta=cumulative_tb,
        topo_alphabeta=cumulative_tab,
        iterations=iterations,
        converged=converged,
    )


# ----------------------------------------------------------------------
# Shared snapshot-backed edge weights
# ----------------------------------------------------------------------

def semantic_edge_weights(
    snapshot: GraphSnapshot,
    similarity: SimilarityMatrix,
    topic: str,
    authority: AuthorityIndex,
) -> np.ndarray:
    """Per-edge semantic weight ``maxsim(label(w→v), t) · auth(v, t)``.

    One builder for every engine (Eq. 3 × authority, the entries of the
    per-topic matrix ``S_t``): the similarity is evaluated once per
    *distinct* label set and broadcast through the snapshot's interned
    label ids, and authority once per distinct target node. The result
    is aligned with the snapshot's in-CSR arrays — entry ``k`` weights
    the edge ``in_indices[k] → in_edge_rows()[k]`` — so
    ``csr_matrix((weights, in_indices, in_indptr))`` is ``S_t`` sharing
    the adjacency's sparsity pattern, and
    ``dense[rows, cols] = weights`` is its dense form.
    """
    label_sims = np.empty(len(snapshot.labels))
    for i, label in enumerate(snapshot.labels):
        label_sims[i] = (similarity.max_similarity(label, topic)
                         if label else 0.0)
    if not len(snapshot.in_label_ids):
        return np.zeros(0)
    weights = label_sims[snapshot.in_label_ids]
    nonzero = np.nonzero(weights)[0]
    if nonzero.size:
        rows = snapshot.in_edge_rows()
        rows_nonzero = rows[nonzero]
        auth_by_row = np.zeros(len(snapshot))
        for row in np.unique(rows_nonzero).tolist():
            auth_by_row[row] = authority.auth(snapshot.node_at(row), topic)
        weights[nonzero] = weights[nonzero] * auth_by_row[rows_nonzero]
    return weights


# ----------------------------------------------------------------------
# Matrix form (Equation 6) — ground truth on small graphs
# ----------------------------------------------------------------------

def _node_index(graph: GraphLike) -> Tuple[list, Dict[int, int]]:
    snapshot = as_snapshot(graph, allow_stale=True)
    return list(snapshot.node_ids), snapshot.position


def adjacency_matrix(graph: GraphLike) -> np.ndarray:
    """Dense adjacency with ``A[v][u] = 1`` iff u follows v (paper's A)."""
    snapshot = as_snapshot(graph, allow_stale=True)
    n = len(snapshot)
    matrix = np.zeros((n, n))
    if snapshot.num_edges:
        matrix[snapshot.in_edge_rows(), snapshot.in_indices] = 1.0
    return matrix


def matrix_scores(
    graph: GraphLike,
    source: int,
    topic: str,
    similarity: SimilarityMatrix,
    authority: Optional[AuthorityIndex] = None,
    params: ScoreParams = ScoreParams(),
) -> ScoreState:
    """Solve Equation 6 exactly with dense linear algebra.

    ``T_{αβ} = (I − αβA)^{-1} e_u`` and
    ``R_t = (I − βA)^{-1} · βα · S_t · T_{αβ}``
    where ``S_t[v][w] = maxsim(label(w→v), t) · auth(v, t)`` on edges.

    Intended for validation and small graphs — O(n³). Accepts stale
    snapshots without complaint: the ground-truth solver is exactly
    what eval replays run against a pinned pre-mutation view.

    Raises:
        ConvergenceError: if either system matrix is singular, i.e. the
            decay factor sits outside Prop. 3's region.
    """
    snapshot = as_snapshot(graph, allow_stale=True)
    if authority is None:
        authority = snapshot.authority()
    nodes, index = list(snapshot.node_ids), snapshot.position
    n = len(nodes)
    adjacency = adjacency_matrix(snapshot)
    semantic = np.zeros((n, n))
    if snapshot.num_edges:
        semantic[snapshot.in_edge_rows(), snapshot.in_indices] = (
            semantic_edge_weights(snapshot, similarity, topic, authority))

    unit = np.zeros(n)
    unit[index[source]] = 1.0
    identity = np.eye(n)
    try:
        topo_ab = np.linalg.solve(identity - params.edge_decay * adjacency, unit)
        topo_b = np.linalg.solve(identity - params.beta * adjacency, unit)
        rhs = params.beta * params.alpha * (semantic @ topo_ab)
        recommendation = np.linalg.solve(identity - params.beta * adjacency, rhs)
    except np.linalg.LinAlgError as exc:
        raise ConvergenceError(
            f"Eq. 6 system is singular for beta={params.beta}: {exc}") from exc

    def to_dict(vector: np.ndarray, keep_zero_source: bool = False) -> Dict[int, float]:
        result = {}
        for node, position in index.items():
            value = float(vector[position])
            if value != 0.0 or (keep_zero_source and node == source):
                result[node] = value
        return result

    return ScoreState(
        source=source,
        scores={topic: to_dict(recommendation)},
        topo_beta=to_dict(topo_b, keep_zero_source=True),
        topo_alphabeta=to_dict(topo_ab, keep_zero_source=True),
        iterations=0,
        converged=True,
    )


# ----------------------------------------------------------------------
# Proposition 3 — convergence condition
# ----------------------------------------------------------------------

def spectral_radius(graph: GraphLike, iterations: int = 100,
                    seed: int = 0) -> float:
    """Estimate ``σ_max(A)`` with the power method on the adjacency.

    Works on the snapshot's CSR arrays directly (no dense matrix), so
    it is usable on the benchmark-scale graphs. Deterministic for a
    given seed; accuracy improves with *iterations*. When scipy is
    available the in-adjacency arrays back a CSR matrix with no edge
    loop and every power step is a sparse mat-vec; without scipy each
    step is one vectorised scatter-add over the same arrays.
    """
    snapshot = as_snapshot(graph, allow_stale=True)
    n = len(snapshot)
    if n == 0:
        return 0.0
    rng = np.random.default_rng(seed)
    vector = rng.random(n) + 0.1
    vector /= np.linalg.norm(vector)

    rows = snapshot.in_edge_rows()
    cols = snapshot.in_indices
    adjacency = None
    if _scipy_sparse is not None:
        adjacency = _scipy_sparse.csr_matrix(
            (np.ones(len(cols)), cols, snapshot.in_indptr), shape=(n, n))

    estimate = 0.0
    for _ in range(iterations):
        if adjacency is not None:
            output = adjacency @ vector
        else:
            output = np.zeros(n)
            np.add.at(output, rows, vector[cols])
        norm = float(np.linalg.norm(output))
        if norm == 0.0:
            return 0.0  # nilpotent adjacency (DAG): radius 0
        estimate = norm
        vector = output / norm
    return estimate


def verify_convergence_condition(graph: GraphLike,
                                 params: ScoreParams,
                                 iterations: int = 100) -> bool:
    """Check Prop. 3: ``β < 1 / σ_max(A)`` (sufficient for convergence)."""
    radius = spectral_radius(graph, iterations=iterations)
    if radius == 0.0:
        return True
    return params.beta < 1.0 / radius


def max_beta(graph: GraphLike, iterations: int = 100) -> float:
    """Largest admissible β on this graph per Prop. 3 (∞ → returns inf)."""
    radius = spectral_radius(graph, iterations=iterations)
    if radius == 0.0:
        return math.inf
    return 1.0 / radius
