"""The Katz baseline score (Equation 2).

``topo_β(u, v) = Σ_{p ∈ P(u,v)} β^|p|`` — the purely topological
degenerate case of the Tr score (set every path's topical relevance to
1). The paper uses it, after Liben-Nowell & Kleinberg, as the main
link-prediction baseline.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from ..config import ScoreParams
from ..graph.labeled_graph import LabeledSocialGraph


def katz_scores(graph: LabeledSocialGraph, source: int,
                params: ScoreParams = ScoreParams(),
                max_depth: Optional[int] = None) -> Dict[int, float]:
    """Katz scores of every reachable node with respect to *source*.

    The source's own entry (the empty path plus any cycles back to it)
    is included for symmetry with the Tr propagation; rankers exclude
    it.

    Args:
        graph: The follow graph.
        source: Query node.
        params: Supplies ``β`` and the convergence knobs.
        max_depth: Walk-length cap; ``None`` iterates until the frontier
            mass drops below tolerance.
    """
    beta = params.beta
    cumulative: Dict[int, float] = {source: 1.0}
    frontier: Dict[int, float] = {source: 1.0}
    limit = params.max_iter if max_depth is None else max_depth
    for _ in range(limit):
        next_frontier: Dict[int, float] = {}
        for walker, mass in sorted(frontier.items()):
            spread = beta * mass
            for neighbor in sorted(graph.out_neighbors(walker)):
                next_frontier[neighbor] = next_frontier.get(neighbor, 0.0) + spread
        if not next_frontier:
            break
        for node, value in sorted(next_frontier.items()):
            cumulative[node] = cumulative.get(node, 0.0) + value
        frontier = next_frontier
        if math.fsum(next_frontier.values()) < params.tolerance:
            break
    return cumulative


def katz_rank(graph: LabeledSocialGraph, source: int,
              params: ScoreParams = ScoreParams(),
              top_n: Optional[int] = None,
              max_depth: Optional[int] = None) -> list[tuple[int, float]]:
    """Katz ranking excluding the source itself, best first."""
    scores = katz_scores(graph, source, params=params, max_depth=max_depth)
    scores.pop(source, None)
    ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
    if top_n is not None:
        return ranked[:top_n]
    return ranked
