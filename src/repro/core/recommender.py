"""The exact Tr recommender.

:class:`Recommender` wraps the exact propagation engine behind the
interface the paper describes in Section 3.2: given a user and a query
``Q = {t1, ..., tn}`` (optionally weighted), return the top-n accounts
by the weighted linear combination of per-topic Tr scores.

:meth:`Recommender.recommend` implements the unified
:class:`repro.api.Recommender` protocol and returns a
:class:`repro.api.RecommendationResponse`; the full-featured ranking
call (multi-topic queries, candidate pools, metasearch aggregation
rules) lives on :meth:`Recommender.rank`, which returns the plain
ranked list of :class:`repro.api.Recommendation` items.

The two ablated variants evaluated in Figure 4 are exposed as
constructor flags:

- ``use_authority=False`` → **Tr−auth** (edge similarity only, node
  authority frozen at 1);
- ``use_similarity=False`` → **Tr−sim** (node authority only, edge
  semantic factor frozen at 1 on labeled edges).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..api import (Recommendation, RecommendationRequest,
                   RecommendationResponse)
from ..config import ScoreParams, normalize_weights
from ..errors import ConfigurationError
from ..graph.labeled_graph import LabeledSocialGraph
from ..graph.snapshot import GraphLike, as_snapshot
from ..semantics.matrix import SimilarityMatrix
from .aggregation import AGGREGATORS, weighted_sum
from .exact import ScoreState, single_source_scores, _MaxSimCache
from .scores import AuthorityIndex

Query = Union[str, Sequence[str], Mapping[str, float]]


class _UnitAuthority(AuthorityIndex):
    """Authority frozen at 1 — the Tr−auth ablation."""

    def auth(self, node: int, topic: str) -> float:  # noqa: D102
        return 1.0


class _UnitSimilarity:
    """Semantic factor frozen at 1 on labeled edges — the Tr−sim ablation.

    Unlabeled edges still contribute nothing, mirroring Eq. 3 where an
    empty label set has no maximising topic.
    """

    def __init__(self, base: SimilarityMatrix) -> None:
        self._base = base

    @property
    def topics(self) -> Tuple[str, ...]:
        """Topic tuple of the wrapped matrix."""
        return self._base.topics

    def similarity(self, first: str, second: str) -> float:
        """Frozen unit similarity (the Tr-sim ablation)."""
        return 1.0

    def max_similarity(self, topics: Iterable[str], target: str) -> float:
        """1.0 for any labeled edge, 0.0 for unlabeled."""
        for _ in topics:
            return 1.0
        return 0.0


class Recommender:
    """Exact Tr recommender over a labeled social graph.

    Example:
        >>> from repro.graph import graph_from_edges
        >>> from repro.semantics import SimilarityMatrix, web_taxonomy
        >>> g = graph_from_edges([
        ...     (1, 2, ["technology"]), (2, 3, ["technology"]),
        ...     (1, 4, ["food"]),
        ... ])
        >>> rec = Recommender(g, SimilarityMatrix.from_taxonomy(web_taxonomy()))
        >>> [r.node for r in rec.recommend(1, "technology", top_n=2)]
        [3]

    Node 2 is not suggested: user 1 already follows it, and followees
    are excluded by default.
    """

    def __init__(
        self,
        graph: GraphLike,
        similarity: SimilarityMatrix,
        params: ScoreParams = ScoreParams(),
        use_authority: bool = True,
        use_similarity: bool = True,
        engine: str = "dict",
        allow_stale: bool = False,
    ) -> None:
        """Args:
            graph: The labeled follow graph, or a prebuilt
                :class:`~repro.graph.snapshot.GraphSnapshot`. The
                recommender pins a snapshot at construction; after
                mutating a live graph, call :meth:`invalidate` to
                re-pin (scoring against the old pin raises
                ``StaleSnapshotError``).
            similarity: Topic-similarity matrix.
            params: Decay/convergence knobs.
            use_authority: ``False`` gives the Tr−auth ablation.
            use_similarity: ``False`` gives the Tr−sim ablation.
            engine: ``"dict"`` (reference implementation), ``"sparse"``
                (scipy CSR engine — identical results, amortised
                mat-vec cost for bulk workloads), or ``"auto"``
                (sparse when scipy is available, dict otherwise).
            allow_stale: Keep serving the pinned snapshot after the
                graph mutates (deliberately lagged serving).
        """
        from .fast import resolve_engine

        engine = resolve_engine(engine)
        self.graph = graph
        self.params = params
        self.use_authority = use_authority
        self.use_similarity = use_similarity
        self.engine = engine
        self.allow_stale = allow_stale
        self._snapshot = as_snapshot(graph, allow_stale)
        self._similarity = similarity if use_similarity else _UnitSimilarity(similarity)
        self._authority = (self._snapshot.authority() if use_authority
                           else _UnitAuthority(self._snapshot))
        self._sim_cache = _MaxSimCache(self._similarity)
        self._sparse_engine = None
        if engine == "sparse":
            from .fast import SparseEngine

            self._sparse_engine = SparseEngine(
                self._snapshot, self._similarity, params,
                authority=self._authority, allow_stale=allow_stale)

    @property
    def variant(self) -> str:
        """Human-readable variant name matching the paper's legends."""
        if self.use_authority and self.use_similarity:
            return "Tr"
        if self.use_authority:
            return "Tr-sim"
        if self.use_similarity:
            return "Tr-auth"
        return "Katz-like"

    # ------------------------------------------------------------------
    def state_for(self, user: int, topics: Sequence[str],
                  max_depth: Optional[int] = None,
                  allow_stale: Optional[bool] = None) -> ScoreState:
        """Raw propagation state — building block for evaluation code."""
        effective = bool(allow_stale) or self.allow_stale
        if self._sparse_engine is not None:
            return self._sparse_engine.single_source(
                user, list(topics), max_depth=max_depth,
                allow_stale=effective)
        return single_source_scores(
            self._snapshot, user, list(topics), self._similarity,
            authority=self._authority, params=self.params,
            max_depth=max_depth, sim_cache=self._sim_cache,
            allow_stale=effective)

    def score(self, user: int, candidate: int, topic: str,
              max_depth: Optional[int] = None) -> float:
        """``σ(user, candidate, topic)`` for one pair."""
        return self.state_for(user, [topic], max_depth=max_depth).score(
            candidate, topic)

    def recommend(
        self,
        user: int,
        topic: str,
        top_n: int = 10,
        max_depth: Optional[int] = None,
        exclude_followed: bool = True,
        *,
        allow_stale: bool = False,
    ) -> RecommendationResponse:
        """Top-n accounts for *user* on *topic* (Section 3.2).

        This is the :class:`repro.api.Recommender` protocol entry point
        and returns a :class:`~repro.api.RecommendationResponse`. The
        full-featured ranking surface (multi-topic queries, candidate
        pools, metasearch aggregation) lives on :meth:`rank` — the
        pre-``repro.api`` shims that accepted those shapes here were
        removed after their deprecation cycle.

        Args:
            user: The account to recommend to.
            topic: The query topic.
            top_n: Number of recommendations.
            max_depth: Walk-length cap (``None`` = run to convergence).
            exclude_followed: Drop the user and accounts already
                followed — a recommender should not suggest existing
                followees.
            allow_stale: Serve from the pinned snapshot even if the
                graph has since mutated, instead of raising
                :class:`~repro.errors.StaleSnapshotError`.

        Raises:
            NodeNotFoundError: if *user* is not in the graph.
            UnknownTopicError: if *topic* is not in the matrix.
        """
        ranked = self.rank(
            user, topic, top_n=top_n, max_depth=max_depth,
            exclude_followed=exclude_followed, allow_stale=allow_stale)
        request = RecommendationRequest(
            user=user, topic=topic, top_n=top_n, allow_stale=allow_stale,
            depth=max_depth)
        return RecommendationResponse(
            request=request,
            recommendations=tuple(ranked),
            engine="exact",
            snapshot_epoch=self._snapshot.epoch,
        )

    def rank(
        self,
        user: int,
        query: Query,
        top_n: int = 10,
        max_depth: Optional[int] = None,
        exclude_followed: bool = True,
        candidates: Optional[Iterable[int]] = None,
        aggregation: str = "weighted",
        allow_stale: Optional[bool] = None,
    ) -> List[Recommendation]:
        """Ranked :class:`~repro.api.Recommendation` list for *user*.

        The full-featured ranking surface behind :meth:`recommend`:

        Args:
            user: The account to recommend to.
            query: A topic, a sequence of topics (uniform weights), or
                a topic → weight mapping; weights are normalised.
            top_n: Number of recommendations.
            max_depth: Walk-length cap (``None`` = run to convergence).
            exclude_followed: Drop the user and accounts already
                followed — a recommender should not suggest existing
                followees.
            candidates: Restrict ranking to this candidate pool
                (the evaluation protocol ranks 1001 fixed candidates).
            aggregation: How per-topic score lists are fused —
                ``"weighted"`` (the paper's linear combination, honours
                query weights), or one of the metasearch rules from
                :mod:`repro.core.aggregation`: ``"combsum"``,
                ``"combmnz"``, ``"borda"``, ``"rrf"``.
            allow_stale: Per-call staleness override (``None`` defers
                to the constructor flag).

        Raises:
            NodeNotFoundError: if *user* is not in the graph.
            UnknownTopicError: if a query topic is not in the matrix.
            ConfigurationError: on an unknown aggregation rule.
        """
        weights = self._query_weights(query)
        state = self.state_for(user, list(weights), max_depth=max_depth,
                               allow_stale=allow_stale)
        excluded = {user}
        if exclude_followed:
            excluded.update(self._snapshot.out_neighbors(user))
        pool: Optional[set] = set(candidates) if candidates is not None else None

        filtered: Dict[str, Dict[int, float]] = {}
        breakdown: Dict[int, Dict[str, float]] = {}
        for topic in weights:
            bucket: Dict[int, float] = {}
            for node, value in state.scores.get(topic, {}).items():
                if node in excluded or value <= 0.0:
                    continue
                if pool is not None and node not in pool:
                    continue
                bucket[node] = value
                breakdown.setdefault(node, {})[topic] = value
            filtered[topic] = bucket

        if aggregation == "weighted":
            combined = weighted_sum(filtered, weights=weights)
        else:
            aggregator = AGGREGATORS.get(aggregation)
            if aggregator is None:
                known = ", ".join(sorted(AGGREGATORS))
                raise ConfigurationError(
                    f"unknown aggregation {aggregation!r}; known: {known}")
            combined = aggregator(filtered)

        ranked = sorted(combined.items(), key=lambda kv: (-kv[1], kv[0]))
        return [
            Recommendation(node=node, score=score, per_topic=breakdown[node])
            for node, score in ranked[:top_n]
            if score > 0.0
        ]

    def _query_weights(self, query: Query) -> Dict[str, float]:
        if isinstance(query, str):
            return {query: 1.0}
        if isinstance(query, Mapping):
            return normalize_weights(query)
        topics = list(query)
        return normalize_weights({topic: 1.0 for topic in topics})

    def invalidate(self) -> None:
        """Re-pin the snapshot after the graph was mutated in place."""
        self._snapshot = as_snapshot(self.graph, allow_stale=True)
        if self.use_authority:
            self._authority = self._snapshot.authority()
        else:
            self._authority.invalidate()
        if self._sparse_engine is not None:
            from .fast import SparseEngine

            self._sparse_engine = SparseEngine(
                self._snapshot, self._similarity, self.params,
                authority=self._authority, allow_stale=self.allow_stale)
