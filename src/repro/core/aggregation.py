"""Rank/score aggregation for multi-topic queries.

Section 3.2 combines per-topic scores with "a weighted linear
combination (some are proposed in [1])" — the reference is Aslam &
Montague's *Models for Metasearch*. This module implements that default
plus the classical alternatives from the same literature, so the
combination choice can be ablated:

- :func:`weighted_sum` — the paper's default;
- :func:`comb_sum` / :func:`comb_mnz` — Fox & Shaw combination rules
  (CombMNZ multiplies by the number of lists that scored the item);
- :func:`borda` — positional (rank-based) aggregation;
- :func:`reciprocal_rank_fusion` — the robust rank-based default of
  modern IR systems.

All functions take ``{list_name: {item: score}}`` and return one fused
``{item: score}``; score-based rules optionally min-max normalise each
input list first, which Aslam & Montague show matters when the lists
have different scales (per-topic Tr scores do).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..errors import ConfigurationError

ScoreLists = Mapping[str, Mapping[int, float]]


def _normalise(scores: Mapping[int, float]) -> Dict[int, float]:
    """Max-normalise one list to [0, 1].

    Max-norm rather than min-max: Tr scores are non-negative and
    min-max would zero the weakest item of every list, which degrades
    CombSUM/CombMNZ badly on short lists.
    """
    if not scores:
        return {}
    high = max(scores.values())
    if high <= 0.0:
        return {item: 0.0 for item in scores}
    return {item: value / high for item, value in scores.items()}


def weighted_sum(lists: ScoreLists,
                 weights: Optional[Mapping[str, float]] = None,
                 normalise: bool = False) -> Dict[int, float]:
    """The paper's weighted linear combination.

    Args:
        lists: Per-topic score dictionaries.
        weights: Per-list weights (default: uniform). Missing lists
            get weight 0.
        normalise: Min-max normalise each list first.

    Raises:
        ConfigurationError: on an empty *lists* mapping.
    """
    if not lists:
        raise ConfigurationError("nothing to aggregate")
    fused: Dict[int, float] = {}
    for name, scores in sorted(lists.items()):
        weight = 1.0 if weights is None else weights.get(name, 0.0)
        if weight == 0.0:
            continue
        source = _normalise(scores) if normalise else scores
        for item, value in sorted(source.items()):
            fused[item] = fused.get(item, 0.0) + weight * value
    return fused


def comb_sum(lists: ScoreLists) -> Dict[int, float]:
    """CombSUM: sum of min-max-normalised scores."""
    return weighted_sum(lists, normalise=True)


def comb_mnz(lists: ScoreLists) -> Dict[int, float]:
    """CombMNZ: CombSUM times the number of lists scoring the item."""
    if not lists:
        raise ConfigurationError("nothing to aggregate")
    summed = comb_sum(lists)
    support: Dict[int, int] = {}
    for scores in lists.values():  # repro: ignore[R2] -- support counts are integers; addition is exact in any order
        for item, value in scores.items():  # repro: ignore[R2] -- support counts are integers; addition is exact in any order
            if value > 0.0:
                support[item] = support.get(item, 0) + 1
    return {item: value * support.get(item, 0)
            for item, value in summed.items()}


def borda(lists: ScoreLists) -> Dict[int, float]:
    """Borda count: an item earns ``pool_size − rank`` points per list.

    Items absent from a list earn nothing from it; ``pool_size`` is the
    size of the union, so deep lists dominate shallow ones no more than
    their coverage justifies.
    """
    if not lists:
        raise ConfigurationError("nothing to aggregate")
    universe = {item for scores in lists.values() for item in scores}
    pool_size = len(universe)
    fused: Dict[int, float] = {}
    for scores in lists.values():  # repro: ignore[R2] -- Borda points are integers; addition is exact in any order
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        for position, (item, _) in enumerate(ranked):
            fused[item] = fused.get(item, 0.0) + (pool_size - position)
    return fused


def reciprocal_rank_fusion(lists: ScoreLists, k: float = 60.0,
                           ) -> Dict[int, float]:
    """RRF: ``Σ 1 / (k + rank)`` over the lists containing the item."""
    if not lists:
        raise ConfigurationError("nothing to aggregate")
    if k <= 0:
        raise ConfigurationError(f"k must be positive, got {k}")
    fused: Dict[int, float] = {}
    for _, scores in sorted(lists.items()):
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        for position, (item, _) in enumerate(ranked, start=1):
            fused[item] = fused.get(item, 0.0) + 1.0 / (k + position)
    return fused


#: Registry for CLI/ablation use.
AGGREGATORS = {
    "weighted": weighted_sum,
    "combsum": comb_sum,
    "combmnz": comb_mnz,
    "borda": borda,
    "rrf": reciprocal_rank_fusion,
}
