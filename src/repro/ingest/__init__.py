"""Live event-stream ingestion — the paper's open dynamicity problem.

"Many following links have a short lifespan": the conclusion flags
graph dynamicity as the limit of the snapshot-and-precompute design.
This subpackage closes the loop between a stream of
:class:`~repro.api.IngestEvent` writes and the zero-downtime serving
tier:

- writes land on a :class:`~repro.graph.overlay.DeltaSnapshot` overlay
  (cheap per-event deltas; the serving snapshot stays pinned);
- an :class:`~repro.dynamics.incremental.IncrementalMaintainer` buffers
  the churn frontier so only affected landmarks re-propagate;
- a :class:`CompactionPolicy` decides when to fold the overlay into a
  fresh base, and :class:`IngestPipeline` hands that base to
  :meth:`~repro.distributed.sharded.ShardedPlatform.begin_rollover`,
  so readers never observe a
  :class:`~repro.errors.StaleSnapshotError`.
"""

from .pipeline import CompactionPolicy, IngestPipeline

__all__ = [
    "CompactionPolicy",
    "IngestPipeline",
]
