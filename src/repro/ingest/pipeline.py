"""The ingest pipeline: overlay writes, budgeted compaction, rollover.

The pipeline keeps three invariants the chaos suite leans on:

1. **The serving tier never sees a stale snapshot.** Writes go to the
   overlay, not to a live graph, so the platform's pinned snapshots
   never have a mutated graph behind them — there is nothing to raise
   :class:`~repro.errors.StaleSnapshotError` about.
2. **Compaction equals replay.** The compacted base is bit-identical
   to a from-scratch ``LabeledSocialGraph.snapshot()`` over the same
   event sequence (``tests/graph/test_overlay.py``), and the
   dirty-frontier index refresh at each compaction is bit-identical
   to a from-scratch :meth:`LandmarkIndex.build` over that base.
3. **Rollovers are budgeted, not per-event.** The
   :class:`CompactionPolicy` triggers on event count, overlay size, or
   wall clock — whichever fires first — so ingest throughput is
   decoupled from the (expensive) rollover cadence.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence

from ..api import IngestEvent, IngestResponse
from ..dynamics.incremental import IncrementalMaintainer
from ..errors import ConfigurationError
from ..graph.overlay import DeltaSnapshot
from ..graph.snapshot import GraphSnapshot
from ..landmarks.index import LandmarkIndex
from ..obs import runtime as _obs
from ..semantics.matrix import SimilarityMatrix


@dataclass(frozen=True)
class CompactionPolicy:
    """When to fold the overlay into a fresh servable base.

    Any ``None`` trigger is disabled; the first satisfied trigger
    fires. The defaults favour event count — the trigger whose cost
    model (one landmark refresh + one rollover per N events) the
    bench-smoke stage measures.

    Attributes:
        max_events: Compact after this many *applied* events.
        max_overlay_edges: Compact when the overlay log (adds +
            tombstones + new nodes) grows past this size — bounds the
            per-read merge cost.
        max_seconds: Compact when the oldest uncompacted event is this
            old (wall clock; measured with the pipeline's clock).
    """

    max_events: Optional[int] = 64
    max_overlay_edges: Optional[int] = None
    max_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("max_events", "max_overlay_edges", "max_seconds"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ConfigurationError(
                    f"{name} must be > 0 or None, got {value}")
        if (self.max_events is None and self.max_overlay_edges is None
                and self.max_seconds is None):
            raise ConfigurationError(
                "at least one compaction trigger must be set")

    def due(self, overlay: DeltaSnapshot, pending_events: int,
            oldest_age: float) -> Optional[str]:
        """The name of the first satisfied trigger, or ``None``."""
        if (self.max_events is not None
                and pending_events >= self.max_events):
            return "events"
        if (self.max_overlay_edges is not None
                and overlay.overlay_edges >= self.max_overlay_edges):
            return "overlay"
        if (self.max_seconds is not None and pending_events
                and oldest_age >= self.max_seconds):
            return "wall-clock"
        return None


class IngestPipeline:
    """Apply :class:`~repro.api.IngestEvent` streams to a serving tier.

    Args:
        platform: The sharded serving tier to keep fresh. Its current
            generation's snapshot becomes the first overlay base.
        similarity: Topic-similarity matrix (index refreshes).
        topics: Topics the landmark index maintains.
        policy: Compaction cadence (default:
            ``CompactionPolicy(max_events=64)``).
        maintainer: Landmark maintainer override; by default an
            :class:`~repro.dynamics.incremental.IncrementalMaintainer`
            with ``flush_every=0`` is created over the overlay and
            flushed once per compaction against the compacted base.
        auto_flip: Flip each rollover immediately after warming. The
            chaos harness passes ``False`` to stretch the
            pending-rollover window across request waves; a pending
            rollover left by the caller is flipped at the *next*
            compaction, so ingestion itself never dies on
            ``ConfigurationError``.
        clock: Monotonic time source (injectable for tests).
    """

    def __init__(self, platform, similarity: SimilarityMatrix,
                 topics: Sequence[str], *,
                 policy: Optional[CompactionPolicy] = None,
                 maintainer: Optional[IncrementalMaintainer] = None,
                 auto_flip: bool = True,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.platform = platform
        self.similarity = similarity
        self.topics = list(topics)
        self.policy = policy if policy is not None else CompactionPolicy()
        self.auto_flip = auto_flip
        self._clock = clock
        base = platform.snapshot
        self.overlay = DeltaSnapshot(base)
        self.index: LandmarkIndex = platform.index
        if maintainer is None:
            maintainer = IncrementalMaintainer(
                self.overlay, self.index, self.topics, similarity,
                params=platform.params, flush_every=0)
        self.maintainer = maintainer
        self._servable_epoch = base.epoch
        self._oldest_pending: Optional[float] = None
        self.events_total = 0
        self.events_skipped = 0
        self.compactions_total = 0

    # ------------------------------------------------------------------
    @property
    def servable_epoch(self) -> int:
        """Epoch the serving tier currently answers from."""
        return self._servable_epoch

    @property
    def pending_events(self) -> int:
        """Applied events not yet folded into a servable base."""
        return self.overlay.events_applied

    def submit(self, event: IngestEvent) -> IngestResponse:
        """Apply one event to the overlay; compact when the policy says.

        Returns an :class:`~repro.api.IngestResponse` whose
        ``applied`` mirrors the overlay's skip semantics (unfollow or
        retopic of a missing edge is a counted no-op).
        """
        edge_event = event.to_edge_event()
        applied = self.overlay.apply(edge_event)
        if applied:
            self.events_total += 1
            _obs.count("ingest.events_total")
            if self._oldest_pending is None:
                self._oldest_pending = self._clock()
            self.maintainer.on_event(edge_event)
        else:
            self.events_skipped += 1
            _obs.count("ingest.events_skipped_total")

        compacted = False
        oldest_age = (self._clock() - self._oldest_pending
                      if self._oldest_pending is not None else 0.0)
        trigger = self.policy.due(self.overlay, self.pending_events,
                                  oldest_age)
        if trigger is not None:
            self.compact(trigger=trigger)
            compacted = True
        return IngestResponse(
            event=event,
            applied=applied,
            ingest_epoch=self.overlay.epoch,
            servable_epoch=self._servable_epoch,
            compacted=compacted,
            pending_events=self.pending_events,
        )

    def submit_all(self, events: Iterable[IngestEvent]
                   ) -> List[IngestResponse]:
        """Submit every event in order; returns all responses."""
        return [self.submit(event) for event in events]

    # ------------------------------------------------------------------
    def compact(self, trigger: str = "manual") -> GraphSnapshot:
        """Fold the overlay into a fresh base and roll the tier over.

        The sequence: flip any rollover still pending from a previous
        ``auto_flip=False`` compaction; compact the overlay; flush the
        maintainer against the compacted base (bitwise-equal to a full
        rebuild, at dirty-frontier cost); hand base + refreshed index
        to :meth:`ShardedPlatform.begin_rollover`; flip (unless
        ``auto_flip=False`` — then the caller owns the flip); start a
        fresh overlay over the new base.

        Returns the compacted base snapshot.
        """
        with _obs.span("ingest.compact") as _sp:
            pending = self.platform.pending_rollover
            if pending is not None:
                pending.flip()
                self._servable_epoch = pending.epoch
            snapshot = self.overlay.compact()
            refreshed = self.maintainer.flush(view=snapshot)
            rollover = self.platform.begin_rollover(
                graph=snapshot, index=self.index)
            if self.auto_flip:
                rollover.flip()
                self._servable_epoch = snapshot.epoch
            if _sp:
                _sp.set(trigger=trigger, epoch=snapshot.epoch,
                        events=self.overlay.events_applied,
                        landmarks_refreshed=refreshed,
                        flipped=self.auto_flip)
        self.overlay = DeltaSnapshot(snapshot)
        self.maintainer.rebind(self.overlay)
        self._oldest_pending = None
        self.compactions_total += 1
        _obs.count("ingest.compactions_total")
        _obs.gauge("ingest.pending_events", 0.0)
        return snapshot

    def __repr__(self) -> str:
        return (f"IngestPipeline(events={self.events_total}, "
                f"pending={self.pending_events}, "
                f"compactions={self.compactions_total}, "
                f"servable_epoch={self._servable_epoch})")
