"""Synthetic per-topic micro-post text.

Stands in for the 2.3 billion crawled tweets: each topic has a keyword
pool; a user's posts are short keyword samples drawn from their
publisher-profile topics plus common filler words. The seed tagger and
the multi-label classifier of :mod:`repro.topics` both key off these
pools, mirroring how OpenCalais + the trained SVM keyed off real tweet
vocabulary, and the simulated user-study panel "reads" these posts.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from ..utils.rng import SeedLike, rng_from_seed

#: Keyword pools per Web topic. Deliberately small and disjoint-ish —
#: topical vocabulary with a few ambiguous shared words (see
#: _FILLER) so the classifier's precision is high but not perfect,
#: like the paper's 0.90.
TOPIC_KEYWORDS: Dict[str, Sequence[str]] = {
    "social": ("community", "friends", "society", "volunteer", "charity",
               "neighborhood", "inclusion", "solidarity"),
    "politics": ("election", "senate", "policy", "minister", "parliament",
                 "campaign", "vote", "diplomacy"),
    "law": ("court", "verdict", "lawsuit", "attorney", "legislation",
            "justice", "trial", "ruling"),
    "religion": ("faith", "church", "prayer", "scripture", "pilgrimage",
                 "temple", "worship", "parish"),
    "education": ("school", "students", "curriculum", "teacher", "exam",
                  "university", "scholarship", "classroom"),
    "leisure": ("weekend", "hobby", "relax", "concert", "festival",
                "gaming", "picnic", "getaway"),
    "sports": ("match", "championship", "goal", "coach", "tournament",
               "league", "stadium", "athlete"),
    "entertainment": ("movie", "celebrity", "premiere", "album", "sitcom",
                      "boxoffice", "trailer", "streaming"),
    "travel": ("flight", "itinerary", "passport", "hostel", "destination",
               "roadtrip", "luggage", "visa"),
    "food": ("recipe", "restaurant", "chef", "tasting", "ingredients",
             "bakery", "delicious", "cuisine"),
    "health": ("wellness", "vaccine", "fitness", "nutrition", "clinic",
               "therapy", "symptoms", "hospital"),
    "business": ("startup", "merger", "revenue", "entrepreneur", "market",
                 "strategy", "quarterly", "acquisition"),
    "finance": ("stocks", "interest", "portfolio", "dividend", "inflation",
                "banking", "bonds", "trading"),
    "science": ("research", "experiment", "laboratory", "discovery",
                "hypothesis", "physics", "genome", "telescope"),
    "environment": ("climate", "emissions", "renewable", "wildlife",
                    "conservation", "pollution", "ecosystem", "recycling"),
    "weather": ("forecast", "storm", "temperature", "rainfall", "heatwave",
                "blizzard", "humidity", "barometer"),
    "technology": ("software", "gadget", "cloud", "smartphone", "startup",
                   "algorithm", "opensource", "silicon"),
    "bigdata": ("analytics", "hadoop", "pipeline", "terabyte", "dashboard",
                "warehouse", "streaming", "mapreduce"),
}

#: Topic-neutral filler every post mixes in; shared across topics so
#: classification is non-trivial.
_FILLER: Sequence[str] = (
    "today", "just", "really", "new", "great", "check", "this", "about",
    "morning", "people", "time", "world", "latest", "thoughts",
)


def generate_tweet(rng: random.Random, topics: Sequence[str],
                   keywords: Dict[str, Sequence[str]] = TOPIC_KEYWORDS,
                   length: int = 8) -> str:
    """One synthetic post about *topics*.

    Roughly 60% of tokens come from the topic pools, the rest from the
    shared filler vocabulary; empty *topics* yields pure filler (the
    "neutral, unclear" posts Section 5.3 mentions judges struggled
    with).
    """
    words: List[str] = []
    ordered_topics = sorted(topics)  # stable under set-typed input
    for _ in range(length):
        if ordered_topics and rng.random() < 0.6:
            topic = rng.choice(ordered_topics)
            pool = keywords.get(topic)
            words.append(rng.choice(list(pool)) if pool else rng.choice(list(_FILLER)))
        else:
            words.append(rng.choice(list(_FILLER)))
    return " ".join(words)


def generate_tweets(topics: Sequence[str], count: int,
                    seed: SeedLike = None,
                    keywords: Dict[str, Sequence[str]] = TOPIC_KEYWORDS,
                    ) -> List[str]:
    """*count* posts for an account publishing on *topics*."""
    rng = rng_from_seed(seed)
    return [generate_tweet(rng, topics, keywords=keywords)
            for _ in range(count)]
