"""Synthetic DBLP-like author-citation dataset.

Stands in for the merged ArnetMiner dumps of Section 5.1 (2.3M papers /
525k cited authors). The generator walks the same pipeline as the
paper:

1. venues with research areas — a seed fraction labeled "manually"
   (ground truth), the rest labeled by author overlap with already
   labeled venues, like the Singapore-classification propagation;
2. papers written by small same-area author teams, each paper taking
   its venue's main area as topic;
3. citations from each paper to earlier papers — biased towards the
   same area, towards highly-cited papers (preferential attachment),
   and towards the authors' own earlier work (the *self-citation
   phenomenon* the paper blames for the faster recall growth in
   Figure 6, exposed as the ``self_citation`` knob);
4. projection to the author-citation graph, keeping only cited authors,
   with edge labels from the profile intersection of the two authors.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import ConfigurationError
from ..graph.labeled_graph import LabeledSocialGraph
from ..semantics.vocabularies import DBLP_AREAS
from ..utils.rng import SeedLike, rng_from_seed

#: Areas ordered by target popularity (Zipf rank 1 = most active).
AREA_POPULARITY_ORDER: Tuple[str, ...] = (
    "machine-learning", "databases", "networks", "artificial-intelligence",
    "data-mining", "security", "software-engineering", "vision",
    "distributed-systems", "theory", "information-retrieval", "nlp",
    "algorithms", "operating-systems", "programming-languages", "graphics",
    "hci", "bioinformatics",
)


@dataclass(frozen=True)
class DblpConfig:
    """Knobs of the DBLP-like generator.

    Attributes:
        num_authors: Author population before dropping uncited authors.
        num_venues: Number of conferences/journals.
        papers_per_author: Inclusive (min, max) papers per author.
        citations_per_paper: Inclusive (min, max) outgoing citations.
        self_citation: Probability a citation targets the authors' own
            earlier work (Figure 6's self-citation phenomenon).
        same_area_bias: Probability a non-self citation stays within
            the paper's area.
        seed_venue_fraction: Fraction of venues labeled "manually";
            the rest are labeled by author overlap.
        team_size: Inclusive (min, max) authors per paper.
        area_skew: Zipf exponent of the area-popularity law.
        areas: Area vocabulary in popularity order.
    """

    num_authors: int = 800
    num_venues: int = 40
    papers_per_author: Tuple[int, int] = (1, 4)
    citations_per_paper: Tuple[int, int] = (3, 10)
    self_citation: float = 0.25
    same_area_bias: float = 0.75
    seed_venue_fraction: float = 0.4
    team_size: Tuple[int, int] = (1, 3)
    area_skew: float = 0.9
    areas: Tuple[str, ...] = AREA_POPULARITY_ORDER

    def __post_init__(self) -> None:
        if self.num_authors < 2:
            raise ConfigurationError("num_authors must be >= 2")
        if self.num_venues < 1:
            raise ConfigurationError("num_venues must be >= 1")
        for name in ("self_citation", "same_area_bias", "seed_venue_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
        if set(self.areas) - set(DBLP_AREAS):
            unknown = sorted(set(self.areas) - set(DBLP_AREAS))
            raise ConfigurationError(f"unknown areas: {unknown}")


@dataclass(frozen=True)
class Paper:
    """A synthetic publication."""

    paper_id: int
    authors: Tuple[int, ...]
    venue: int
    area: str
    year: int


@dataclass
class DblpDataset:
    """The generated citation world plus its author projection.

    Attributes:
        graph: Author-citation graph (u → v iff u cites v; only cited
            authors kept), edges labeled with shared areas.
        papers: Every generated paper.
        venue_areas: Final venue labeling (seed + propagated).
        seed_venues: Venues that were labeled "manually".
        author_profiles: Area profiles derived from published papers.
        config: Generator configuration.
        seed: Seed used.
    """

    graph: LabeledSocialGraph
    papers: List[Paper]
    venue_areas: Dict[int, str]
    seed_venues: Set[int]
    author_profiles: Dict[int, Tuple[str, ...]]
    config: DblpConfig = field(default_factory=DblpConfig)
    seed: Optional[int] = None

    def citation_count(self, author: int) -> int:
        """Incoming citations of an author in the projected graph."""
        return self.graph.in_degree(author)


def _zipf_weights(count: int, skew: float) -> List[float]:
    return [1.0 / (rank ** skew) for rank in range(1, count + 1)]


def _weighted_choice(rng: random.Random, items: Sequence, weights: Sequence[float]):
    total = sum(weights)
    pick = rng.random() * total
    cumulative = 0.0
    for item, weight in zip(items, weights):
        cumulative += weight
        if pick <= cumulative:
            return item
    return items[-1]


def generate_dblp_graph(num_authors: int = 800, seed: SeedLike = None,
                        config: Optional[DblpConfig] = None,
                        ) -> LabeledSocialGraph:
    """Generate just the projected author-citation graph."""
    return generate_dblp_dataset(num_authors, seed, config).graph


def generate_dblp_dataset(num_authors: int = 800, seed: SeedLike = None,
                          config: Optional[DblpConfig] = None,
                          ) -> DblpDataset:
    """Run the full §5.1 pipeline: venues → papers → citations → projection."""
    cfg = config if config is not None else DblpConfig(num_authors=num_authors)
    if cfg.num_authors != num_authors:
        cfg = DblpConfig(**{**cfg.__dict__, "num_authors": num_authors})
    rng = rng_from_seed(seed)
    resolved_seed = seed if isinstance(seed, int) else None

    areas = list(cfg.areas)
    weights = _zipf_weights(len(areas), cfg.area_skew)

    # --- venues -------------------------------------------------------
    true_venue_area = {
        venue: _weighted_choice(rng, areas, weights)
        for venue in range(cfg.num_venues)
    }
    seed_count = max(1, int(cfg.seed_venue_fraction * cfg.num_venues))
    seed_venues = set(rng.sample(range(cfg.num_venues), seed_count))

    # --- authors ------------------------------------------------------
    author_home: Dict[int, str] = {
        author: _weighted_choice(rng, areas, weights)
        for author in range(cfg.num_authors)
    }
    authors_by_area: Dict[str, List[int]] = {}
    for author, area in author_home.items():
        authors_by_area.setdefault(area, []).append(author)
    venues_by_area: Dict[str, List[int]] = {}
    for venue, area in true_venue_area.items():
        venues_by_area.setdefault(area, []).append(venue)

    # --- papers -------------------------------------------------------
    papers: List[Paper] = []
    papers_by_author: Dict[int, List[int]] = {a: [] for a in author_home}
    papers_by_area: Dict[str, List[int]] = {}
    low_p, high_p = cfg.papers_per_author
    low_team, high_team = cfg.team_size
    for lead in range(cfg.num_authors):
        for _ in range(rng.randint(low_p, high_p)):
            area = author_home[lead]
            community = authors_by_area.get(area, [lead])
            team = {lead}
            for _ in range(rng.randint(low_team, high_team) - 1):
                team.add(rng.choice(community))
            venue_pool = venues_by_area.get(area)
            venue = (rng.choice(venue_pool) if venue_pool
                     else rng.randrange(cfg.num_venues))
            paper = Paper(
                paper_id=len(papers),
                authors=tuple(sorted(team)),
                venue=venue,
                area=true_venue_area[venue],
                year=2000 + rng.randint(0, 15),
            )
            papers.append(paper)
            for author in team:
                papers_by_author[author].append(paper.paper_id)
            papers_by_area.setdefault(paper.area, []).append(paper.paper_id)

    # --- citations (paper level) ---------------------------------------
    # Preferential pool: papers repeated per citation received.
    citation_pool: List[int] = [paper.paper_id for paper in papers]
    citations: List[Tuple[int, int]] = []
    low_c, high_c = cfg.citations_per_paper
    for paper in papers:
        own_earlier = [
            pid for author in paper.authors
            for pid in papers_by_author[author]
            if pid != paper.paper_id
        ]
        cited: Set[int] = set()
        for _ in range(rng.randint(low_c, high_c)):
            if own_earlier and rng.random() < cfg.self_citation:
                target = rng.choice(own_earlier)
            elif rng.random() < cfg.same_area_bias:
                pool = papers_by_area.get(paper.area, citation_pool)
                target = rng.choice(pool)
            else:
                target = rng.choice(citation_pool)
            if target == paper.paper_id or target in cited:
                continue
            cited.add(target)
            citations.append((paper.paper_id, target))
            citation_pool.append(target)

    # --- venue label propagation ---------------------------------------
    venue_areas = _propagate_venue_labels(
        rng, cfg, papers, true_venue_area, seed_venues)

    # --- author profiles ------------------------------------------------
    author_profiles: Dict[int, Tuple[str, ...]] = {}
    for author, paper_ids in papers_by_author.items():
        profile = {venue_areas[papers[pid].venue] for pid in paper_ids}
        author_profiles[author] = tuple(sorted(profile))

    # --- projection to author-citation graph ----------------------------
    graph = _project_author_graph(papers, citations, author_profiles)
    return DblpDataset(
        graph=graph,
        papers=papers,
        venue_areas=venue_areas,
        seed_venues=seed_venues,
        author_profiles=author_profiles,
        config=cfg,
        seed=resolved_seed,
    )


def _propagate_venue_labels(rng: random.Random, cfg: DblpConfig,
                            papers: List[Paper],
                            true_venue_area: Dict[int, str],
                            seed_venues: Set[int]) -> Dict[int, str]:
    """Label unseeded venues by author overlap with labeled ones.

    "Topics of two conferences are close if there are many authors
    that publish in both of them" (Section 5.1): each unlabeled venue
    takes the majority label among labeled venues weighted by shared
    authors; venues sharing no author fall back to their true area
    (standing in for a later manual pass).
    """
    authors_of_venue: Dict[int, Set[int]] = {}
    for paper in papers:
        authors_of_venue.setdefault(paper.venue, set()).update(paper.authors)
    labels = {venue: true_venue_area[venue] for venue in seed_venues}
    pending = [v for v in true_venue_area if v not in labels]
    rng.shuffle(pending)
    for venue in pending:
        votes: Dict[str, int] = {}
        mine = authors_of_venue.get(venue, set())
        for labeled_venue, area in labels.items():  # repro: ignore[R2] -- overlap votes are integers; addition is exact in any order
            overlap = len(mine & authors_of_venue.get(labeled_venue, set()))
            if overlap:
                votes[area] = votes.get(area, 0) + overlap
        if votes:
            labels[venue] = max(votes.items(), key=lambda kv: (kv[1], kv[0]))[0]
        else:
            labels[venue] = true_venue_area[venue]
    return labels


def _project_author_graph(papers: List[Paper],
                          citations: List[Tuple[int, int]],
                          author_profiles: Dict[int, Tuple[str, ...]],
                          ) -> LabeledSocialGraph:
    """Author u → author v iff a paper of u cites a paper of v.

    Only cited authors are kept (paper: "we only kept cited authors"),
    which here means: every edge endpoint appears, but authors never
    involved in any citation are dropped.
    """
    paper_by_id = {paper.paper_id: paper for paper in papers}
    edge_labels: Dict[Tuple[int, int], Set[str]] = {}
    for citing_id, cited_id in citations:
        citing = paper_by_id[citing_id]
        cited = paper_by_id[cited_id]
        for citing_author in citing.authors:
            for cited_author in cited.authors:
                if citing_author == cited_author:
                    continue
                key = (citing_author, cited_author)
                shared = (set(author_profiles[citing_author])
                          & set(author_profiles[cited_author]))
                label = shared if shared else {cited.area}
                edge_labels.setdefault(key, set()).update(label)
    graph = LabeledSocialGraph()
    for (citing_author, cited_author), label in sorted(edge_labels.items()):
        graph.ensure_node(citing_author, author_profiles[citing_author])
        graph.ensure_node(cited_author, author_profiles[cited_author])
        graph.add_edge(citing_author, cited_author, sorted(label))
    return graph
