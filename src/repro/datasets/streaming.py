"""Out-of-core streaming variant of the Twitter-shaped generator.

:func:`generate_twitter_snapshot_stream` emits a graph with the same
statistical shape as :mod:`repro.datasets.twitter` — Zipf topic
popularity, homophily, preferential attachment with Pareto-tailed
fitness, triadic closure, low reciprocity — but writes edges straight
into the on-disk snapshot format (:mod:`repro.graph.storage`) without
ever holding a full edge list in memory, so million-node graphs
generate within a bounded footprint:

- **Phase A** samples every account's publisher profile and interest
  set into compact topic-id bitmask arrays and seeds the
  preferential-attachment pools (growable int32 arrays).
- **Phase B** walks nodes in ascending id order, draws each node's
  followees (closure consults a bounded ring of recently-emitted
  rows), interns edge labels, and appends the sorted out-CSR rows
  chunk by chunk through a :class:`SnapshotWriter`. Every
  ``checkpoint_every`` nodes the writer state, RNG state, counters and
  pending reciprocal edges are checkpointed to
  ``<dir>/checkpoint.json`` — an interrupted run resumes from there
  (phase A is deterministic and merely replayed).
- **Phase C** transposes the out-CSR into the in-CSR with a bounded
  number of target-range passes over the emitted files (each pass
  selects, sorts and appends one contiguous slice of targets), and
  derives the per-topic follower-count CSR and global maxima from the
  same pass — then finalises the checksummed header.

Reciprocity differs from the in-RAM generator in one necessary way:
edges are emitted in ascending source order, so a reciprocal follow
``v -> u`` with ``v > u`` is queued and emitted when ``v``'s row is
reached, while ``v < u`` (the row already shipped) is dropped and
counted in :attr:`StreamStats.dropped_reciprocal`.

Everything is driven by one seeded :class:`random.Random`; the same
seed and knobs produce a byte-identical snapshot directory (modulo the
header's insertion-ordered metadata), interrupted or not.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..errors import ConfigurationError
from ..graph.storage import ARRAY_DTYPE, SnapshotWriter, read_header
from ..utils.rng import SeedLike, rng_from_seed
from .twitter import TwitterConfig, _sample_topics, _zipf_weights

PathLike = Union[str, Path]

_CHECKPOINT_NAME = "checkpoint.json"
_STATS_NAME = "stats.json"
#: Edge-buffer flush threshold (elements per array).
_FLUSH_EDGES = 1 << 19
#: Target in-memory edge count per transpose pass.
_TRANSPOSE_PASS_EDGES = 1 << 20
#: Elements per chunked read while scanning the emitted out-CSR.
_SCAN_CHUNK = 1 << 21


@dataclass
class StreamStats:
    """Counters accumulated *during* streaming emission.

    This is what ``repro generate --stream`` prints — the written
    graph is never re-loaded just to report its shape.
    """

    num_nodes: int = 0
    num_edges: int = 0
    reciprocal_edges: int = 0
    dropped_reciprocal: int = 0
    distinct_labels: int = 0
    edges_per_topic: Dict[str, int] = field(default_factory=dict)
    checkpoints: int = 0
    resumed_from: Optional[int] = None
    path: str = ""

    def to_json(self) -> str:
        """Serialise for ``<dir>/stats.json``."""
        return json.dumps({
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "reciprocal_edges": self.reciprocal_edges,
            "dropped_reciprocal": self.dropped_reciprocal,
            "distinct_labels": self.distinct_labels,
            "edges_per_topic": {t: self.edges_per_topic[t]
                                for t in sorted(self.edges_per_topic)},
            "checkpoints": self.checkpoints,
            "resumed_from": self.resumed_from,
            "path": self.path,
        }, indent=1, sort_keys=True)


class _GrowArray:
    """Append-only int32 array with amortised doubling."""

    __slots__ = ("_data", "_size")

    def __init__(self, capacity: int = 1024) -> None:
        self._data = np.empty(capacity, dtype=np.int32)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def append(self, value: int) -> None:
        if self._size == self._data.shape[0]:
            grown = np.empty(self._data.shape[0] * 2, dtype=np.int32)
            grown[:self._size] = self._data[:self._size]
            self._data = grown
        self._data[self._size] = value
        self._size += 1

    def pick(self, rng) -> int:
        """Uniform element (caller guarantees non-empty)."""
        return int(self._data[rng.randrange(self._size)])


def _encode_rng_state(state) -> list:
    return [state[0], list(state[1]), state[2]]


def _decode_rng_state(payload) -> tuple:
    return (payload[0], tuple(payload[1]), payload[2])


class _Emitter:
    """All mutable state of one streaming generation run."""

    def __init__(self, path: Path, num_nodes: int, seed: SeedLike,
                 cfg: TwitterConfig, checkpoint_every: int,
                 closure_window: int) -> None:
        self.path = path
        self.cfg = cfg
        self.n = num_nodes
        self.seed = seed
        self.checkpoint_every = checkpoint_every
        self.closure_window = closure_window
        self.rng = rng_from_seed(seed)
        self.topics: Tuple[str, ...] = tuple(cfg.topics)
        self.topic_ids = {t: i for i, t in enumerate(self.topics)}
        self.writer = SnapshotWriter(path)
        self.stats = StreamStats(num_nodes=num_nodes, path=str(path))
        # Interning table: label key (sorted topic-id tuple) -> id.
        self.label_ids: Dict[Tuple[int, ...], int] = {}
        self.labels: List[Tuple[int, ...]] = []
        # Phase-A outputs.
        self.publisher_mask = np.zeros(num_nodes, dtype=np.int64)
        self.interest_mask = np.zeros(num_nodes, dtype=np.int64)
        self.global_pool = _GrowArray()
        self.topic_pool = [_GrowArray() for _ in self.topics]
        self.publishers_of: List[np.ndarray] = []
        # Phase-B state.
        self.in_degree = np.zeros(num_nodes, dtype=np.int64)
        self.pending: Dict[int, List[int]] = {}
        self.ring: Dict[int, np.ndarray] = {}
        self.edge_count = 0
        self.topic_edge_counts = [0] * len(self.topics)
        self._buf_indices: List[np.ndarray] = []
        self._buf_labels: List[np.ndarray] = []
        self._buf_indptr: List[int] = []
        self._buf_edges = 0
        # Mask-decoding memos (distinct masks are few).
        self._mask_names: Dict[int, Tuple[str, ...]] = {}

    # -- mask helpers --------------------------------------------------
    def _names(self, mask: int) -> Tuple[str, ...]:
        cached = self._mask_names.get(mask)
        if cached is None:
            cached = tuple(t for i, t in enumerate(self.topics)
                           if mask >> i & 1)
            self._mask_names[mask] = cached
        return cached

    def _intern(self, key: Tuple[int, ...]) -> int:
        lid = self.label_ids.get(key)
        if lid is None:
            lid = len(self.labels)
            self.label_ids[key] = lid
            self.labels.append(key)
        return lid

    # -- phase A -------------------------------------------------------
    def sample_profiles(self) -> None:
        """Draw every account's profile/interests and seed the pools.

        Deterministic for a given seed, so a resumed run simply
        replays this phase before restoring the checkpointed RNG
        state.
        """
        cfg, rng = self.cfg, self.rng
        topics = list(self.topics)
        weights = _zipf_weights(len(topics), cfg.topic_skew)
        tid = self.topic_ids
        publishers: List[List[int]] = [[] for _ in topics]
        for node in range(self.n):
            publisher = _sample_topics(
                rng, topics, weights,
                rng.randint(1, cfg.max_publisher_topics))
            pmask = 0
            for topic in publisher:
                pmask |= 1 << tid[topic]
            self.publisher_mask[node] = pmask
            interest = set(t for t in publisher if rng.random() < 0.7)
            extra = _sample_topics(rng, topics, weights,
                                   rng.randint(1, cfg.max_interest_topics))
            for topic in extra:
                if len(interest) >= cfg.max_interest_topics:
                    break
                interest.add(topic)
            imask = 0
            for topic in interest:
                imask |= 1 << tid[topic]
            self.interest_mask[node] = imask
            fitness = min(60, int(rng.paretovariate(1.3)))
            for _ in range(fitness):
                self.global_pool.append(node)
                for topic in publisher:
                    self.topic_pool[tid[topic]].append(node)
            for topic in publisher:
                publishers[tid[topic]].append(node)
        self.publishers_of = [np.asarray(p, dtype=np.int32)
                              for p in publishers]

    # -- phase B -------------------------------------------------------
    def _pick_target(self, follower: int, row: Dict[int, int]
                     ) -> Optional[int]:
        cfg, rng = self.cfg, self.rng
        if rng.random() < cfg.closure:
            followees = list(row)
            if followees:
                middleman = rng.choice(followees)
                second_hop = self.ring.get(middleman)
                if second_hop is not None and second_hop.shape[0]:
                    return int(second_hop[rng.randrange(
                        second_hop.shape[0])])
        interest = self._names(int(self.interest_mask[follower]))
        if interest and rng.random() < cfg.homophily:
            topic_id = self.topic_ids[rng.choice(interest)]
            pa_pool = self.topic_pool[topic_id]
            uniform_pool = self.publishers_of[topic_id]
            if len(pa_pool) and rng.random() < cfg.preferential:
                return pa_pool.pick(rng)
            if uniform_pool.shape[0]:
                return int(uniform_pool[rng.randrange(
                    uniform_pool.shape[0])])
        if rng.random() < cfg.preferential and len(self.global_pool):
            return self.global_pool.pick(rng)
        return rng.randrange(self.n)

    def _label_edge(self, follower: int, followee: int) -> int:
        shared = (int(self.interest_mask[follower])
                  & int(self.publisher_mask[followee]))
        if shared:
            key = tuple(i for i in range(len(self.topics))
                        if shared >> i & 1)
        else:
            profile = self._names(int(self.publisher_mask[followee]))
            key = (self.topic_ids[self.rng.choice(profile)],)
        return self._intern(key)

    def _add_edge(self, follower: int, followee: int,
                  row: Dict[int, int]) -> bool:
        if follower == followee or followee in row:
            return False
        lid = self._label_edge(follower, followee)
        row[followee] = lid
        return True

    def emit_node(self, node: int) -> None:
        """Draw, label, sort and buffer one node's out-row."""
        cfg, rng = self.cfg, self.rng
        row: Dict[int, int] = {}
        for source in self.pending.pop(node, ()):  # reciprocal backlog
            if self._add_edge(node, source, row):
                self.stats.reciprocal_edges += 1
        base = int(cfg.avg_out_degree)
        degree = base + (1 if rng.random() < (cfg.avg_out_degree - base)
                         else 0)
        created = 0
        for _ in range(max(degree, 1) * 20):  # bounded attempts
            if created >= degree:
                break
            followee = self._pick_target(node, row)
            if followee is None or not self._add_edge(node, followee, row):
                continue
            created += 1
            if rng.random() < cfg.reciprocity:
                if followee > node:
                    self.pending.setdefault(followee, []).append(node)
                else:
                    self.stats.dropped_reciprocal += 1
        targets = np.fromiter(sorted(row), dtype=np.int64, count=len(row))
        label_row = np.fromiter((row[t] for t in targets.tolist()),
                                dtype=np.int64, count=targets.shape[0])
        # Attachment pools grow in *emitted* (sorted-row) order, not
        # draw order — this is what lets a resumed run rebuild the
        # pools exactly by replaying the emitted files.
        for followee, lid in zip(targets.tolist(), label_row.tolist()):
            self.global_pool.append(followee)
            for topic_id in self.labels[lid]:
                self.topic_pool[topic_id].append(followee)
                self.topic_edge_counts[topic_id] += 1
        self._buf_indices.append(targets)
        self._buf_labels.append(label_row)
        self.edge_count += targets.shape[0]
        self._buf_edges += targets.shape[0]
        self._buf_indptr.append(self.edge_count)
        np.add.at(self.in_degree, targets, 1)
        self.ring[node] = targets
        evicted = node - self.closure_window
        if evicted >= 0:
            self.ring.pop(evicted, None)
        if self._buf_edges >= _FLUSH_EDGES:
            self.flush()

    def flush(self) -> None:
        """Append buffered rows to the writer."""
        if self._buf_indices:
            self.writer.append("out_indices",
                               np.concatenate(self._buf_indices))
            self.writer.append("out_label_ids",
                               np.concatenate(self._buf_labels))
            self._buf_indices.clear()
            self._buf_labels.clear()
            self._buf_edges = 0
        if self._buf_indptr:
            self.writer.append("out_indptr",
                               np.asarray(self._buf_indptr, dtype=np.int64))
            self._buf_indptr.clear()

    # -- checkpoint / resume -------------------------------------------
    def _config_fingerprint(self) -> Dict[str, object]:
        return {
            "num_nodes": self.n,
            "seed": self.seed if isinstance(self.seed, int) else None,
            "avg_out_degree": self.cfg.avg_out_degree,
            "homophily": self.cfg.homophily,
            "closure": self.cfg.closure,
            "preferential": self.cfg.preferential,
            "topic_skew": self.cfg.topic_skew,
            "reciprocity": self.cfg.reciprocity,
            "topics": list(self.topics),
            "closure_window": self.closure_window,
        }

    def checkpoint(self, next_node: int) -> None:
        """Durably record emission progress at *next_node*."""
        self.flush()
        payload = {
            "version": 1,
            "fingerprint": self._config_fingerprint(),
            "next_node": next_node,
            "rng_state": _encode_rng_state(self.rng.getstate()),
            "writer_state": self.writer.state(),
            "pending": {str(v): sources
                        for v, sources in sorted(self.pending.items())},
            "labels": [list(key) for key in self.labels],
            "edge_count": self.edge_count,
            "topic_edge_counts": list(self.topic_edge_counts),
            "stats": {
                "reciprocal_edges": self.stats.reciprocal_edges,
                "dropped_reciprocal": self.stats.dropped_reciprocal,
                "checkpoints": self.stats.checkpoints + 1,
            },
        }
        tmp = self.path / (_CHECKPOINT_NAME + ".tmp")
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        tmp.replace(self.path / _CHECKPOINT_NAME)
        self.stats.checkpoints += 1

    def try_resume(self) -> int:
        """Restore checkpointed state; returns the node to resume at.

        Returns 0 (fresh start) when no checkpoint exists. A
        checkpoint written under different knobs is a hard error —
        silently mixing two configurations would corrupt the output.
        """
        checkpoint_path = self.path / _CHECKPOINT_NAME
        if not checkpoint_path.exists():
            return 0
        payload = json.loads(checkpoint_path.read_text(encoding="utf-8"))
        if payload.get("fingerprint") != self._config_fingerprint():
            raise ConfigurationError(
                f"checkpoint at {checkpoint_path} was written with "
                f"different generator parameters; delete the directory "
                f"to start over")
        next_node = int(payload["next_node"])
        writer_state = payload["writer_state"]
        self.writer.restore(writer_state)
        self.labels = [tuple(key) for key in payload["labels"]]
        self.label_ids = {key: i for i, key in enumerate(self.labels)}
        self.edge_count = int(payload["edge_count"])
        self.topic_edge_counts = [int(c)
                                  for c in payload["topic_edge_counts"]]
        self.pending = {int(v): [int(s) for s in sources]
                        for v, sources in payload["pending"].items()}
        stats = payload["stats"]
        self.stats.reciprocal_edges = int(stats["reciprocal_edges"])
        self.stats.dropped_reciprocal = int(stats["dropped_reciprocal"])
        self.stats.checkpoints = int(stats["checkpoints"])
        self.stats.resumed_from = next_node
        # Replay the emitted edges to rebuild the derived state the
        # checkpoint deliberately omits: attachment-pool appends,
        # in-degrees, and the closure ring's recent rows.
        indices_count = int(writer_state.get(
            "out_indices", {}).get("count", 0))
        emitted_indices = self._read_emitted("out_indices", indices_count)
        emitted_labels = self._read_emitted("out_label_ids", indices_count)
        np.add.at(self.in_degree, emitted_indices, 1)
        for target, lid in zip(emitted_indices.tolist(),
                               emitted_labels.tolist()):
            self.global_pool.append(target)
            for topic_id in self.labels[lid]:
                self.topic_pool[topic_id].append(target)
        indptr_count = int(writer_state.get(
            "out_indptr", {}).get("count", 0))
        indptr = self._read_emitted("out_indptr", indptr_count)
        ring_lo = max(0, next_node - self.closure_window)
        for node in range(ring_lo, next_node):
            self.ring[node] = emitted_indices[
                int(indptr[node]):int(indptr[node + 1])].astype(np.int64)
        return next_node

    def _read_emitted(self, name: str, count: int) -> np.ndarray:
        return np.fromfile(self.path / f"{name}.bin", dtype=ARRAY_DTYPE,
                           count=count)

    # -- phase C -------------------------------------------------------
    def transpose_and_finalize(self) -> None:
        """Build the in-CSR, profile and follower CSRs; write header."""
        self.flush()
        # The transpose re-reads the emitted files through independent
        # handles; writer.state() flushes the append buffers to disk
        # so those reads see every edge.
        self.writer.state()
        # Phase-B state is dead once emission is done; drop the big
        # pools so the transpose's working set rides on a small floor.
        self.ring.clear()
        self.pending.clear()
        self.global_pool = _GrowArray()
        self.topic_pool = [_GrowArray() for _ in self.topics]
        self.publishers_of = [np.empty(0, dtype=np.int32)
                              for _ in self.topics]
        writer = self.writer
        # node_ids: contiguous by construction.
        for start in range(0, self.n, _SCAN_CHUNK):
            stop = min(self.n, start + _SCAN_CHUNK)
            writer.append("node_ids",
                          np.arange(start, stop, dtype=np.int64))
        # Profile CSR straight from the phase-A masks.
        writer.append("prof_indptr", np.zeros(1, dtype=np.int64))
        tids = np.arange(len(self.topics), dtype=np.int64)
        base = 0
        for start in range(0, self.n, 65536):
            stop = min(self.n, start + 65536)
            masks = self.publisher_mask[start:stop]
            hits = (masks[:, None] >> tids[None, :]) & 1  # (chunk, T)
            counts = hits.sum(axis=1)
            writer.append("prof_topic_ids",
                          np.broadcast_to(tids, hits.shape)[hits == 1])
            writer.append("prof_indptr", np.cumsum(counts) + base)
            base += int(counts.sum())
        # in-CSR via bounded target-range passes: each pass scans the
        # emitted out-CSR, keeps only edges landing in its target
        # range, stable-sorts them by target (sources stay ascending
        # within a target: emission order is ascending source) and
        # appends — so the in-arrays are written strictly in order and
        # the follower-count CSR falls out of the same grouping.
        in_indptr = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(self.in_degree)])
        writer.append("in_indptr", in_indptr)
        writer.append("fol_indptr", np.zeros(1, dtype=np.int64))
        label_table = self.labels
        num_topics = len(self.topics)
        max_followers = np.zeros(num_topics, dtype=np.int64)
        # Expansion table: label id -> its topic ids (CSR).
        label_indptr = np.concatenate(
            [np.zeros(1, dtype=np.int64),
             np.cumsum([len(key) for key in label_table])]
        ).astype(np.int64)
        label_topics = np.asarray(
            [tid for key in label_table for tid in key], dtype=np.int64)
        fol_base = 0
        bounds = self._pass_bounds(in_indptr)
        for t0, t1 in bounds:
            picked_src: List[np.ndarray] = []
            picked_tgt: List[np.ndarray] = []
            picked_lab: List[np.ndarray] = []
            for lo in range(0, self.edge_count, _SCAN_CHUNK):
                hi = min(self.edge_count, lo + _SCAN_CHUNK)
                targets = self._read_chunk("out_indices", lo, hi)
                labels = self._read_chunk("out_label_ids", lo, hi)
                sources_by_edge = self._chunk_sources(lo, hi)
                keep = (targets >= t0) & (targets < t1)
                picked_src.append(sources_by_edge[keep])
                picked_tgt.append(targets[keep])
                picked_lab.append(labels[keep])
            src = np.concatenate(picked_src) if picked_src else \
                np.empty(0, dtype=np.int64)
            tgt = np.concatenate(picked_tgt) if picked_tgt else \
                np.empty(0, dtype=np.int64)
            lab = np.concatenate(picked_lab) if picked_lab else \
                np.empty(0, dtype=np.int64)
            # The per-chunk pieces are concatenated; free them before
            # the sort doubles the pass's working set.
            picked_src.clear()
            picked_tgt.clear()
            picked_lab.clear()
            order = np.argsort(tgt, kind="stable")
            src, tgt, lab = src[order], tgt[order], lab[order]
            del order
            writer.append("in_indices", src)
            writer.append("in_label_ids", lab)
            # Follower-topic counts for targets in [t0, t1): expand
            # each in-edge's label to its topics, then count distinct
            # (target, topic) pairs — rows come out sorted by target
            # then topic id, matching the store's decode order.
            sizes = (label_indptr[lab + 1] - label_indptr[lab])
            expanded_tgt = np.repeat(tgt, sizes)
            gather = _csr_gather(label_indptr, lab, sizes)
            expanded_topic = label_topics[gather] if gather.shape[0] \
                else np.empty(0, dtype=np.int64)
            pair_keys = expanded_tgt * num_topics + expanded_topic
            del expanded_tgt, expanded_topic, gather
            unique_pairs, pair_counts = np.unique(pair_keys,
                                                  return_counts=True)
            del pair_keys
            pair_targets = unique_pairs // num_topics
            pair_topics = unique_pairs % num_topics
            writer.append("fol_topic_ids", pair_topics)
            writer.append("fol_counts", pair_counts)
            np.maximum.at(max_followers, pair_topics, pair_counts)
            rows = np.bincount((pair_targets - t0).astype(np.int64),
                               minlength=t1 - t0)
            writer.append("fol_indptr", np.cumsum(rows) + fol_base)
            fol_base += int(rows.sum())
        self.stats.num_edges = self.edge_count
        self.stats.distinct_labels = len(label_table)
        self.stats.edges_per_topic = {
            self.topics[i]: int(count)
            for i, count in enumerate(self.topic_edge_counts) if count}
        writer.finalize(
            epoch=0, num_nodes=self.n, num_edges=self.edge_count,
            contiguous_ids=True, topics=self.topics,
            labels=[list(key) for key in label_table],
            max_followers={self.topics[i]: int(m)
                           for i, m in enumerate(max_followers.tolist())
                           if m})
        (self.path / _STATS_NAME).write_text(self.stats.to_json() + "\n",
                                             encoding="utf-8")
        checkpoint_path = self.path / _CHECKPOINT_NAME
        if checkpoint_path.exists():
            checkpoint_path.unlink()

    def _pass_bounds(self, in_indptr: np.ndarray
                     ) -> List[Tuple[int, int]]:
        """Contiguous target ranges of ~bounded in-edge volume."""
        bounds: List[Tuple[int, int]] = []
        t0 = 0
        while t0 < self.n:  # advances by >= 1 node per iteration
            limit = int(in_indptr[t0]) + _TRANSPOSE_PASS_EDGES
            t1 = int(np.searchsorted(in_indptr, limit, side="right")) - 1
            t1 = max(t1, t0 + 1)
            t1 = min(t1, self.n)
            bounds.append((t0, t1))
            t0 = t1
        if not bounds:
            bounds.append((0, self.n))
        return bounds

    def _read_chunk(self, name: str, lo: int, hi: int) -> np.ndarray:
        with (self.path / f"{name}.bin").open("rb") as handle:
            handle.seek(lo * 8)
            return np.fromfile(handle, dtype=ARRAY_DTYPE, count=hi - lo)

    def _chunk_sources(self, lo: int, hi: int) -> np.ndarray:
        """Source node of every out-edge in ``[lo, hi)``.

        Derived from the (small, fully-written) out_indptr file kept
        cached in memory.
        """
        indptr = getattr(self, "_indptr_cache", None)
        if indptr is None:
            indptr = self._read_emitted("out_indptr", self.n + 1)
            self._indptr_cache = indptr
        first = int(np.searchsorted(indptr, lo, side="right")) - 1
        last_row = int(np.searchsorted(indptr, hi - 1, side="right")) - 1
        counts = np.diff(np.clip(indptr[first:last_row + 2], lo, hi))
        return np.repeat(np.arange(first, last_row + 1, dtype=np.int64),
                         counts)


def _csr_gather(indptr: np.ndarray, rows: np.ndarray,
                sizes: np.ndarray) -> np.ndarray:
    """Indices gathering each row's CSR slice, concatenated.

    For rows ``r`` with extents ``[indptr[r], indptr[r+1])`` returns
    the flat index array ``[indptr[r0], ..., indptr[r0+1]-1,
    indptr[r1], ...]`` without a Python-level loop.
    """
    total = int(sizes.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = indptr[rows]
    offsets = np.arange(total, dtype=np.int64)
    row_starts = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(sizes)[:-1]])
    return starts.repeat(sizes) + (offsets - row_starts.repeat(sizes))


def generate_twitter_snapshot_stream(
        path: PathLike, num_nodes: int, seed: SeedLike = 0,
        config: Optional[TwitterConfig] = None,
        checkpoint_every: int = 100_000, closure_window: int = 25_000,
        resume: bool = True,
        on_checkpoint: Optional[Callable[[int], None]] = None
        ) -> StreamStats:
    """Stream-generate a Twitter-shaped graph into a snapshot directory.

    Args:
        path: Target snapshot directory (created if missing). After a
            successful run it opens via
            :func:`repro.graph.io.open_snapshot`.
        num_nodes: Number of accounts (ids ``0..num_nodes-1``).
        seed: Generator seed — the run is fully deterministic.
        config: Shape knobs (defaults to :class:`TwitterConfig` at
            this ``num_nodes``).
        checkpoint_every: Nodes between durable checkpoints.
        closure_window: How many recently-emitted rows the triadic
            closure step can target through (bounds ring memory).
        resume: Continue from ``checkpoint.json`` when present;
            ``False`` ignores (and overwrites) any partial run.
        on_checkpoint: Test hook invoked after each checkpoint with
            the next node id.

    Returns:
        :class:`StreamStats` with the counters accumulated during
        emission (also persisted as ``<dir>/stats.json``).

    Raises:
        ConfigurationError: a checkpoint exists but was written with
            different parameters.
    """
    cfg = config if config is not None \
        else TwitterConfig(num_nodes=num_nodes)
    if cfg.num_nodes != num_nodes:
        cfg = TwitterConfig(**{**cfg.__dict__, "num_nodes": num_nodes})
    directory = Path(path)
    directory.mkdir(parents=True, exist_ok=True)
    emitter = _Emitter(directory, num_nodes, seed, cfg, checkpoint_every,
                       closure_window)
    try:
        emitter.sample_profiles()
        start_node = emitter.try_resume() if resume else 0
        if start_node:
            state = json.loads(
                (directory / _CHECKPOINT_NAME).read_text(encoding="utf-8"))
            emitter.rng.setstate(_decode_rng_state(state["rng_state"]))
        else:
            # Fresh start: the CSR needs its leading zero, and any
            # checkpoint from an abandoned earlier run must not be
            # picked up by a future resume of *this* run.
            stale = directory / _CHECKPOINT_NAME
            if stale.exists():
                stale.unlink()
            emitter.writer.append("out_indptr",
                                  np.zeros(1, dtype=np.int64))
        for node in range(start_node, num_nodes):
            emitter.emit_node(node)
            if (node + 1) % checkpoint_every == 0 and node + 1 < num_nodes:
                emitter.checkpoint(node + 1)
                if on_checkpoint is not None:
                    on_checkpoint(node + 1)
        emitter.transpose_and_finalize()
    finally:
        emitter.writer.close()
    return emitter.stats


def read_stream_stats(path: PathLike) -> StreamStats:
    """Load the ``stats.json`` a finished streaming run wrote.

    Validates that the directory holds a finished snapshot first (the
    header is only written on success).
    """
    directory = Path(path)
    read_header(directory)
    payload = json.loads(
        (directory / _STATS_NAME).read_text(encoding="utf-8"))
    return StreamStats(
        num_nodes=int(payload["num_nodes"]),
        num_edges=int(payload["num_edges"]),
        reciprocal_edges=int(payload["reciprocal_edges"]),
        dropped_reciprocal=int(payload["dropped_reciprocal"]),
        distinct_labels=int(payload["distinct_labels"]),
        edges_per_topic={str(t): int(c) for t, c
                         in payload["edges_per_topic"].items()},
        checkpoints=int(payload["checkpoints"]),
        resumed_from=payload.get("resumed_from"),
        path=str(directory))
