"""Synthetic Twitter-like labeled follow graph.

Stands in for the paper's 2015 crawl (2.2M users / 125M follows). The
generator reproduces the *statistical shape* that the paper's
algorithms are sensitive to, at configurable scale:

- heavy-tailed in-degree via preferential attachment (a few celebrity
  accounts, like Table 2's max in-degree of 348k vs the 69 average);
- low reciprocity (Twitter's follow graph is an information network,
  per the Myers et al. study the paper cites);
- a biased edges-per-topic distribution (Figure 3): topic popularity
  follows a Zipf law over :data:`TOPIC_POPULARITY_ORDER`, with
  ``technology`` frequent and ``social`` rare, matching the roles these
  topics play in Figure 9;
- topical homophily: follow edges preferentially land on publishers
  sharing the follower's interests, and edge labels are the
  interest ∩ publisher-profile intersection exactly as the labeling
  pipeline of Section 5.1 defines them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..graph.labeled_graph import LabeledSocialGraph
from ..semantics.vocabularies import WEB_TOPICS
from ..utils.rng import SeedLike, rng_from_seed
from .text import generate_tweets

#: Topics ordered by target popularity (Zipf rank 1 = most frequent).
#: ``technology`` is the popular topic and ``social`` the infrequent
#: one, the roles Figure 9 assigns them; ``leisure`` sits mid-table.
TOPIC_POPULARITY_ORDER: Tuple[str, ...] = (
    "technology", "entertainment", "sports", "politics", "business",
    "finance", "health", "leisure", "travel", "food", "science",
    "education", "bigdata", "environment", "weather", "law", "religion",
    "social",
)


@dataclass(frozen=True)
class TwitterConfig:
    """Knobs of the Twitter-like generator.

    Attributes:
        num_nodes: Number of accounts.
        avg_out_degree: Target mean number of followees.
        homophily: Probability a follow targets a publisher sharing one
            of the follower's interest topics.
        closure: Probability a follow closes a triangle (targets a
            followee of a followee). Real follow graphs are heavily
            triadically closed — it is what leaves alternative short
            paths behind a removed edge, the signal the Section 5.3
            protocol measures.
        preferential: Probability the target is drawn by preferential
            attachment (vs uniformly) within the chosen pool.
        topic_skew: Zipf exponent of the topic-popularity law.
        max_publisher_topics: Cap on topics an account publishes on.
        max_interest_topics: Cap on topics an account is interested in.
        reciprocity: Probability a follow is reciprocated.
        tweets_per_user: Inclusive (min, max) posts per account when
            generating the text corpus.
        topics: Topic vocabulary in popularity order.
    """

    num_nodes: int = 2000
    avg_out_degree: float = 15.0
    homophily: float = 0.7
    closure: float = 0.4
    preferential: float = 0.75
    topic_skew: float = 1.1
    max_publisher_topics: int = 3
    max_interest_topics: int = 4
    reciprocity: float = 0.08
    tweets_per_user: Tuple[int, int] = (3, 8)
    topics: Tuple[str, ...] = TOPIC_POPULARITY_ORDER

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ConfigurationError(
                f"num_nodes must be >= 2, got {self.num_nodes}")
        if self.avg_out_degree <= 0:
            raise ConfigurationError("avg_out_degree must be positive")
        for name in ("homophily", "closure", "preferential", "reciprocity"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
        if set(self.topics) - set(WEB_TOPICS):
            unknown = sorted(set(self.topics) - set(WEB_TOPICS))
            raise ConfigurationError(f"unknown topics: {unknown}")


@dataclass
class TwitterDataset:
    """A generated graph plus the synthetic corpus behind it.

    Attributes:
        graph: Fully labeled follow graph.
        interests: Per-account interest profile (follower-side topics) —
            ground truth the evaluation harness uses.
        tweets: Per-account posts (only filled by
            :func:`generate_twitter_dataset`).
        config: The generator configuration.
        seed: The seed the dataset was generated from.
    """

    graph: LabeledSocialGraph
    interests: Dict[int, Tuple[str, ...]]
    tweets: Dict[int, List[str]] = field(default_factory=dict)
    config: TwitterConfig = field(default_factory=TwitterConfig)
    seed: Optional[int] = None

    def unlabeled_graph(self) -> LabeledSocialGraph:
        """Copy with all labels stripped — input for the topic pipeline."""
        bare = LabeledSocialGraph()
        for node in self.graph.nodes():
            bare.add_node(node)
        for source, target, _ in self.graph.edges():
            bare.add_edge(source, target)
        return bare


def _zipf_weights(count: int, skew: float) -> List[float]:
    return [1.0 / (rank ** skew) for rank in range(1, count + 1)]


def _sample_topics(rng: random.Random, topics: Sequence[str],
                   weights: Sequence[float], count: int) -> Tuple[str, ...]:
    """Weighted sample of *count* distinct topics."""
    chosen: List[str] = []
    pool = list(zip(topics, weights))
    for _ in range(min(count, len(pool))):
        total = sum(weight for _, weight in pool)
        pick = rng.random() * total
        cumulative = 0.0
        for index, (topic, weight) in enumerate(pool):
            cumulative += weight
            if pick <= cumulative:
                chosen.append(topic)
                del pool[index]
                break
    return tuple(chosen)


def generate_twitter_graph(num_nodes: int = 2000,
                           seed: SeedLike = None,
                           config: Optional[TwitterConfig] = None,
                           ) -> LabeledSocialGraph:
    """Generate just the labeled follow graph (most callers' entry point)."""
    return _generate(num_nodes, seed, config).graph


def generate_twitter_dataset(num_nodes: int = 2000,
                             seed: SeedLike = None,
                             config: Optional[TwitterConfig] = None,
                             with_tweets: bool = True) -> TwitterDataset:
    """Generate the graph plus interest profiles and (optionally) posts."""
    dataset = _generate(num_nodes, seed, config)
    if with_tweets:
        rng = rng_from_seed(dataset.seed)
        low, high = dataset.config.tweets_per_user
        for node in dataset.graph.nodes():
            topics = sorted(dataset.graph.node_topics(node))
            dataset.tweets[node] = generate_tweets(
                topics, rng.randint(low, high), seed=rng)
    return dataset


def _generate(num_nodes: int, seed: SeedLike,
              config: Optional[TwitterConfig]) -> TwitterDataset:
    cfg = config if config is not None else TwitterConfig(num_nodes=num_nodes)
    if cfg.num_nodes != num_nodes:
        cfg = TwitterConfig(**{**cfg.__dict__, "num_nodes": num_nodes})
    rng = rng_from_seed(seed)
    resolved_seed = seed if isinstance(seed, int) else None

    topics = list(cfg.topics)
    weights = _zipf_weights(len(topics), cfg.topic_skew)

    graph = LabeledSocialGraph()
    interests: Dict[int, Tuple[str, ...]] = {}
    # Preferential-attachment pools: nodes repeated once per received
    # follow (plus one initial entry), globally and per topic.
    global_pool: List[int] = []
    topic_pool: Dict[str, List[int]] = {topic: [] for topic in topics}
    publishers_of: Dict[str, List[int]] = {topic: [] for topic in topics}

    for node in range(cfg.num_nodes):
        publisher = _sample_topics(
            rng, topics, weights, rng.randint(1, cfg.max_publisher_topics))
        graph.add_node(node, publisher)
        # Interests overlap the publisher profile and add exploration.
        interest = set(t for t in publisher if rng.random() < 0.7)
        extra = _sample_topics(rng, topics, weights,
                               rng.randint(1, cfg.max_interest_topics))
        for topic in extra:
            if len(interest) >= cfg.max_interest_topics:
                break
            interest.add(topic)
        interests[node] = tuple(sorted(interest))
        # Intrinsic fitness (Bianconi–Barabási style): a Pareto-tailed
        # multiplicity in the attachment pools creates the celebrity
        # accounts behind Table 2's max in-degree (5000x the average).
        fitness = min(60, int(rng.paretovariate(1.3)))
        for _ in range(fitness):
            global_pool.append(node)
            for topic in publisher:
                topic_pool[topic].append(node)
        for topic in publisher:
            publishers_of[topic].append(node)

    def pick_target(follower: int) -> Optional[int]:
        interest = interests[follower]
        if rng.random() < cfg.closure:
            followees = list(graph.out_neighbors(follower))
            if followees:
                middleman = rng.choice(followees)
                second_hop = list(graph.out_neighbors(middleman))
                if second_hop:
                    return rng.choice(second_hop)
        if interest and rng.random() < cfg.homophily:
            topic = rng.choice(interest)
            pa_pool = topic_pool.get(topic)
            uniform_pool = publishers_of.get(topic)
            if pa_pool and rng.random() < cfg.preferential:
                return rng.choice(pa_pool)
            if uniform_pool:
                return rng.choice(uniform_pool)
        if rng.random() < cfg.preferential:
            return rng.choice(global_pool)
        return rng.randrange(cfg.num_nodes)

    def label_edge(follower: int, followee: int) -> Tuple[str, ...]:
        shared = set(interests[follower]) & set(graph.node_topics(followee))
        if shared:
            return tuple(sorted(shared))
        # sorted: frozenset iteration order is hash-seed dependent
        profile = sorted(graph.node_topics(followee))
        return (rng.choice(profile),) if profile else ()

    def add_follow(follower: int, followee: int) -> bool:
        if follower == followee or graph.has_edge(follower, followee):
            return False
        label = label_edge(follower, followee)
        graph.add_edge(follower, followee, label)
        global_pool.append(followee)
        for topic in label:
            topic_pool[topic].append(followee)
        return True

    target_edges = int(cfg.num_nodes * cfg.avg_out_degree)
    attempts = 0
    created = 0
    max_attempts = target_edges * 20
    order = list(range(cfg.num_nodes))
    cursor = 0
    while created < target_edges and attempts < max_attempts:
        attempts += 1
        if cursor == 0:
            rng.shuffle(order)
        follower = order[cursor]
        cursor = (cursor + 1) % cfg.num_nodes
        followee = pick_target(follower)
        if followee is None:
            continue
        if add_follow(follower, followee):
            created += 1
            if rng.random() < cfg.reciprocity:
                if add_follow(followee, follower):
                    created += 1

    return TwitterDataset(graph=graph, interests=interests, config=cfg,
                          seed=resolved_seed)
