"""Synthetic dataset generators standing in for the paper's crawls."""

from .text import TOPIC_KEYWORDS, generate_tweet, generate_tweets
from .twitter import TwitterConfig, TwitterDataset, generate_twitter_dataset, generate_twitter_graph
from .dblp import DblpConfig, DblpDataset, generate_dblp_dataset, generate_dblp_graph
from .streaming import StreamStats, generate_twitter_snapshot_stream, read_stream_stats

__all__ = [
    "TOPIC_KEYWORDS",
    "generate_tweet",
    "generate_tweets",
    "TwitterConfig",
    "TwitterDataset",
    "generate_twitter_graph",
    "generate_twitter_dataset",
    "DblpConfig",
    "DblpDataset",
    "generate_dblp_graph",
    "generate_dblp_dataset",
    "StreamStats",
    "generate_twitter_snapshot_stream",
    "read_stream_stats",
]
