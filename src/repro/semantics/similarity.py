"""Semantic similarity measures on a topic taxonomy.

The paper uses Wu & Palmer (1994) on WordNet; Section 3.2 notes that
Resnik or DISCO could substitute. We provide Wu–Palmer as the default
plus path-based and Lin (information-content) measures so the choice can
be ablated, all computed on the same IS-A tree.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional

from .taxonomy import ROOT, Taxonomy


def wu_palmer_similarity(taxonomy: Taxonomy, first: str, second: str) -> float:
    """Wu–Palmer similarity: ``2·depth(lcs) / (depth(a) + depth(b))``.

    Ranges over ``[0, 1]``; equals 1 iff the topics coincide, and 0 only
    when the lowest common subsumer is the (depth-0) root.
    """
    if first == second:
        return 1.0
    lcs = taxonomy.lowest_common_subsumer(first, second)
    lcs_depth = taxonomy.depth(lcs)
    if lcs_depth == 0:
        return 0.0
    return (2.0 * lcs_depth) / (taxonomy.depth(first) + taxonomy.depth(second))


def path_similarity(taxonomy: Taxonomy, first: str, second: str) -> float:
    """Inverse shortest-path similarity ``1 / (1 + hops(a, b))``.

    Hops are counted through the lowest common subsumer. Equals 1 iff
    the topics coincide.
    """
    if first == second:
        return 1.0
    lcs = taxonomy.lowest_common_subsumer(first, second)
    hops = ((taxonomy.depth(first) - taxonomy.depth(lcs))
            + (taxonomy.depth(second) - taxonomy.depth(lcs)))
    return 1.0 / (1.0 + hops)


def uniform_information_content(taxonomy: Taxonomy) -> Mapping[str, float]:
    """Synthetic information content from subtree sizes.

    Real IC needs corpus frequencies; lacking a corpus, we use the
    classical structural surrogate ``IC(c) = -log(|subtree(c)| / |T|)``,
    which preserves the ordering Lin similarity needs (specific topics
    are more informative than broad ones).
    """
    total = len(taxonomy) + 1  # + root
    content = {ROOT: 0.0}
    for topic in taxonomy:
        content[topic] = -math.log(len(taxonomy.subtree(topic)) / total)
    return content


def lin_similarity(taxonomy: Taxonomy, first: str, second: str,
                   information_content: Optional[Mapping[str, float]] = None,
                   ) -> float:
    """Lin similarity ``2·IC(lcs) / (IC(a) + IC(b))`` with structural IC."""
    if first == second:
        return 1.0
    ic = (information_content if information_content is not None
          else uniform_information_content(taxonomy))
    lcs = taxonomy.lowest_common_subsumer(first, second)
    denominator = ic[first] + ic[second]
    if denominator <= 0.0:
        return 0.0
    return max(0.0, (2.0 * ic[lcs]) / denominator)


#: Registry used by the CLI / config to pick a measure by name.
MEASURES = {
    "wu-palmer": wu_palmer_similarity,
    "path": path_similarity,
    "lin": lin_similarity,
}
