"""IS-A topic taxonomy.

The paper computes Wu–Palmer similarity on WordNet. WordNet is not
redistributable here, so we implement the measure on an explicit IS-A
tree over the topic vocabulary — exactly what Wu–Palmer consumes (the
18 topics are nouns with one sense each, so this is faithful: the paper
itself notes "we have a small number of topics ... without synonymy
issues").
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Tuple

from ..errors import TaxonomyError, UnknownTopicError

#: Name of the implicit root concept of every taxonomy.
ROOT = "<root>"


class Taxonomy:
    """A rooted IS-A tree of topic concepts.

    Built from a ``child -> parent`` mapping; the root is implicit and
    named :data:`ROOT`. Leaves and internal concepts are both valid
    topics.

    Example:
        >>> tax = Taxonomy({"sports": None, "football": "sports"})
        >>> tax.depth("football")
        2
        >>> tax.lowest_common_subsumer("football", "sports")
        'sports'
    """

    def __init__(self, parents: Mapping[str, Optional[str]]) -> None:
        self._parent: Dict[str, str] = {}
        for child, parent in parents.items():
            if child == ROOT:
                raise TaxonomyError(f"{ROOT!r} is reserved for the root")
            self._parent[child] = ROOT if parent is None else parent
        for child, parent in self._parent.items():
            if parent != ROOT and parent not in self._parent:
                raise TaxonomyError(
                    f"parent {parent!r} of {child!r} is not a declared topic")
        self._depth: Dict[str, int] = {ROOT: 0}
        for topic in self._parent:
            self._compute_depth(topic, trail=set())

    def _compute_depth(self, topic: str, trail: set) -> int:
        if topic in self._depth:
            return self._depth[topic]
        if topic in trail:
            raise TaxonomyError(f"cycle in taxonomy at {topic!r}")
        trail.add(topic)
        depth = self._compute_depth(self._parent[topic], trail) + 1
        self._depth[topic] = depth
        return depth

    # ------------------------------------------------------------------
    def __contains__(self, topic: str) -> bool:
        return topic in self._parent

    def __iter__(self) -> Iterator[str]:
        return iter(self._parent)

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def topics(self) -> FrozenSet[str]:
        """Every declared topic (the root concept is excluded)."""
        return frozenset(self._parent)

    def parent(self, topic: str) -> str:
        """Immediate hypernym (:data:`ROOT` for top-level topics)."""
        self._require(topic)
        return self._parent[topic]

    def depth(self, topic: str) -> int:
        """Node depth counting the root as 0 (so top-level topics are 1)."""
        if topic == ROOT:
            return 0
        self._require(topic)
        return self._depth[topic]

    def ancestors(self, topic: str) -> Tuple[str, ...]:
        """Chain of hypernyms from *topic* (inclusive) up to the root."""
        self._require(topic)
        chain = [topic]
        while chain[-1] != ROOT:
            chain.append(self._parent.get(chain[-1], ROOT))
        return tuple(chain)

    def lowest_common_subsumer(self, first: str, second: str) -> str:
        """Deepest concept subsuming both topics (possibly the root)."""
        first_ancestors = set(self.ancestors(first))
        for candidate in self.ancestors(second):
            if candidate in first_ancestors:
                return candidate
        return ROOT

    def children(self, topic: str) -> FrozenSet[str]:
        """Immediate hyponyms of *topic* (or of the root)."""
        if topic != ROOT:
            self._require(topic)
        return frozenset(
            child for child, parent in self._parent.items() if parent == topic)

    def leaves(self) -> FrozenSet[str]:
        """Topics with no hyponyms."""
        parents = set(self._parent.values())
        return frozenset(t for t in self._parent if t not in parents)

    def subtree(self, topic: str) -> FrozenSet[str]:
        """*topic* and every concept below it."""
        self._require(topic)
        result = {topic}
        frontier = [topic]
        while frontier:
            node = frontier.pop()
            for child in self.children(node):
                if child not in result:
                    result.add(child)
                    frontier.append(child)
        return frozenset(result)

    def _require(self, topic: str) -> None:
        if topic not in self._parent:
            raise UnknownTopicError(topic)

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[str, str]]) -> "Taxonomy":
        """Build from ``(parent, child)`` pairs; parents without a pair
        of their own become top-level topics."""
        parents: Dict[str, Optional[str]] = {}
        for parent, child in edges:
            parents.setdefault(parent, None)
            parents[child] = parent
        return cls(parents)
