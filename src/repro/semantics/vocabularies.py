"""Built-in topic vocabularies and their IS-A taxonomies.

Two vocabularies mirror the paper's datasets:

- :data:`WEB_TOPICS` — 18 labeling topics standing in for the "18
  standard topics for Web sites/documents proposed by OpenCalais"
  (Section 5.1). The names follow the ones the paper actually displays
  in its figures and examples (``technology``, ``bigdata``, ``social``,
  ``leisure``, ``politics``, ``health``, ...).
- :data:`DBLP_AREAS` — 18 computer-science areas standing in for the
  Singapore conference classification used for the DBLP dataset.

Each taxonomy adds a few unlabeled intermediate concepts (``society``,
``stem``, ...) so that Wu–Palmer has meaningful depth structure, exactly
the role WordNet's hypernym chains play in the paper.
"""

from __future__ import annotations

from .taxonomy import Taxonomy

#: The 18 labeling topics of the Twitter-like vocabulary.
WEB_TOPICS: tuple[str, ...] = (
    "social", "politics", "law", "religion", "education",
    "leisure", "sports", "entertainment", "travel", "food",
    "health", "business", "finance",
    "science", "environment", "weather",
    "technology", "bigdata",
)

_WEB_PARENTS: dict[str, str | None] = {
    # intermediate concepts (taxonomy-only, never used as labels)
    "society": None,
    "lifestyle": None,
    "economy": None,
    "stem": None,
    # society branch
    "social": "society",
    "politics": "society",
    "law": "society",
    "religion": "society",
    "education": "society",
    # lifestyle branch
    "leisure": "lifestyle",
    "sports": "leisure",
    "entertainment": "leisure",
    "travel": "leisure",
    "food": "leisure",
    "health": "lifestyle",
    # economy branch
    "business": "economy",
    "finance": "economy",
    # STEM branch
    "science": "stem",
    "environment": "science",
    "weather": "science",
    "technology": "stem",
    "bigdata": "technology",
}

#: The 18 labeling areas of the DBLP-like vocabulary.
DBLP_AREAS: tuple[str, ...] = (
    "databases", "data-mining", "information-retrieval",
    "artificial-intelligence", "machine-learning", "nlp", "vision",
    "networks", "distributed-systems", "operating-systems", "security",
    "software-engineering", "programming-languages",
    "theory", "algorithms",
    "graphics", "hci", "bioinformatics",
)

_DBLP_PARENTS: dict[str, str | None] = {
    # intermediate concepts
    "data-management": None,
    "intelligence": None,
    "systems": None,
    "software": None,
    "foundations": None,
    "interaction": None,
    # data branch
    "databases": "data-management",
    "data-mining": "data-management",
    "information-retrieval": "data-management",
    # AI branch
    "artificial-intelligence": "intelligence",
    "machine-learning": "artificial-intelligence",
    "nlp": "artificial-intelligence",
    "vision": "artificial-intelligence",
    # systems branch
    "networks": "systems",
    "distributed-systems": "systems",
    "operating-systems": "systems",
    "security": "systems",
    # software branch
    "software-engineering": "software",
    "programming-languages": "software",
    # theory branch
    "theory": "foundations",
    "algorithms": "foundations",
    # interaction / applications branch
    "graphics": "interaction",
    "hci": "interaction",
    "bioinformatics": "intelligence",
}


def web_taxonomy() -> Taxonomy:
    """The Twitter-experiment taxonomy over :data:`WEB_TOPICS`."""
    return Taxonomy(_WEB_PARENTS)


def dblp_taxonomy() -> Taxonomy:
    """The DBLP-experiment taxonomy over :data:`DBLP_AREAS`."""
    return Taxonomy(_DBLP_PARENTS)
