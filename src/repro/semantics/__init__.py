"""Topic vocabulary, taxonomy, and semantic similarity (Section 3.2)."""

from .taxonomy import Taxonomy
from .similarity import lin_similarity, path_similarity, wu_palmer_similarity
from .matrix import SimilarityMatrix
from .vocabularies import DBLP_AREAS, WEB_TOPICS, dblp_taxonomy, web_taxonomy

__all__ = [
    "Taxonomy",
    "wu_palmer_similarity",
    "path_similarity",
    "lin_similarity",
    "SimilarityMatrix",
    "WEB_TOPICS",
    "DBLP_AREAS",
    "web_taxonomy",
    "dblp_taxonomy",
]
