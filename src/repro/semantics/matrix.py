"""Precomputed triangular similarity matrix.

Section 5.2: "topic similarities given by the Wu and Palmer similarity
scores are pre-computed and stored in memory as a triangular similarity
matrix" (2.5 KB for 18 topics). This mirrors that: one float per
unordered topic pair, packed in a flat list, O(1) lookups, and a
``storage_bytes`` accessor so the benchmark can report the footprint.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Sequence, Tuple

from ..errors import UnknownTopicError
from .similarity import wu_palmer_similarity
from .taxonomy import Taxonomy

SimilarityFn = Callable[[Taxonomy, str, str], float]


class SimilarityMatrix:
    """Symmetric topic-similarity lookup table.

    Example:
        >>> from repro.semantics import web_taxonomy
        >>> matrix = SimilarityMatrix.from_taxonomy(web_taxonomy())
        >>> matrix.similarity("technology", "technology")
        1.0
    """

    def __init__(self, topics: Sequence[str],
                 values: Sequence[float]) -> None:
        self._topics: Tuple[str, ...] = tuple(topics)
        self._index: Dict[str, int] = {
            topic: i for i, topic in enumerate(self._topics)}
        if len(self._index) != len(self._topics):
            raise ValueError("duplicate topics in similarity matrix")
        expected = len(self._topics) * (len(self._topics) + 1) // 2
        if len(values) != expected:
            raise ValueError(
                f"expected {expected} packed values, got {len(values)}")
        self._values: Tuple[float, ...] = tuple(values)

    @classmethod
    def from_taxonomy(cls, taxonomy: Taxonomy,
                      measure: SimilarityFn = wu_palmer_similarity,
                      ) -> "SimilarityMatrix":
        """Precompute every pair under *measure* (default Wu–Palmer)."""
        topics = sorted(taxonomy.topics)
        values = []
        for i, first in enumerate(topics):
            for second in topics[: i + 1]:
                values.append(measure(taxonomy, first, second))
        return cls(topics, values)

    def _packed_index(self, i: int, j: int) -> int:
        if i < j:
            i, j = j, i
        return i * (i + 1) // 2 + j

    @property
    def topics(self) -> Tuple[str, ...]:
        """Topic tuple in matrix order."""
        return self._topics

    def __contains__(self, topic: str) -> bool:
        return topic in self._index

    def similarity(self, first: str, second: str) -> float:
        """Similarity of an (unordered) topic pair.

        Raises:
            UnknownTopicError: if either topic is not in the matrix.
        """
        try:
            i = self._index[first]
            j = self._index[second]
        except KeyError as exc:
            raise UnknownTopicError(str(exc.args[0])) from None
        return self._values[self._packed_index(i, j)]

    def max_similarity(self, topics: Iterable[str], target: str) -> float:
        """``max_{t' ∈ topics} sim(t', target)`` — Equation 3's inner max.

        Unknown topics in *topics* contribute 0 (an unlabeled edge has
        no semantic weight) rather than raising, since real labeling
        pipelines leave residual unlabeled edges.
        """
        if target not in self._index:
            raise UnknownTopicError(target)
        best = 0.0
        for topic in topics:
            index = self._index.get(topic)
            if index is None:
                continue
            value = self._values[self._packed_index(index, self._index[target])]
            if value > best:
                best = value
                if best >= 1.0:
                    break
        return best

    @property
    def storage_bytes(self) -> int:
        """Footprint of the packed triangle at 8 bytes per entry."""
        return 8 * len(self._values)

    def __repr__(self) -> str:
        return (f"SimilarityMatrix(topics={len(self._topics)}, "
                f"bytes={self.storage_bytes})")
