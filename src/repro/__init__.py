"""repro — reproduction of *Finding Users of Interest in Micro-blogging
Systems* (Constantin, Dahimene, Grossetti, du Mouza; EDBT 2016).

The package implements the paper's Tr recommendation score (topology +
edge semantics + topical authority), its exact power-iteration
computation, the landmark-based approximate computation that makes it
scale, the Katz and TwitterRank baselines, synthetic Twitter-like and
DBLP-like dataset generators, the topic-extraction pipeline, and the
full evaluation harness behind every table and figure of the paper.

Quickstart::

    from repro import Recommender, SimilarityMatrix, web_taxonomy
    from repro.datasets import generate_twitter_graph

    graph = generate_twitter_graph(num_nodes=2000, seed=7)
    rec = Recommender(graph, SimilarityMatrix.from_taxonomy(web_taxonomy()))
    for suggestion in rec.recommend(user=0, query="technology", top_n=5):
        print(suggestion.node, suggestion.score)

Every scorer (exact, landmark-approximate, TwitterRank, SALSA, the
distributed service, and the sharded serving tier) satisfies the
:class:`repro.api.Recommender` protocol and returns one
:class:`repro.api.RecommendationResponse` shape.
"""

from .api import (
    RecommendationRequest,
    RecommendationResponse,
    response_from_pairs,
)
from .config import (
    EvaluationParams,
    LandmarkParams,
    PAPER_ALPHA,
    PAPER_BETA,
    ScoreParams,
)
from .core import (
    AuthorityIndex,
    Recommendation,
    Recommender,
    katz_scores,
    matrix_scores,
    single_source_scores,
)
from .errors import ReproError
from .graph import LabeledSocialGraph, graph_from_edges
from .semantics import (
    SimilarityMatrix,
    Taxonomy,
    dblp_taxonomy,
    web_taxonomy,
    wu_palmer_similarity,
)

__version__ = "1.0.0"

__all__ = [
    "ScoreParams",
    "LandmarkParams",
    "EvaluationParams",
    "PAPER_ALPHA",
    "PAPER_BETA",
    "Recommender",
    "Recommendation",
    "RecommendationRequest",
    "RecommendationResponse",
    "response_from_pairs",
    "AuthorityIndex",
    "single_source_scores",
    "matrix_scores",
    "katz_scores",
    "LabeledSocialGraph",
    "graph_from_edges",
    "SimilarityMatrix",
    "Taxonomy",
    "web_taxonomy",
    "dblp_taxonomy",
    "wu_palmer_similarity",
    "ReproError",
    "__version__",
]
