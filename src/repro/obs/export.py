"""Render an observability snapshot as JSON or a text report.

The JSON form (``BENCH_ci.json``) is the artifact the CI bench-smoke
job uploads and the regression gate consumes; see
``docs/OBSERVABILITY.md`` for the schema and how to read it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from .clock import format_duration

#: Schema version of the bench report JSON.
REPORT_VERSION = 1


def build_report(snapshot: Dict[str, Any],
                 workload: Optional[Dict[str, Any]] = None,
                 latency: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Wrap a runtime snapshot into the versioned bench-report form.

    ``latency`` maps stage names to per-query latency summaries
    (``{count, p50, p99, mean, qps}`` — see
    :func:`repro.obs.workload._latency_summary`); the CI gate holds
    p50/p99 against the baseline.
    """
    return {
        "version": REPORT_VERSION,
        "workload": dict(workload) if workload is not None else {},
        "stages": snapshot.get("stages", {}),
        "counters": snapshot.get("counters", {}),
        "gauges": snapshot.get("gauges", {}),
        "histograms": snapshot.get("histograms", {}),
        "latency": dict(latency) if latency is not None else {},
    }


def write_json(report: Dict[str, Any], path: Union[str, Path]) -> int:
    """Write *report* to *path*; returns the number of bytes written."""
    blob = json.dumps(report, indent=2, sort_keys=True) + "\n"
    target = Path(path)
    target.write_text(blob, encoding="utf-8")
    return len(blob)


def read_json(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a report written by :func:`write_json`.

    Raises:
        ValueError: if the file is not a bench report (no ``version``).
    """
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "version" not in data:
        raise ValueError(f"{path} is not a bench report (missing 'version')")
    return data


def render_text(report: Dict[str, Any]) -> str:
    """Human-readable stage/counter report (the ``python -m repro.obs``
    default output)."""
    lines = []
    workload = report.get("workload") or {}
    if workload:
        knobs = " ".join(f"{key}={workload[key]}"
                         for key in sorted(workload))
        lines.append(f"workload: {knobs}")
        lines.append("")

    stages = report.get("stages") or {}
    if stages:
        name_width = max(len(name) for name in stages)
        lines.append(f"{'stage':<{name_width}}  {'calls':>7} "
                     f"{'total':>10} {'mean':>10} {'max':>10}")
        for name, entry in sorted(
                stages.items(), key=lambda kv: -kv[1]["seconds"]):
            lines.append(
                f"{name:<{name_width}}  {int(entry['calls']):>7} "
                f"{format_duration(entry['seconds']):>10} "
                f"{format_duration(entry['mean']):>10} "
                f"{format_duration(entry['max']):>10}")
    else:
        lines.append("no spans recorded (is the obs layer enabled?)")

    counters = report.get("counters") or {}
    if counters:
        lines.append("")
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name} = {counters[name]:g}")

    gauges = report.get("gauges") or {}
    if gauges:
        lines.append("")
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name} = {gauges[name]:g}")

    latency = report.get("latency") or {}
    if latency:
        lines.append("")
        name_width = max(len(name) for name in latency)
        lines.append(f"{'latency':<{name_width}}  {'count':>7} "
                     f"{'p50':>10} {'p99':>10} {'mean':>10} {'qps':>10}")
        for name in sorted(latency):
            entry = latency[name]
            lines.append(
                f"{name:<{name_width}}  {int(entry['count']):>7} "
                f"{format_duration(entry['p50']):>10} "
                f"{format_duration(entry['p99']):>10} "
                f"{format_duration(entry['mean']):>10} "
                f"{entry['qps']:>10.0f}")

    histograms = report.get("histograms") or {}
    if histograms:
        lines.append("")
        lines.append("histograms:")
        for name in sorted(histograms):
            hist = histograms[name]
            mean = hist["sum"] / hist["count"] if hist["count"] else 0.0
            lines.append(f"  {name}: n={hist['count']} "
                         f"mean={format_duration(max(mean, 0.0))}")
    return "\n".join(lines)


def render_markdown(report: Dict[str, Any],
                    chaos: Optional[Sequence[Dict[str, Any]]] = None) -> str:
    """GitHub-flavoured gate summary for ``$GITHUB_STEP_SUMMARY``.

    Tables the bench stages, the per-engine query-latency p50/p99, the
    rollover gauges, and (when *chaos* verdict dicts are passed — the
    JSON the chaos-matrix cells upload) a per-cell chaos verdict row,
    so a reviewer reads the whole gate without downloading artifacts.
    """
    lines: List[str] = ["## Bench gate summary", ""]
    workload = report.get("workload") or {}
    if workload:
        knobs = " · ".join(f"{key}={workload[key]}"
                           for key in sorted(workload))
        lines += [f"_Workload: {knobs}_", ""]

    stages = report.get("stages") or {}
    if stages:
        lines += [
            "### Stages",
            "",
            "| stage | calls | total | mean | max |",
            "| --- | ---: | ---: | ---: | ---: |",
        ]
        for name, entry in sorted(
                stages.items(), key=lambda kv: -kv[1]["seconds"]):
            lines.append(
                f"| `{name}` | {int(entry['calls'])} "
                f"| {format_duration(entry['seconds'])} "
                f"| {format_duration(entry['mean'])} "
                f"| {format_duration(entry['max'])} |")
        lines.append("")

    latency = report.get("latency") or {}
    if latency:
        lines += [
            "### Query latency",
            "",
            "| engine | count | p50 | p99 | mean | qps |",
            "| --- | ---: | ---: | ---: | ---: | ---: |",
        ]
        for name in sorted(latency):
            entry = latency[name]
            lines.append(
                f"| `{name}` | {int(entry['count'])} "
                f"| {format_duration(entry['p50'])} "
                f"| {format_duration(entry['p99'])} "
                f"| {format_duration(entry['mean'])} "
                f"| {entry['qps']:.0f} |")
        lines.append("")

    gauges = report.get("gauges") or {}
    rollover = {name: value for name, value in sorted(gauges.items())
                if name.startswith("workload.rollover.")}
    if rollover:
        lines += ["### Rollover", ""]
        for name, value in rollover.items():
            lines.append(f"- `{name}` = {value:g}")
        lines.append("")

    counters = report.get("counters") or {}
    ingestion = {name: value for name, value in sorted(gauges.items())
                 if name.startswith("workload.ingest.")}
    ingestion.update(
        (name, value) for name, value in sorted(counters.items())
        if name.startswith("ingest."))
    if ingestion:
        lines += ["### Ingestion", ""]
        for name, value in sorted(ingestion.items()):
            lines.append(f"- `{name}` = {value:g}")
        lines.append("")

    if chaos is not None:
        lines += [
            "### Chaos verdicts",
            "",
            "| cell | det | engines | stale | degraded | verdict |",
            "| --- | --- | --- | ---: | ---: | --- |",
        ]
        for verdict in chaos:
            mark = "✅" if verdict.get("passed") else "❌"
            lines.append(
                f"| `{verdict.get('cell', '?')}` "
                f"| {'yes' if verdict.get('deterministic') else 'NO'} "
                f"| {'agree' if verdict.get('engines_agree') else 'DISAGREE'} "
                f"| {verdict.get('stale_errors', '?')} "
                f"| {verdict.get('degraded_responses', '?')} "
                f"| {mark} |")
        lines.append("")
    return "\n".join(lines)
