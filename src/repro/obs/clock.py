"""Wall-clock primitives of the observability layer.

This module is the **only** place in ``src/`` that is allowed to call
``time.perf_counter`` directly (rule R7 of :mod:`repro.analysis`
enforces that). Everything else times itself through
:class:`Stopwatch`, :func:`repro.obs.runtime.span`, or
:func:`repro.obs.runtime.timed_span`, so stage timings stay visible to
the metrics registry and the CI bench gate.
"""

from __future__ import annotations

import time
from typing import List, Optional


def now() -> float:
    """Monotonic wall-clock reading (seconds, arbitrary epoch)."""
    return time.perf_counter()


class Stopwatch:
    """Accumulating stopwatch with context-manager support.

    Example:
        >>> watch = Stopwatch()
        >>> with watch:
        ...     _ = sum(range(10))
        >>> watch.elapsed >= 0.0
        True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self.laps: List[float] = []
        self._started: Optional[float] = None

    def start(self) -> "Stopwatch":
        """Begin a lap; returns self for chaining."""
        if self._started is not None:
            raise RuntimeError("stopwatch already running")
        self._started = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop and return the duration of the lap just finished."""
        if self._started is None:
            raise RuntimeError("stopwatch is not running")
        lap = time.perf_counter() - self._started
        self._started = None
        self.elapsed += lap
        self.laps.append(lap)
        return lap

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def mean_lap(self) -> float:
        """Average lap duration (0.0 when no lap completed)."""
        if not self.laps:
            return 0.0
        return self.elapsed / len(self.laps)


def format_duration(seconds: float) -> str:
    """Render a duration with a unit that keeps 2-4 significant digits."""
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    if seconds < 120.0:
        return f"{seconds:.2f}s"
    minutes, rem = divmod(seconds, 60.0)
    return f"{int(minutes)}m{rem:04.1f}s"
