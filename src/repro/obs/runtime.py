"""The global observability switch and its no-op fast path.

Instrumented code throughout the library calls the module-level
helpers here (:func:`span`, :func:`timed_span`, :func:`count`,
:func:`gauge`, :func:`observe`). By default the layer is **disabled**:
:func:`span` returns the shared :data:`NOOP_SPAN` singleton (no
allocation, no clock read) and the metric helpers return without
touching a registry, so the hot paths pay one function call and a
truthiness check — nothing measurable (``tests/obs/test_noop.py``
holds this to zero net allocations).

Enable it for a run with::

    from repro import obs
    obs.enable()          # fresh tracer + registry
    ...workload...
    report = obs.snapshot()

or from the command line with ``repro --obs ...`` /
``REPRO_OBS=1`` in the environment.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional, Sequence, Union

from .clock import now
from .metrics import MetricsRegistry
from .trace import Span, Tracer


class _NoopSpan:
    """Falsy, stateless stand-in for :class:`Span` when obs is off.

    A single shared instance is returned from every disabled
    :func:`span` call; entering, exiting, and :meth:`set` do nothing.
    """

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    @property
    def elapsed(self) -> float:
        return 0.0


#: The shared disabled-mode span. Identity-comparable: callers may
#: check ``span_obj is NOOP_SPAN``; hot paths should just rely on its
#: falsiness (``if span_obj: span_obj.set(...)``).
NOOP_SPAN = _NoopSpan()


class _TimedOnly:
    """Falsy timer for call sites whose elapsed time is *data*.

    ``LandmarkIndex.build`` must fill ``build_seconds`` (Table 5)
    whether or not observability is enabled, so :func:`timed_span`
    hands out this minimal timer in disabled mode: it reads the clock
    but records nothing anywhere.
    """

    __slots__ = ("_start", "elapsed")

    def __init__(self) -> None:
        self._start = 0.0
        self.elapsed = 0.0

    def __bool__(self) -> bool:
        return False

    def __enter__(self) -> "_TimedOnly":
        self._start = now()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = now() - self._start

    def set(self, **attrs: Any) -> "_TimedOnly":
        return self


#: Anything the instrumentation helpers can hand back.
SpanLike = Union[Span, _NoopSpan, _TimedOnly]


class ObsRuntime:  # repro: ignore[W4] -- singleton built by get_runtime(); exported so callers can type the runtime handle
    """One enable/disable switch plus its tracer and registry."""

    def __init__(self) -> None:
        self.enabled = False
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()

    def reset(self) -> None:
        self.tracer.reset()
        self.metrics.reset()


_RUNTIME = ObsRuntime()


def get_runtime() -> ObsRuntime:
    """The process-wide runtime (mostly for tests)."""
    return _RUNTIME


def is_enabled() -> bool:
    """Whether instrumentation currently records anything."""
    return _RUNTIME.enabled


def enable(reset: bool = True) -> ObsRuntime:
    """Turn the layer on; by default with a fresh tracer and registry."""
    if reset:
        _RUNTIME.reset()
    _RUNTIME.enabled = True
    return _RUNTIME


def disable() -> None:
    """Turn the layer off (recorded spans/metrics are kept)."""
    _RUNTIME.enabled = False


def span(name: str, **attrs: Any) -> SpanLike:
    """A recording span when enabled, :data:`NOOP_SPAN` otherwise."""
    if not _RUNTIME.enabled:
        return NOOP_SPAN
    return _RUNTIME.tracer.span(name, **attrs)


def timed_span(name: str, **attrs: Any) -> SpanLike:
    """Like :func:`span`, but always measures ``elapsed``.

    Use where the wall time is a return value (per-landmark build
    seconds), not just telemetry.
    """
    if not _RUNTIME.enabled:
        return _TimedOnly()
    return _RUNTIME.tracer.span(name, **attrs)


def count(name: str, amount: float = 1) -> None:
    """Increment counter *name* (no-op when disabled)."""
    if _RUNTIME.enabled:
        _RUNTIME.metrics.counter(name).inc(amount)


def gauge(name: str, value: float) -> None:
    """Set gauge *name* (no-op when disabled)."""
    if _RUNTIME.enabled:
        _RUNTIME.metrics.gauge(name).set(value)


def observe(name: str, value: float,
            boundaries: Optional[Sequence[float]] = None) -> None:
    """Record *value* into histogram *name* (no-op when disabled)."""
    if _RUNTIME.enabled:
        _RUNTIME.metrics.histogram(name, boundaries).observe(value)


def snapshot() -> Dict[str, Any]:
    """Stages + metrics of everything recorded since :func:`enable`."""
    metric_view = _RUNTIME.metrics.snapshot()
    return {
        "stages": _RUNTIME.tracer.aggregate(),
        "counters": metric_view["counters"],
        "gauges": metric_view["gauges"],
        "histograms": metric_view["histograms"],
    }


def span_trees() -> list:
    """Finished root spans as JSON-ready dicts (see :meth:`Span.to_dict`)."""
    return [root.to_dict() for root in _RUNTIME.tracer.finished]


# Opt in from the environment: REPRO_OBS=1 python -m ... instruments
# any entry point without code changes.
if os.environ.get("REPRO_OBS", "").strip().lower() in {"1", "true", "yes", "on"}:
    enable()
