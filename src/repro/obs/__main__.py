"""``python -m repro.obs`` — run, render, and gate bench reports.

Subcommands::

    python -m repro.obs                      # run smoke workload, text report
    python -m repro.obs run --json BENCH_ci.json
    python -m repro.obs report BENCH_ci.json
    python -m repro.obs check BENCH_ci.json benchmarks/baseline_ci.json
    python -m repro.obs summary BENCH_ci.json --chaos 'verdicts/*.json'

``run`` executes the pinned CI smoke workload (see
:mod:`repro.obs.workload`) with the observability layer enabled and
prints per-stage timings; ``--json`` additionally writes the report
consumed by the CI gate. ``check`` is the gate itself: exit 1 on a
gross stage-time regression against the checked-in baseline.
``summary`` renders the markdown gate summary CI appends to
``$GITHUB_STEP_SUMMARY`` (optionally folding in chaos-cell verdict
JSONs).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .export import read_json, render_markdown, render_text, write_json
from .gate import (
    DEFAULT_FACTOR,
    DEFAULT_MIN_LATENCY_SECONDS,
    DEFAULT_MIN_SECONDS,
    check_regression,
    describe_pass,
)
from .workload import SMOKE_DEFAULTS, run_smoke


def _cmd_run(args: argparse.Namespace) -> int:
    report = run_smoke(nodes=args.nodes, seed=args.seed,
                       landmarks=args.landmarks, top_n=args.top_n,
                       queries=args.queries, engine=args.engine,
                       query_reps=args.query_reps)
    print(render_text(report))
    if args.json:
        written = write_json(report, args.json)
        print(f"\nwrote {args.json} ({written} bytes)")
    if args.latency_json:
        artifact = {
            "version": report["version"],
            "workload": report["workload"],
            "latency": report.get("latency", {}),
        }
        written = write_json(artifact, args.latency_json)
        print(f"wrote {args.latency_json} ({written} bytes)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    print(render_text(read_json(args.report)))
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    import glob
    import json

    report = read_json(args.report)
    chaos = None
    if args.chaos:
        chaos = []
        for pattern in args.chaos:
            for path in sorted(glob.glob(pattern)):
                loaded = json.loads(
                    open(path, encoding="utf-8").read())
                chaos.extend(loaded if isinstance(loaded, list)
                             else [loaded])
    markdown = render_markdown(report, chaos=chaos)
    if args.out:
        with open(args.out, "a", encoding="utf-8") as handle:
            handle.write(markdown)
    else:
        print(markdown)
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    current = read_json(args.report)
    baseline = read_json(args.baseline)
    problems = check_regression(current, baseline, factor=args.factor,
                                min_seconds=args.min_seconds,
                                min_latency_seconds=args.min_latency_seconds)
    if problems:
        for problem in problems:
            print(f"REGRESSION: {problem}", file=sys.stderr)
        print(f"{len(problems)} gate violation(s) against {args.baseline}",
              file=sys.stderr)
        return 1
    print(describe_pass(current, baseline))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Argparse tree for the obs CLI."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="observability reports for the Tr pipeline")
    sub = parser.add_subparsers(dest="command")

    run = sub.add_parser(
        "run", help="run the pinned smoke workload with obs enabled")
    run.add_argument("--nodes", type=int, default=SMOKE_DEFAULTS["nodes"])
    run.add_argument("--seed", type=int, default=SMOKE_DEFAULTS["seed"])
    run.add_argument("--landmarks", type=int,
                     default=SMOKE_DEFAULTS["landmarks"])
    run.add_argument("--top-n", type=int, dest="top_n",
                     default=SMOKE_DEFAULTS["top_n"])
    run.add_argument("--queries", type=int,
                     default=SMOKE_DEFAULTS["queries"])
    run.add_argument("--engine", choices=("auto", "dict", "sparse"),
                     default=SMOKE_DEFAULTS["engine"])
    run.add_argument("--query-reps", type=int, dest="query_reps",
                     default=SMOKE_DEFAULTS["query_reps"],
                     help="timed repetitions of each query per engine "
                          "in the latency stage (default %(default)s)")
    run.add_argument("--json", default="",
                     help="also write the bench report to this path")
    run.add_argument("--latency-json", dest="latency_json", default="",
                     help="also write just the workload + latency "
                          "section to this path (the CI latency "
                          "artifact)")
    run.set_defaults(handler=_cmd_run)

    report = sub.add_parser("report", help="render an existing bench report")
    report.add_argument("report")
    report.set_defaults(handler=_cmd_report)

    summary = sub.add_parser(
        "summary", help="render the markdown gate summary "
                        "(for $GITHUB_STEP_SUMMARY)")
    summary.add_argument("report")
    summary.add_argument("--chaos", action="append", metavar="GLOB",
                         help="chaos verdict JSON(s) to fold in; "
                              "repeatable, glob patterns allowed")
    summary.add_argument("--out", default="",
                         help="append the markdown to this file instead "
                              "of stdout")
    summary.set_defaults(handler=_cmd_summary)

    check = sub.add_parser(
        "check", help="fail on gross stage-time regressions vs a baseline")
    check.add_argument("report")
    check.add_argument("baseline")
    check.add_argument("--factor", type=float, default=DEFAULT_FACTOR,
                       help="budget multiplier over the baseline "
                            "(default %(default)s)")
    check.add_argument("--min-seconds", type=float, dest="min_seconds",
                       default=DEFAULT_MIN_SECONDS,
                       help="noise floor applied to baseline stage times "
                            "(default %(default)s)")
    check.add_argument("--min-latency-seconds", type=float,
                       dest="min_latency_seconds",
                       default=DEFAULT_MIN_LATENCY_SECONDS,
                       help="noise floor applied to baseline query "
                            "latency p50/p99 (default %(default)s)")
    check.set_defaults(handler=_cmd_check)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; a bare invocation runs the smoke workload."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        args = parser.parse_args(["run"])
    return int(args.handler(args))


if __name__ == "__main__":
    sys.exit(main())
