"""The pinned CI smoke workload.

A small, fully-seeded end-to-end run that exercises every instrumented
stage — snapshot construction, exact power iteration, landmark
preprocessing (Algorithm 1), the landmark-accelerated query path
(Algorithm 2), sharded serving, a replicated zero-downtime epoch
rollover under churn, the storage backends, and the event-stream
ingest path (overlay + budgeted compaction) — with the
observability layer enabled, and returns the bench report that
``python -m repro.obs run --json BENCH_ci.json`` writes for CI.

Everything is deterministic except the timings: same seed, same
machine → identical counters and stage call counts, so PR-over-PR
diffs of ``BENCH_ci.json`` isolate *time* changes from *work* changes.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List

from . import runtime as rt
from .export import build_report

#: Knobs of the pinned CI workload. Changing any of these invalidates
#: ``benchmarks/baseline_ci.json`` — regenerate it in the same commit
#: (see docs/OBSERVABILITY.md).
SMOKE_DEFAULTS: Dict[str, Any] = {
    "nodes": 1200,
    "seed": 7,
    "landmarks": 24,
    "top_n": 100,
    "queries": 8,
    "query_reps": 25,
    "engine": "auto",
    "ingest_events": 30,
    "compact_every": 10,
}


def _latency_summary(samples: List[float]) -> Dict[str, float]:
    """p50/p99/mean/qps over raw per-query latency samples.

    Percentile index is ``ceil(q·n) - 1`` (nearest-rank, clamped), so
    small sample sets stay well-defined and deterministic.
    """
    ordered = sorted(samples)
    n = len(ordered)
    if n == 0:
        return {"count": 0, "p50": 0.0, "p99": 0.0, "mean": 0.0, "qps": 0.0}

    def pick(q: float) -> float:
        return ordered[min(max(math.ceil(q * n) - 1, 0), n - 1)]

    total = sum(ordered)
    return {
        "count": n,
        "p50": pick(0.50),
        "p99": pick(0.99),
        "mean": total / n,
        "qps": (n / total) if total > 0.0 else 0.0,
    }


def _pick_query_nodes(graph: Any, landmarks: List[int],
                      queries: int) -> List[int]:
    """Deterministic query set: lowest-id non-landmark nodes that
    actually have somewhere to explore."""
    excluded = set(landmarks)
    eligible = sorted(
        node for node in graph.nodes()
        if graph.out_degree(node) >= 2 and node not in excluded)
    return eligible[:queries]


def run_smoke(nodes: int = 0, seed: int = 0, landmarks: int = 0,
              top_n: int = 0, queries: int = 0,
              engine: str = "", query_reps: int = 0) -> Dict[str, Any]:
    """Run the smoke workload with obs enabled; returns the report.

    Any argument left at its falsy default is replaced by the pinned
    value from :data:`SMOKE_DEFAULTS` (explicit zeros are not
    meaningful for any of these knobs).

    The Algorithm-2 stage runs each query ``query_reps`` times through
    *both* query engines (``dict`` reference and ``sparse``
    vectorised) and reports per-engine p50/p99/mean/qps under the
    ``latency`` report section — the numbers the CI gate holds against
    ``benchmarks/baseline_ci.json``.
    """
    # Imports are deferred so `import repro.obs` stays dependency-free
    # and cycle-free (core/landmarks import repro.obs at module load).
    from ..core.exact import single_source_scores
    from ..datasets import generate_twitter_graph
    from ..landmarks.approximate import ApproximateRecommender
    from ..landmarks.index import LandmarkIndex
    from ..landmarks.selection import select_landmarks
    from ..config import LandmarkParams, ScoreParams
    from ..semantics import SimilarityMatrix, web_taxonomy

    nodes = nodes if nodes else int(SMOKE_DEFAULTS["nodes"])
    seed = seed if seed else int(SMOKE_DEFAULTS["seed"])
    landmarks = landmarks if landmarks else int(SMOKE_DEFAULTS["landmarks"])
    top_n = top_n if top_n else int(SMOKE_DEFAULTS["top_n"])
    queries = queries if queries else int(SMOKE_DEFAULTS["queries"])
    engine = engine if engine else str(SMOKE_DEFAULTS["engine"])
    query_reps = (query_reps if query_reps
                  else int(SMOKE_DEFAULTS["query_reps"]))

    was_enabled = rt.is_enabled()
    rt.enable(reset=True)
    try:
        with rt.span("workload.setup") as setup_span:
            graph = generate_twitter_graph(nodes, seed=seed)
            similarity = SimilarityMatrix.from_taxonomy(web_taxonomy())
            topics = sorted(graph.topics())
            topic = "technology" if "technology" in topics else topics[0]
            params = ScoreParams()
            if setup_span:
                setup_span.set(nodes=graph.num_nodes,
                               edges=graph.num_edges, topic=topic)

        # Stage 0 — freeze the read path. Every scorer below shares
        # this snapshot (and its authority index); the build itself is
        # the `graph.snapshot_build` stage of the bench report.
        snapshot = graph.snapshot()
        authority = snapshot.authority()

        chosen = select_landmarks(snapshot, "In-Deg", landmarks, rng=seed)
        query_nodes = _pick_query_nodes(snapshot, chosen, queries)

        # Stage 1 — exact power iteration, run to convergence.
        for query in query_nodes:
            single_source_scores(snapshot, query, [topic], similarity,
                                 authority=authority, params=params)

        # Stage 2 — Algorithm 1 landmark preprocessing.
        index = LandmarkIndex.build(
            snapshot, chosen, [topic], similarity, params=params,
            landmark_params=LandmarkParams(num_landmarks=landmarks,
                                           top_n=top_n),
            authority=authority, engine=engine)

        # Stage 3 — Algorithm 2 landmark-accelerated queries, timed
        # per-query through both engines. The dict reference engine and
        # the sparse vectorised engine answer bitwise-identically
        # (pinned by the parity tests), so the latency section isolates
        # the composition-engine speedup from any answer change.
        latencies: Dict[str, List[float]] = {}
        for engine_name in ("dict", "sparse"):
            recommender = ApproximateRecommender(
                snapshot, similarity, index, authority=authority,
                query_engine=engine_name)
            # one untimed pass warms the engine's per-snapshot caches
            # (CSR views, landmark vectors, stacked composition arrays)
            for query in query_nodes:
                recommender.recommend(query, topic, top_n=10)
            samples: List[float] = []
            stage = f"workload.query.{engine_name}"
            for _ in range(query_reps):
                for query in query_nodes:
                    watch = rt.timed_span(stage)
                    with watch:
                        recommender.recommend(query, topic, top_n=10)
                    samples.append(watch.elapsed)
            latencies[stage] = samples
        latency = {name: _latency_summary(samples)
                   for name, samples in latencies.items()}

        # Stage 4 — the same queries through the sharded serving tier
        # (scatter-gather over 4 range shards; answers are
        # bitwise-identical to stage 3, so the stage isolates routing
        # and merge overhead).
        from ..distributed.sharded import ShardedPlatform

        platform = ShardedPlatform.build(
            snapshot, similarity, index, num_shards=4, params=params,
            authority=authority)
        for query in query_nodes:
            platform.recommend(query, topic, top_n=10)

        # Stage 5 — zero-downtime epoch rollover under load. A
        # replicated platform serves while seeded churn bumps the
        # epoch; the next generation warms beside the old one and the
        # router flips once every replica is ready. One replica is
        # slowed beforehand so the hedged-fetch path is exercised too.
        # The stage gauges how fast a fresh epoch becomes servable
        # (events/sec from first event applied to post-flip answers)
        # and the hedge win rate over the whole replicated run.
        from ..dynamics import GraphStream, simulate_churn

        replicated = ShardedPlatform.build(
            graph, similarity, index, num_shards=4, replicas=2,
            params=params)
        for _ in range(2):  # per-replica latency history for hedging
            for query in query_nodes:
                replicated.recommend(query, topic, top_n=10)
        replicated.channel.set_replica_latency(1, 0, 25.0)
        for query in query_nodes:
            replicated.recommend(query, topic, top_n=10)

        stream = GraphStream(graph)
        churn_events = 30
        watch = rt.timed_span("workload.rollover")
        with watch:
            applied = stream.apply_all(
                simulate_churn(graph, churn_events, seed=seed))
            rollover = replicated.begin_rollover()
            for query in query_nodes:  # old epoch serves through the warm
                replicated.recommend(query, topic, top_n=10)
            rollover.flip()
            for query in query_nodes:  # fresh epoch, zero downtime
                replicated.recommend(query, topic, top_n=10)
        channel = replicated.channel
        rt.gauge("workload.rollover.events_per_sec",
                 (applied / watch.elapsed) if watch.elapsed > 0 else 0.0)
        rt.gauge("workload.rollover.hedge_win_rate",
                 (channel.hedges_won / channel.hedges_sent)
                 if channel.hedges_sent else 0.0)

        # Stage 6 — storage backends. The frozen snapshot is persisted
        # to the versioned on-disk format, reopened through both the
        # in-RAM store and the memory-mapped store, and the same
        # queries are re-run through each. The two latency entries
        # (``workload.mmap.ram`` / ``workload.mmap.mmap``) measure what
        # serving straight off the page cache costs relative to
        # resident arrays; the answers themselves are bitwise-identical
        # (pinned by the storage parity tests). A peak-RSS gauge rides
        # along so scaling runs can see that the mmap path does not
        # inherit the in-RAM footprint.
        import shutil
        import tempfile

        from ..graph.io import open_snapshot, save_snapshot

        snapshot_dir = tempfile.mkdtemp(prefix="repro-smoke-snapshot-")
        try:
            # Stage 5's churn advanced the live graph past the frozen
            # epoch; the frozen epoch is exactly what we persist.
            save_snapshot(snapshot, snapshot_dir, allow_stale=True)
            for backend in ("ram", "mmap"):
                loaded = open_snapshot(snapshot_dir, store=backend)
                recommender = ApproximateRecommender(
                    loaded, similarity, index, authority=loaded.authority(),
                    query_engine="sparse")
                for query in query_nodes:  # untimed cache warm-up
                    recommender.recommend(query, topic, top_n=10)
                samples = []
                stage = f"workload.mmap.{backend}"
                for _ in range(query_reps):
                    for query in query_nodes:
                        watch = rt.timed_span(stage)
                        with watch:
                            recommender.recommend(query, topic, top_n=10)
                        samples.append(watch.elapsed)
                latencies[stage] = samples
                latency[stage] = _latency_summary(samples)
        finally:
            shutil.rmtree(snapshot_dir, ignore_errors=True)
        try:
            import resource
        except ImportError:  # non-POSIX platform: gauge simply absent
            pass
        else:
            # ru_maxrss is kilobytes on Linux.
            rt.gauge("workload.mmap.peak_rss_bytes",
                     float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
                     * 1024.0)

        # Stage 7 — the event-stream ingest path. Churn events stream
        # through the delta overlay with a budgeted compaction every
        # ``compact_every`` applied events; each compaction folds the
        # overlay into a fresh base, refreshes only the dirty-frontier
        # landmarks, and rolls the serving tier over to the new epoch.
        # Per-event latency p50/p99 lands under ``workload.ingest``
        # (compaction submits are the tail), and the
        # ``workload.ingest.events_per_sec`` gauge measures
        # events/sec-to-fresh-servable-epoch: the whole stream is
        # drained to a flipped, servable epoch inside the timed window.
        from ..api import IngestEvent
        from ..ingest import CompactionPolicy, IngestPipeline

        ingest_events = int(SMOKE_DEFAULTS["ingest_events"])
        compact_every = int(SMOKE_DEFAULTS["compact_every"])
        ingest_platform = ShardedPlatform.build(
            graph, similarity, index, num_shards=4, params=params)
        pipeline = IngestPipeline(
            ingest_platform, similarity, [topic],
            policy=CompactionPolicy(max_events=compact_every))
        stream_events = [
            IngestEvent(kind=event.kind.value, source=event.source,
                        target=event.target,
                        topics=tuple(event.topics or ()), time=event.time)
            for event in simulate_churn(graph, ingest_events,
                                        seed=seed + 1)]
        samples = []
        stage = "workload.ingest"
        stream_watch = rt.timed_span("workload.ingest_stream")
        with stream_watch:
            for event in stream_events:
                watch = rt.timed_span(stage)
                with watch:
                    pipeline.submit(event)
                samples.append(watch.elapsed)
            if pipeline.pending_events:
                pipeline.compact(trigger="drain")
        latencies[stage] = samples
        latency[stage] = _latency_summary(samples)
        rt.gauge("workload.ingest.events_per_sec",
                 (pipeline.events_total / stream_watch.elapsed)
                 if stream_watch.elapsed > 0 else 0.0)
        rt.gauge("workload.ingest.compactions",
                 float(pipeline.compactions_total))

        report = build_report(rt.snapshot(), workload={
            "nodes": nodes, "seed": seed, "landmarks": landmarks,
            "top_n": top_n, "queries": len(query_nodes),
            "query_reps": query_reps,
            "engine": index.engine_used, "topic": topic,
            "ingest_events": ingest_events,
            "compact_every": compact_every,
        }, latency=latency)
    finally:
        if not was_enabled:
            rt.disable()
    return report
