"""The pinned CI smoke workload.

A small, fully-seeded end-to-end run that exercises every instrumented
stage — snapshot construction, exact power iteration, landmark
preprocessing (Algorithm 1), and the landmark-accelerated query path
(Algorithm 2) — with the
observability layer enabled, and returns the bench report that
``python -m repro.obs run --json BENCH_ci.json`` writes for CI.

Everything is deterministic except the timings: same seed, same
machine → identical counters and stage call counts, so PR-over-PR
diffs of ``BENCH_ci.json`` isolate *time* changes from *work* changes.
"""

from __future__ import annotations

from typing import Any, Dict, List

from . import runtime as rt
from .export import build_report

#: Knobs of the pinned CI workload. Changing any of these invalidates
#: ``benchmarks/baseline_ci.json`` — regenerate it in the same commit
#: (see docs/OBSERVABILITY.md).
SMOKE_DEFAULTS: Dict[str, Any] = {
    "nodes": 800,
    "seed": 7,
    "landmarks": 24,
    "top_n": 50,
    "queries": 8,
    "engine": "auto",
}


def _pick_query_nodes(graph: Any, landmarks: List[int],
                      queries: int) -> List[int]:
    """Deterministic query set: lowest-id non-landmark nodes that
    actually have somewhere to explore."""
    excluded = set(landmarks)
    eligible = sorted(
        node for node in graph.nodes()
        if graph.out_degree(node) >= 2 and node not in excluded)
    return eligible[:queries]


def run_smoke(nodes: int = 0, seed: int = 0, landmarks: int = 0,
              top_n: int = 0, queries: int = 0,
              engine: str = "") -> Dict[str, Any]:
    """Run the smoke workload with obs enabled; returns the report.

    Any argument left at its falsy default is replaced by the pinned
    value from :data:`SMOKE_DEFAULTS` (explicit zeros are not
    meaningful for any of these knobs).
    """
    # Imports are deferred so `import repro.obs` stays dependency-free
    # and cycle-free (core/landmarks import repro.obs at module load).
    from ..core.exact import single_source_scores
    from ..datasets import generate_twitter_graph
    from ..landmarks.approximate import ApproximateRecommender
    from ..landmarks.index import LandmarkIndex
    from ..landmarks.selection import select_landmarks
    from ..config import LandmarkParams, ScoreParams
    from ..semantics import SimilarityMatrix, web_taxonomy

    nodes = nodes if nodes else int(SMOKE_DEFAULTS["nodes"])
    seed = seed if seed else int(SMOKE_DEFAULTS["seed"])
    landmarks = landmarks if landmarks else int(SMOKE_DEFAULTS["landmarks"])
    top_n = top_n if top_n else int(SMOKE_DEFAULTS["top_n"])
    queries = queries if queries else int(SMOKE_DEFAULTS["queries"])
    engine = engine if engine else str(SMOKE_DEFAULTS["engine"])

    was_enabled = rt.is_enabled()
    rt.enable(reset=True)
    try:
        with rt.span("workload.setup") as setup_span:
            graph = generate_twitter_graph(nodes, seed=seed)
            similarity = SimilarityMatrix.from_taxonomy(web_taxonomy())
            topics = sorted(graph.topics())
            topic = "technology" if "technology" in topics else topics[0]
            params = ScoreParams()
            if setup_span:
                setup_span.set(nodes=graph.num_nodes,
                               edges=graph.num_edges, topic=topic)

        # Stage 0 — freeze the read path. Every scorer below shares
        # this snapshot (and its authority index); the build itself is
        # the `graph.snapshot_build` stage of the bench report.
        snapshot = graph.snapshot()
        authority = snapshot.authority()

        chosen = select_landmarks(snapshot, "In-Deg", landmarks, rng=seed)
        query_nodes = _pick_query_nodes(snapshot, chosen, queries)

        # Stage 1 — exact power iteration, run to convergence.
        for query in query_nodes:
            single_source_scores(snapshot, query, [topic], similarity,
                                 authority=authority, params=params)

        # Stage 2 — Algorithm 1 landmark preprocessing.
        index = LandmarkIndex.build(
            snapshot, chosen, [topic], similarity, params=params,
            landmark_params=LandmarkParams(num_landmarks=landmarks,
                                           top_n=top_n),
            authority=authority, engine=engine)

        # Stage 3 — Algorithm 2 landmark-accelerated queries.
        recommender = ApproximateRecommender(snapshot, similarity, index,
                                             authority=authority)
        for query in query_nodes:
            recommender.recommend(query, topic, top_n=10)

        # Stage 4 — the same queries through the sharded serving tier
        # (scatter-gather over 4 range shards; answers are
        # bitwise-identical to stage 3, so the stage isolates routing
        # and merge overhead).
        from ..distributed.sharded import ShardedPlatform

        platform = ShardedPlatform.build(
            snapshot, similarity, index, num_shards=4, params=params,
            authority=authority)
        for query in query_nodes:
            platform.recommend(query, topic, top_n=10)

        report = build_report(rt.snapshot(), workload={
            "nodes": nodes, "seed": seed, "landmarks": landmarks,
            "top_n": top_n, "queries": len(query_nodes),
            "engine": index.engine_used, "topic": topic,
        })
    finally:
        if not was_enabled:
            rt.disable()
    return report
