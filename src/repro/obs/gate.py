"""The CI regression gate: compare a bench report against a baseline.

``python -m repro.obs check BENCH_ci.json benchmarks/baseline_ci.json``
exits non-zero when a stage got *grossly* slower (default: more than
2x the baseline) or disappeared entirely (instrumentation rot is a
regression too). Stages whose baseline time is below the noise floor
are compared against the floor instead, so micro-stages cannot flap
the gate on scheduler jitter. Per-query latency summaries from the
bench-smoke query stage are gated the same way on their p50 and p99,
with a tighter (per-query) noise floor.
"""

from __future__ import annotations

from typing import Any, Dict, List

#: Baseline stage times below this many seconds are lifted to it
#: before applying the factor — avoids 2x-of-2ms false alarms.
DEFAULT_MIN_SECONDS = 0.05

#: A stage fails when current > factor * max(baseline, min_seconds).
DEFAULT_FACTOR = 2.0

#: Noise floor for per-query latency percentiles (p50/p99). Smoke
#: queries run in the hundreds of microseconds, so the floor is far
#: tighter than the stage floor but still generous against scheduler
#: jitter: a query path must get *grossly* slower (past
#: factor × max(baseline, 5ms)) to trip the gate.
DEFAULT_MIN_LATENCY_SECONDS = 0.005


def check_regression(current: Dict[str, Any], baseline: Dict[str, Any],
                     factor: float = DEFAULT_FACTOR,
                     min_seconds: float = DEFAULT_MIN_SECONDS,
                     min_latency_seconds: float = DEFAULT_MIN_LATENCY_SECONDS,
                     ) -> List[str]:
    """Return one problem string per gate violation (empty = pass).

    Checks, per baseline stage:

    - the stage still exists in the current report (a missing stage
      means an instrumentation point was lost);
    - its total time is within ``factor`` of the baseline, after
      lifting tiny baselines to ``min_seconds``.

    Per baseline ``latency`` entry (the bench-smoke query stage):

    - the entry still exists in the current report;
    - its p50 and p99 are within ``factor`` of the baseline, after
      lifting tiny baselines to ``min_latency_seconds``.

    Counters are compared for *presence* only — their values may
    legitimately change when algorithms change, but a vanished counter
    means the metric was unwired.
    """
    if factor <= 1.0:
        raise ValueError(f"factor must be > 1.0, got {factor}")
    problems: List[str] = []

    base_stages = baseline.get("stages") or {}
    cur_stages = current.get("stages") or {}
    for name in sorted(base_stages):
        base_entry = base_stages[name]
        cur_entry = cur_stages.get(name)
        if cur_entry is None:
            problems.append(
                f"stage {name!r} present in baseline but missing from the "
                f"current report — instrumentation removed?")
            continue
        budget = factor * max(float(base_entry["seconds"]), min_seconds)
        seconds = float(cur_entry["seconds"])
        if seconds > budget:
            problems.append(
                f"stage {name!r} regressed: {seconds:.4f}s vs baseline "
                f"{float(base_entry['seconds']):.4f}s "
                f"(budget {budget:.4f}s = {factor:g}x with "
                f"{min_seconds:g}s floor)")

    base_latency = baseline.get("latency") or {}
    cur_latency = current.get("latency") or {}
    for name in sorted(base_latency):
        base_entry = base_latency[name]
        cur_entry = cur_latency.get(name)
        if cur_entry is None:
            problems.append(
                f"latency {name!r} present in baseline but missing from "
                f"the current report — query stage removed?")
            continue
        for quantile in ("p50", "p99"):
            base_value = float(base_entry[quantile])
            budget = factor * max(base_value, min_latency_seconds)
            value = float(cur_entry[quantile])
            if value > budget:
                problems.append(
                    f"latency {name!r} {quantile} regressed: "
                    f"{value * 1e3:.3f}ms vs baseline "
                    f"{base_value * 1e3:.3f}ms (budget "
                    f"{budget * 1e3:.3f}ms = {factor:g}x with "
                    f"{min_latency_seconds * 1e3:g}ms floor)")

    base_counters = baseline.get("counters") or {}
    cur_counters = current.get("counters") or {}
    for name in sorted(base_counters):
        if name not in cur_counters:
            problems.append(
                f"counter {name!r} present in baseline but missing from "
                f"the current report — metric unwired?")
    return problems


def describe_pass(current: Dict[str, Any], baseline: Dict[str, Any]) -> str:
    """One-line summary printed when the gate passes."""
    cur = current.get("stages") or {}
    base = baseline.get("stages") or {}
    shared = sorted(set(cur) & set(base))
    worst_name, worst_ratio = "", 0.0
    for name in shared:
        base_seconds = max(float(base[name]["seconds"]), 1e-9)
        ratio = float(cur[name]["seconds"]) / base_seconds
        if ratio > worst_ratio:
            worst_name, worst_ratio = name, ratio
    if not shared:
        return "gate passed (no shared stages)"
    return (f"gate passed: {len(shared)} stages within budget; worst "
            f"{worst_name} at {worst_ratio:.2f}x baseline")
