"""Counters, gauges, and fixed-bucket histograms.

The registry is deliberately boring: plain Python objects, no
background threads, no dependencies. Two properties matter for the CI
bench harness built on top:

- **Deterministic output.** Histogram bucket boundaries are fixed at
  creation (default :data:`DEFAULT_LATENCY_BUCKETS`), snapshots list
  every metric in sorted name order, and counter values are exact
  integers/floats accumulated in call order — the same workload on the
  same seed produces byte-identical counter sections.
- **Cheap updates.** A counter increment is one dict lookup and one
  addition; a histogram observation is one :func:`bisect.bisect_left`.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

#: Default histogram boundaries (seconds): ~100us to 10s, the range a
#: propagation stage can plausibly occupy. Fixed so that two runs — or
#: two machines — bucket identical observations identically.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """Monotonically increasing value (requests served, iterations run)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add *amount* (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount


class Gauge:  # repro: ignore[W4] -- constructed via MetricsRegistry.gauge(); exported so callers can type and isinstance the handle
    """Last-write-wins value (cache occupancy, engine selection)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = float(value)


class Histogram:
    """Fixed-boundary histogram of float observations.

    ``boundaries`` are *upper* bucket bounds; an observation lands in
    the first bucket whose bound is ``>= value``, or in the implicit
    overflow bucket past the last bound. ``counts`` therefore has
    ``len(boundaries) + 1`` entries. Because the boundaries never move,
    bucketing is a pure function of the observed values — the
    determinism the bench-trajectory diffing relies on.
    """

    __slots__ = ("name", "boundaries", "counts", "count", "total")

    def __init__(self, name: str,
                 boundaries: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise ValueError(
                f"histogram {name!r} needs at least one bucket boundary")
        if list(bounds) != sorted(bounds):
            raise ValueError(
                f"histogram {name!r} boundaries must be sorted: {bounds}")
        self.name = name
        self.boundaries: Tuple[float, ...] = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        """Average observation (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count


class MetricsRegistry:
    """Get-or-create store of named metrics.

    Names are dotted strings (``"approx.queries_total"``). Re-requesting
    a name returns the existing instrument; requesting an existing name
    as a *different* kind raises ``ValueError`` — silently shadowing a
    counter with a gauge would corrupt the report.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_unique(self, name: str, kind: str) -> None:
        owners = {"counter": self._counters, "gauge": self._gauges,
                  "histogram": self._histograms}
        for other_kind, table in owners.items():
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a {other_kind}")

    def counter(self, name: str) -> Counter:
        """Get or create the counter *name*."""
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_unique(name, "counter")
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge *name*."""
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_unique(name, "gauge")
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str,
                  boundaries: Optional[Sequence[float]] = None) -> Histogram:
        """Get or create the histogram *name*.

        ``boundaries`` applies on first creation only; a later caller
        passing different boundaries for the same name raises
        ``ValueError`` (two shapes of the same histogram cannot merge).
        """
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_unique(name, "histogram")
            instrument = self._histograms[name] = Histogram(
                name, boundaries if boundaries is not None
                else DEFAULT_LATENCY_BUCKETS)
        elif (boundaries is not None
              and tuple(float(b) for b in boundaries)
              != instrument.boundaries):
            raise ValueError(
                f"histogram {name!r} already exists with boundaries "
                f"{instrument.boundaries}")
        return instrument

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Deterministic dict form of every metric, sorted by name."""
        return {
            "counters": {name: self._counters[name].value
                         for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name].value
                       for name in sorted(self._gauges)},
            "histograms": {
                name: {
                    "boundaries": list(hist.boundaries),
                    "counts": list(hist.counts),
                    "count": hist.count,
                    "sum": hist.total,
                }
                for name, hist in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every metric (a fresh registry for a fresh run)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
