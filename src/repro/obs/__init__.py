"""repro.obs — metrics, spans, and stage profiling for the Tr pipeline.

A dependency-free observability layer (see ``docs/OBSERVABILITY.md``):

- :class:`MetricsRegistry` with counters, gauges, and fixed-bucket
  histograms whose output is deterministic;
- :class:`Tracer`/:class:`Span` context-manager spans with parent
  links, wall time, and attached attributes;
- a process-wide switch (:func:`enable` / :func:`disable`) whose
  disabled default makes every instrumentation point a no-op;
- exporters and the ``python -m repro.obs`` report/gate CLI that back
  the CI ``bench-smoke`` job.

Instrumented library code imports :mod:`repro.obs.runtime` and calls
``runtime.span(...)`` / ``runtime.count(...)``; application code
enables the layer, runs a workload, and reads :func:`snapshot`.
"""

from .clock import Stopwatch, format_duration, now
from .export import build_report, read_json, render_text, write_json
from .gate import check_regression
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
# NOTE: the *function* ``runtime.get_runtime`` is deliberately not
# re-exported under the name ``runtime`` — that would shadow the
# ``repro.obs.runtime`` submodule attribute that instrumented modules
# bind via ``from ..obs import runtime as _obs``.
from .runtime import (
    NOOP_SPAN,
    ObsRuntime,
    count,
    disable,
    enable,
    gauge,
    get_runtime,
    is_enabled,
    observe,
    snapshot,
    span,
    span_trees,
    timed_span,
)
from .trace import Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "ObsRuntime",
    "Span",
    "Stopwatch",
    "Tracer",
    "build_report",
    "check_regression",
    "count",
    "disable",
    "enable",
    "format_duration",
    "gauge",
    "get_runtime",
    "is_enabled",
    "now",
    "observe",
    "read_json",
    "render_text",
    "snapshot",
    "span",
    "span_trees",
    "timed_span",
    "write_json",
]
