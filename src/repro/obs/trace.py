"""Context-manager spans with parent links and wall-clock timing.

A :class:`Span` measures one stage of work with
:func:`time.perf_counter` (via :mod:`repro.obs.clock`) and carries
free-form attributes (``depth``, ``landmarks_hit``, ``frontier_size``,
…). Spans nest: entering a span while another is active on the same
thread links it as a child, so one who-to-follow request produces a
tree like::

    platform.who_to_follow
      platform.rank
        approx.recommend
          approx.query
            approx.explore
              exact.single_source
                exact.iteration × k
            approx.compose
          approx.rank
      platform.hydrate

The tracer keeps one active-span stack **per thread** (the dict engine
fans landmark builds out over a thread pool), and completed root spans
are collected under a lock, so concurrent builds trace correctly.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterator, List, Optional

from .clock import now


class Span:
    """One timed stage. Use as a context manager via :meth:`Tracer.span`.

    Truthiness is part of the API: a real span is truthy while the
    disabled-mode :data:`repro.obs.runtime.NOOP_SPAN` is falsy, so hot
    paths can guard attribute computation with ``if span: span.set(...)``
    and pay nothing when observability is off.
    """

    __slots__ = ("name", "attributes", "parent", "children",
                 "start", "end", "_tracer")

    def __init__(self, name: str, tracer: "Tracer",
                 attributes: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.attributes: Dict[str, Any] = (
            dict(attributes) if attributes is not None else {})
        self.parent: Optional[Span] = None
        self.children: List[Span] = []
        self.start: float = 0.0
        self.end: float = 0.0
        self._tracer = tracer

    def __bool__(self) -> bool:
        return True

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes; returns self for chaining."""
        self.attributes.update(attrs)
        return self

    @property
    def elapsed(self) -> float:
        """Wall-clock seconds (0.0 until the span has finished)."""
        if self.end == 0.0:
            return 0.0
        return self.end - self.start

    def __enter__(self) -> "Span":
        self._tracer._enter(self)
        self.start = now()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.end = now()
        self._tracer._exit(self)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready tree rooted at this span."""
        return {
            "name": self.name,
            "seconds": self.elapsed,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, seconds={self.elapsed:.6f}, "
                f"children={len(self.children)})")


class Tracer:
    """Factory and collector of spans.

    ``finished`` holds completed *root* spans in completion order;
    child spans are reachable through their parents. The active-span
    stack is thread-local, so a span opened on a worker thread becomes
    a root of its own tree rather than a child of whatever the main
    thread happens to be doing.
    """

    def __init__(self) -> None:
        self.finished: List[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs: Any) -> Span:
        """Create a span; enter it with ``with`` to start the clock."""
        return Span(name, self, attributes=attrs)

    def current(self) -> Optional[Span]:
        """The innermost active span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # Called by Span.__enter__/__exit__ only.
    def _enter(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            span.parent = stack[-1]
            stack[-1].children.append(span)
        stack.append(span)

    def _exit(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # tolerate exotic exit orders rather than corrupt the stack
            try:
                stack.remove(span)
            except ValueError:
                pass
        if span.parent is None:
            with self._lock:
                self.finished.append(span)

    def iter_spans(self) -> Iterator[Span]:
        """Every finished span (roots and descendants), depth-first."""
        with self._lock:
            roots = list(self.finished)
        for root in roots:
            yield from root.walk()

    def aggregate(self) -> Dict[str, Dict[str, float]]:
        """Per-span-name stage stats over every finished span.

        Returns ``{name: {"calls", "seconds", "mean", "min", "max"}}``
        sorted by name — the "stages" section of the bench report.
        """
        stats: Dict[str, Dict[str, float]] = {}
        for span in self.iter_spans():
            entry = stats.get(span.name)
            seconds = span.elapsed
            if entry is None:
                stats[span.name] = {
                    "calls": 1, "seconds": seconds,
                    "min": seconds, "max": seconds,
                }
            else:
                entry["calls"] += 1
                entry["seconds"] += seconds
                entry["min"] = min(entry["min"], seconds)
                entry["max"] = max(entry["max"], seconds)
        for entry in stats.values():
            entry["mean"] = entry["seconds"] / entry["calls"]
        return {name: stats[name] for name in sorted(stats)}

    def reset(self) -> None:
        """Drop finished spans (active stacks are left alone)."""
        with self._lock:
            self.finished.clear()
