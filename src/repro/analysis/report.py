"""Renderers for analysis findings: human text and machine JSON."""

from __future__ import annotations

import json
from collections import Counter
from typing import List

from .findings import Finding
from .project import PROJECT_REGISTRY
from .rules import REGISTRY

#: Version of the JSON report schema, bumped on breaking changes so CI
#: consumers can pin what they parse.
JSON_SCHEMA_VERSION = 1


def render_text(findings: List[Finding]) -> str:
    """One ``path:line:col: RULE message`` line per finding + summary."""
    lines = [finding.render() for finding in findings]
    if findings:
        counts = Counter(finding.rule for finding in findings)
        breakdown = ", ".join(f"{rule}={count}"
                              for rule, count in sorted(counts.items()))
        lines.append(f"{len(findings)} finding"
                     f"{'s' if len(findings) != 1 else ''} ({breakdown})")
    else:
        lines.append("no findings")
    return "\n".join(lines)


def render_json(findings: List[Finding]) -> str:
    """Machine-readable report for CI annotation tooling."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "findings": [finding.to_dict() for finding in findings],
        "counts": dict(sorted(
            Counter(finding.rule for finding in findings).items())),
        "total": len(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_list() -> str:
    """``--list-rules`` output: id, name, and what each rule prevents."""
    lines = []
    for rule_id in sorted(REGISTRY):
        rule = REGISTRY[rule_id]
        lines.append(f"{rule_id}  {rule.name}")
        lines.append(f"    {rule.description}")
    for rule_id in sorted(PROJECT_REGISTRY):
        project_rule = PROJECT_REGISTRY[rule_id]
        lines.append(f"{rule_id}  {project_rule.name}")
        lines.append(f"    {project_rule.description}")
    lines.append("R0  suppression-hygiene")
    lines.append("    raised by the engine itself: a '# repro: ignore[...]' "
                 "comment without a '-- justification', naming an unknown "
                 "rule, or a file that fails to parse. Not suppressible.")
    return "\n".join(lines)
