"""CLI entry point: ``python -m repro.analysis [paths...]``.

Exit codes: 0 — clean; 1 — findings; 2 — usage error. CI runs this as
a hard gate (see ``.github/workflows/ci.yml``), so a new violation of
any rule — per-file ``R*`` or whole-program ``W*`` — fails the build
exactly like a failing test. ``--cache`` turns on the incremental
cache (content-hash-keyed; warm runs re-parse only changed files) and
``--sarif`` writes a SARIF 2.1.0 report for GitHub code-scanning
annotations alongside whichever ``--format`` goes to stdout.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from .cache import DEFAULT_CACHE_PATH
from .engine import UnknownRuleError, run_analysis, validate_select
from .project import LayersConfigError
from .report import render_json, render_rule_list, render_text
from .sarif import render_sarif


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Repo-specific static analysis for the repro codebase "
                    "(see docs/ANALYSIS.md for the rule catalogue).")
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)")
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format on stdout (json and sarif are stable for "
             "CI consumption)")
    parser.add_argument(
        "--sarif", metavar="PATH",
        help="additionally write a SARIF 2.1.0 report to PATH (for "
             "GitHub code-scanning upload)")
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run, e.g. R1,W2 (default: all)")
    parser.add_argument(
        "--cache", metavar="PATH", nargs="?", const=DEFAULT_CACHE_PATH,
        default=None,
        help="enable the incremental cache at PATH (default when the "
             f"flag is given without a value: {DEFAULT_CACHE_PATH}); "
             "warm runs re-parse only files whose content changed")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        print(render_rule_list())
        return 0

    select: Optional[List[str]] = None
    if options.select:
        select = [part.strip() for part in options.select.split(",")
                  if part.strip()]
        try:
            validate_select(select)
        except UnknownRuleError as exc:
            print(str(exc), file=sys.stderr)
            return 2

    started = time.perf_counter()  # repro: ignore[R7] -- the analyzer times itself for the CI warm/cold line; it must not depend on repro.obs
    try:
        run = run_analysis(
            options.paths, select=select,
            cache_path=Path(options.cache) if options.cache else None)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except UnknownRuleError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except LayersConfigError as exc:
        print(f"layering config error: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started  # repro: ignore[R7] -- paired read for the self-timing line above

    findings = run.findings
    if options.sarif:
        Path(options.sarif).write_text(render_sarif(findings) + "\n",
                                       encoding="utf-8")
    if options.format == "json":
        print(render_json(findings))
    elif options.format == "sarif":
        print(render_sarif(findings))
    else:
        print(render_text(findings))
    if options.cache:
        print(f"analyzed {len(run.files)} files in {elapsed:.3f}s "
              f"(cache: {run.cache_hits} hits, {run.cache_misses} misses, "
              f"{run.parsed} parsed)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
