"""CLI entry point: ``python -m repro.analysis [paths...]``.

Exit codes: 0 — clean; 1 — findings; 2 — usage error. CI runs this as
a hard gate (see ``.github/workflows/ci.yml``), so a new violation of
any rule fails the build exactly like a failing test.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .engine import check_paths
from .report import render_json, render_rule_list, render_text
from .rules import REGISTRY


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Repo-specific static analysis for the repro codebase "
                    "(see docs/ANALYSIS.md for the rule catalogue).")
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json is stable for CI consumption)")
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run, e.g. R1,R2 (default: all)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        print(render_rule_list())
        return 0

    select: Optional[List[str]] = None
    if options.select:
        select = [part.strip() for part in options.select.split(",")
                  if part.strip()]
        unknown = [rule_id for rule_id in select if rule_id not in REGISTRY]
        if unknown:
            print(f"unknown rule id(s): {', '.join(unknown)} "
                  f"(known: {', '.join(sorted(REGISTRY))})", file=sys.stderr)
            return 2

    try:
        findings = check_paths(options.paths, select=select)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if options.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
