"""Content-hash-keyed incremental cache for the analysis pass.

Parsing and summarizing every module is the expensive part of a run;
the findings and the :class:`~repro.analysis.modgraph.ModuleSummary`
of a file are pure functions of its bytes. The cache persists both,
keyed by SHA-256 of the file contents, to
``.repro-analysis-cache.json`` (or any path the caller picks), so a
warm run re-parses only the modules whose bytes changed — the
whole-program rules then rebuild their graphs from cached summaries.

Soundness: the key is the content hash, so editing a file (including
its suppression comments) always misses; the cache version, the
summary schema version, and the Python minor version (AST shapes
differ) are part of the envelope, so stale formats are discarded
wholesale rather than misread.
"""

from __future__ import annotations

import hashlib
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from .findings import Finding
from .modgraph import SUMMARY_VERSION, ModuleSummary

#: Bump on any change to the entry layout.
CACHE_VERSION = 1

#: Default on-disk location, relative to the working directory.
DEFAULT_CACHE_PATH = ".repro-analysis-cache.json"


def content_digest(data: bytes) -> str:
    """Hex SHA-256 of a file's bytes — the cache key."""
    return hashlib.sha256(data).hexdigest()


def _envelope_key() -> str:
    version = sys.version_info
    return f"{CACHE_VERSION}/{SUMMARY_VERSION}/py{version[0]}.{version[1]}"


class AnalysisCache:
    """Per-file findings + summaries, persisted across runs.

    Attributes:
        hits: Files served from cache this run.
        misses: Files that had to be parsed this run.
    """

    def __init__(self, path: Optional[Path]) -> None:
        self.path = path
        self.hits = 0
        self.misses = 0
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._touched: Dict[str, Dict[str, Any]] = {}
        if path is None or not path.exists():
            return
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return  # unreadable cache == cold cache
        if not isinstance(payload, dict):
            return
        if payload.get("envelope") != _envelope_key():
            return
        entries = payload.get("entries")
        if isinstance(entries, dict):
            self._entries = entries

    def lookup(self, path: str, digest: str) -> Optional[
            Tuple[List[Finding], Optional[ModuleSummary]]]:
        """Cached (findings, summary) for *path* at *digest*, if fresh.

        Counts a hit or a miss; a hit also marks the entry live so
        :meth:`save` retains it.
        """
        entry = self._entries.get(path)
        if entry is None or entry.get("digest") != digest:
            self.misses += 1
            return None
        try:
            findings = [Finding(**record) for record in entry["findings"]]
            raw_summary = entry["summary"]
            summary = (ModuleSummary.from_dict(raw_summary)
                       if raw_summary is not None else None)
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        self._touched[path] = entry
        return findings, summary

    def store(self, path: str, digest: str, findings: List[Finding],
              summary: Optional[ModuleSummary]) -> None:
        """Record the freshly computed facts for *path*."""
        entry = {
            "digest": digest,
            "findings": [finding.to_dict() for finding in findings],
            "summary": summary.to_dict() if summary is not None else None,
        }
        self._entries[path] = entry
        self._touched[path] = entry

    def save(self) -> None:
        """Persist entries touched this run (dead paths are pruned)."""
        if self.path is None:
            return
        payload = {
            "envelope": _envelope_key(),
            "entries": dict(sorted(self._touched.items())),
        }
        try:
            self.path.write_text(
                json.dumps(payload, indent=1, sort_keys=True) + "\n",
                encoding="utf-8")
        except OSError:
            pass  # a cache that cannot be written is just a cold cache
