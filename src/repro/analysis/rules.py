"""Repo-specific AST lint rules.

Each rule encodes an invariant this codebase has already paid to
re-learn (see ``docs/ANALYSIS.md`` for the bug behind each one):

- **R1** falsy-or-default: ``param or default`` on an optional
  parameter silently replaces falsy-but-valid values (the
  ``query(depth=0)`` bug).
- **R2** unordered-accumulation: iterating a ``set``/``dict`` view
  into a float accumulation without ``sorted(...)`` makes scores
  depend on hash/insertion order (the landmark-composition bug).
- **R3** unseeded-randomness: module-level ``random.*`` /
  ``np.random.*`` calls bypass the injected, seeded generators.
- **R4** mutable-default: mutable default argument values.
- **R5** unbounded-propagation: ``while`` loops in ``core``/
  ``landmarks`` driving the propagation engines without a visible
  iteration bound.
- **R6** blind-except: bare ``except:`` or a broad handler that
  swallows the exception.
- **R7** raw-timing: raw ``time.time()``/``perf_counter()`` reads in
  ``src/`` outside :mod:`repro.obs` bypass the observability layer.
- **R8** private-graph-access: reading ``._out``/``._in``/
  ``._node_topics`` outside ``graph/`` bypasses the
  :class:`~repro.graph.snapshot.GraphSnapshot` read path and sees
  mutations mid-propagation.
- **R9** tuple-returning-recommend: a ``recommend``-named function in
  ``src/`` returning bare ``(node, score)`` tuples resurrects the
  pre-:mod:`repro.api` shape; new entry points must return
  :class:`~repro.api.RecommendationResponse` (sanctioned deprecation
  shims carry a suppression).

Rules are pluggable: subclass :class:`Rule`, decorate with
:func:`register`, and the engine, the CLI rule listing, and the
suppression checker pick it up automatically.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Type

from .findings import Finding


class ModuleContext:
    """Parsed module plus the cross-rule indexes rules need."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.parents: Dict[int, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[id(child)] = parent

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self.parents.get(id(node))

    def enclosing_function(
            self, node: ast.AST
    ) -> Optional[ast.FunctionDef]:
        current = self.parent(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current  # type: ignore[return-value]
            current = self.parent(current)
        return None


class Rule:
    """Base class for one lint rule.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding a :class:`Finding` per violation. Rules must be pure
    functions of the :class:`ModuleContext` — no filesystem access —
    so fixtures in the test suite can drive them from strings.
    """

    id: str = ""
    name: str = ""
    description: str = ""

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleContext, node: ast.AST,
                message: str) -> Finding:
        return Finding(path=module.path, line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       rule=self.id, message=message)


#: Registry of every known rule, keyed by rule id.
REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding *rule_class* to :data:`REGISTRY`."""
    if not rule_class.id:
        raise ValueError(f"rule {rule_class.__name__} has no id")
    if rule_class.id in REGISTRY:
        raise ValueError(f"duplicate rule id {rule_class.id}")
    REGISTRY[rule_class.id] = rule_class
    return rule_class


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------

def _annotation_text(annotation: Optional[ast.expr]) -> str:
    if annotation is None:
        return ""
    try:
        return ast.unparse(annotation)
    except Exception:  # pragma: no cover - unparse is total on valid ASTs
        return ""


def optional_parameters(func: ast.FunctionDef) -> Set[str]:
    """Parameter names of *func* that may legitimately be ``None``.

    A parameter counts as optional when its default is ``None`` or its
    annotation mentions ``Optional``/``None``. These are exactly the
    parameters for which ``param or default`` is the suspicious
    none-fallback idiom R1 targets.
    """
    optional: Set[str] = set()
    args = func.args
    positional = list(args.posonlyargs) + list(args.args)
    defaults: List[Optional[ast.expr]] = (
        [None] * (len(positional) - len(args.defaults)) + list(args.defaults))
    for arg, default in zip(positional, defaults):
        if _is_none(default) or _optional_annotation(arg.annotation):
            optional.add(arg.arg)
    for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
        if _is_none(kw_default) or _optional_annotation(arg.annotation):
            optional.add(arg.arg)
    return optional


def _is_none(node: Optional[ast.expr]) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _optional_annotation(annotation: Optional[ast.expr]) -> bool:
    text = _annotation_text(annotation)
    return "Optional" in text or "None" in text


_PASSTHROUGH_CALLS = {"list", "tuple", "iter", "reversed"}
_UNORDERED_VIEWS = {"keys", "values", "items"}
_SET_CONSTRUCTORS = {"set", "frozenset"}
_SET_ANNOTATION_RE = re.compile(r"\b(Set|FrozenSet|set|frozenset)\b")


def _strip_passthrough(node: ast.expr) -> ast.expr:
    """Unwrap ``list(X)``/``tuple(X)``/``iter(X)`` — order-preserving."""
    while (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
           and node.func.id in _PASSTHROUGH_CALLS and len(node.args) == 1):
        node = node.args[0]
    return node


def set_typed_locals(func: ast.FunctionDef) -> Set[str]:
    """Names bound to a set within *func* (assignment or annotation)."""
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            if _is_set_expr(node.value, names):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and (
                    _SET_ANNOTATION_RE.search(_annotation_text(node.annotation))
                    or (node.value is not None
                        and _is_set_expr(node.value, names))):
                names.add(node.target.id)
    return names


def _is_set_expr(node: ast.expr, set_names: Set[str]) -> bool:
    node = _strip_passthrough(node)
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in _SET_CONSTRUCTORS):
        return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return (_is_set_expr(node.left, set_names)
                or _is_set_expr(node.right, set_names))
    return False


def is_unordered_iterable(node: ast.expr, set_names: Set[str]) -> bool:
    """Whether *node* iterates in hash/insertion order.

    ``sorted(...)`` (and anything else not recognisably a set or a
    dict view) is treated as ordered; the rule errs toward silence so
    that every finding it does emit is worth fixing.
    """
    node = _strip_passthrough(node)
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
            and node.func.attr in _UNORDERED_VIEWS and not node.args):
        return True
    return _is_set_expr(node, set_names)


_ACCUMULATE_OPS = (ast.Add, ast.Sub, ast.Mult)


def _contains_float_accumulation(body: Sequence[ast.stmt]) -> bool:
    """Whether *body* accumulates numbers across iterations.

    Recognises both ``total += x`` and the codebase's dict-accumulate
    idiom ``bucket[k] = bucket.get(k, 0.0) + x``.
    """
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.AugAssign) and isinstance(
                    node.op, _ACCUMULATE_OPS):
                return True
            if (isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.BinOp)
                    and isinstance(node.value.op, ast.Add)):
                for part in ast.walk(node.value):
                    if (isinstance(part, ast.Call)
                            and isinstance(part.func, ast.Attribute)
                            and part.func.attr == "get"):
                        return True
    return False


def _is_int_valued(node: ast.expr) -> bool:
    """Conservatively: does *node* evaluate to an int (order-safe sum)?"""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, int) and not isinstance(node.value, bool)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"len", "int", "ord"}
    if isinstance(node, ast.Compare):
        return True  # sum(x > 0 for ...) counts matches
    return False


# ----------------------------------------------------------------------
# R1 — falsy-or-default
# ----------------------------------------------------------------------

@register
class FalsyOrDefault(Rule):
    """``param or default`` where ``param`` may be falsy-but-valid."""

    id = "R1"
    name = "falsy-or-default"
    description = (
        "'param or default' on an optional parameter: 0, 0.0, '', or an "
        "empty collection silently falls back to the default (the "
        "query(depth=0) bug). Use 'param if param is not None else default'.")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.BoolOp)
                    and isinstance(node.op, ast.Or)):
                continue
            left = node.values[0]
            if not isinstance(left, ast.Name):
                continue
            func = module.enclosing_function(node)
            if func is None or left.id not in optional_parameters(func):
                continue
            if self._is_truthiness_test(module, node):
                continue
            yield self.finding(
                module, node,
                f"'{left.id} or ...' replaces falsy-but-valid values of "
                f"optional parameter '{left.id}'; write "
                f"'{left.id} if {left.id} is not None else ...'")

    @staticmethod
    def _is_truthiness_test(module: ModuleContext, node: ast.BoolOp) -> bool:
        """True when the ``or`` is a boolean condition, not a fallback."""
        parent = module.parent(node)
        while isinstance(parent, (ast.BoolOp, ast.UnaryOp)):
            node = parent  # type: ignore[assignment]
            parent = module.parent(parent)
        if isinstance(parent, (ast.If, ast.While)) and parent.test is node:
            return True
        if isinstance(parent, ast.IfExp) and parent.test is node:
            return True
        if isinstance(parent, ast.Assert):
            return True
        if isinstance(parent, ast.comprehension) and node in parent.ifs:
            return True
        return False


# ----------------------------------------------------------------------
# R2 — unordered-accumulation
# ----------------------------------------------------------------------

@register
class UnorderedAccumulation(Rule):
    """Float accumulation over a set/dict view without ``sorted``."""

    id = "R2"
    name = "unordered-accumulation"
    description = (
        "iterating a set or dict view into a float accumulation makes the "
        "result depend on hash/insertion order (the landmark-composition "
        "bug). Wrap the iterable in sorted(...), or use math.fsum for an "
        "order-independent sum.")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        set_names_cache: Dict[int, Set[str]] = {}

        def set_names_for(node: ast.AST) -> Set[str]:
            func = module.enclosing_function(node)
            if func is None:
                return set()
            key = id(func)
            if key not in set_names_cache:
                set_names_cache[key] = set_typed_locals(func)
            return set_names_cache[key]

        for node in ast.walk(module.tree):
            if isinstance(node, ast.For):
                if (is_unordered_iterable(node.iter, set_names_for(node))
                        and _contains_float_accumulation(node.body)):
                    yield self.finding(
                        module, node,
                        "loop accumulates over an unordered iterable; "
                        "iterate 'sorted(...)' so float sums are "
                        "reproducible")
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Name)
                  and node.func.id == "sum" and node.args):
                arg = node.args[0]
                if isinstance(arg, ast.GeneratorExp):
                    if _is_int_valued(arg.elt):
                        continue
                    source = arg.generators[0].iter
                else:
                    source = arg
                if is_unordered_iterable(source, set_names_for(node)):
                    yield self.finding(
                        module, node,
                        "sum() over an unordered iterable is order-"
                        "dependent in float arithmetic; use math.fsum(...) "
                        "or sum(sorted(...))")


# ----------------------------------------------------------------------
# R3 — unseeded-randomness
# ----------------------------------------------------------------------

_RANDOM_MODULE_OK = {"Random", "SystemRandom", "getstate", "setstate"}
_NUMPY_RANDOM_OK = {"default_rng", "Generator", "RandomState", "SeedSequence",
                    "BitGenerator", "PCG64", "Philox", "MT19937"}


@register
class UnseededRandomness(Rule):
    """Module-level ``random.*`` / ``np.random.*`` calls."""

    id = "R3"
    name = "unseeded-randomness"
    description = (
        "calls on the global random/np.random state are unseeded and "
        "unreproducible; thread an injected random.Random(seed) or "
        "numpy Generator through instead (see repro.utils.rng).")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        random_aliases, numpy_aliases, from_imports = self._imports(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in from_imports:
                yield self.finding(
                    module, node,
                    f"'{from_imports[func.id]}' drives the global random "
                    "state; use an injected Random/Generator")
            elif isinstance(func, ast.Attribute):
                target = func.value
                if (isinstance(target, ast.Name)
                        and target.id in random_aliases
                        and func.attr not in _RANDOM_MODULE_OK):
                    yield self.finding(
                        module, node,
                        f"'random.{func.attr}' drives the global random "
                        "state; use an injected random.Random(seed)")
                elif (isinstance(target, ast.Attribute)
                      and target.attr == "random"
                      and isinstance(target.value, ast.Name)
                      and target.value.id in numpy_aliases
                      and func.attr not in _NUMPY_RANDOM_OK):
                    yield self.finding(
                        module, node,
                        f"'np.random.{func.attr}' drives numpy's global "
                        "random state; use np.random.default_rng(seed)")

    @staticmethod
    def _imports(module: ModuleContext) -> tuple:
        random_aliases: Set[str] = set()
        numpy_aliases: Set[str] = set()
        from_imports: Dict[str, str] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        random_aliases.add(alias.asname or "random")
                    elif alias.name == "numpy":
                        numpy_aliases.add(alias.asname or "numpy")
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name not in _RANDOM_MODULE_OK:
                        from_imports[alias.asname or alias.name] = (
                            f"random.{alias.name}")
        return random_aliases, numpy_aliases, from_imports


# ----------------------------------------------------------------------
# R4 — mutable-default
# ----------------------------------------------------------------------

_MUTABLE_CONSTRUCTORS = {"list", "dict", "set", "bytearray", "defaultdict",
                         "OrderedDict", "Counter", "deque"}


@register
class MutableDefault(Rule):
    """Mutable default argument values."""

    id = "R4"
    name = "mutable-default"
    description = (
        "a mutable default is created once and shared across calls; "
        "default to None and construct inside the function.")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        module, default,
                        f"mutable default argument in '{node.name}'; "
                        "use None and build the value per call")

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _MUTABLE_CONSTRUCTORS)


# ----------------------------------------------------------------------
# R5 — unbounded-propagation
# ----------------------------------------------------------------------

_ENGINE_CALL_NAMES = {"single_source_scores", "multi_source", "single_source",
                      "propagate", "katz_scores", "matrix_scores"}
_BOUND_NAME_RE = re.compile(
    r"max_iter|max_iters|max_depth|max_rounds|max_steps|budget|limit"
    r"|tolerance|ttl|deadline")
_GUARDED_DIRS = ("core", "landmarks")


@register
class UnboundedPropagation(Rule):
    """``while`` loops driving propagation without a visible bound."""

    id = "R5"
    name = "unbounded-propagation"
    description = (
        "a while loop in core/ or landmarks/ that spins a propagation "
        "engine (or 'while True') must reference an iteration bound "
        "(max_iter/max_depth/tolerance/...) so divergent parameters "
        "cannot hang a query (Prop. 3 can be violated by config).")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        parts = module.path.replace("\\", "/").split("/")
        if not any(part in _GUARDED_DIRS for part in parts):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.While):
                continue
            constant_true = (isinstance(node.test, ast.Constant)
                             and bool(node.test.value))
            calls_engine = any(
                isinstance(inner, ast.Call)
                and self._call_name(inner) in _ENGINE_CALL_NAMES
                for stmt in node.body for inner in ast.walk(stmt))
            if not (constant_true or calls_engine):
                continue
            if self._references_bound(node):
                continue
            yield self.finding(
                module, node,
                "while loop drives propagation with no visible iteration "
                "bound; gate it on max_iter/max_depth (or check a "
                "tolerance/budget) so it cannot spin forever")

    @staticmethod
    def _call_name(node: ast.Call) -> str:
        if isinstance(node.func, ast.Name):
            return node.func.id
        if isinstance(node.func, ast.Attribute):
            return node.func.attr
        return ""

    @staticmethod
    def _references_bound(node: ast.While) -> bool:
        for inner in ast.walk(node):
            if isinstance(inner, ast.Name) and _BOUND_NAME_RE.search(inner.id):
                return True
            if (isinstance(inner, ast.Attribute)
                    and _BOUND_NAME_RE.search(inner.attr)):
                return True
        return False


# ----------------------------------------------------------------------
# R6 — blind-except
# ----------------------------------------------------------------------

_BROAD_EXCEPTIONS = {"Exception", "BaseException"}


@register
class BlindExcept(Rule):
    """Bare ``except:`` or a broad handler that swallows everything."""

    id = "R6"
    name = "blind-except"
    description = (
        "bare 'except:' (or 'except Exception: pass') hides "
        "ConvergenceError/StorageError bugs as silent wrong answers; "
        "catch the specific repro.errors type, or at least log and "
        "re-raise.")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module, node,
                    "bare 'except:' catches SystemExit/KeyboardInterrupt "
                    "too; name the exception type")
            elif self._is_broad(node.type) and self._swallows(node.body):
                yield self.finding(
                    module, node,
                    "broad exception handler silently swallows the error; "
                    "narrow the type or handle it")

    @staticmethod
    def _is_broad(node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in _BROAD_EXCEPTIONS
        if isinstance(node, ast.Tuple):
            return any(isinstance(el, ast.Name) and el.id in _BROAD_EXCEPTIONS
                       for el in node.elts)
        return False

    @staticmethod
    def _swallows(body: Sequence[ast.stmt]) -> bool:
        return all(
            isinstance(stmt, (ast.Pass, ast.Continue))
            or (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant))
            for stmt in body)


# ----------------------------------------------------------------------
# R7 — raw-timing
# ----------------------------------------------------------------------

_CLOCK_FUNCTIONS = {"time", "perf_counter", "monotonic", "process_time",
                    "thread_time", "time_ns", "perf_counter_ns",
                    "monotonic_ns", "process_time_ns", "thread_time_ns"}
_OBS_EXEMPT_DIRS = ("obs",)


@register
class RawTiming(Rule):
    """Raw ``time.*`` clock reads in library code outside ``repro.obs``."""

    id = "R7"
    name = "raw-timing"
    description = (
        "raw time.time()/perf_counter() calls in src/ scatter ad-hoc "
        "timing that the observability layer cannot see; measure through "
        "repro.obs (span/timed_span or Stopwatch from repro.obs.clock) "
        "so every stage shows up in one report.")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        parts = module.path.replace("\\", "/").split("/")
        if "src" not in parts:
            return
        if any(part in _OBS_EXEMPT_DIRS for part in parts):
            return
        time_aliases, from_imports = self._imports(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in from_imports:
                yield self.finding(
                    module, node,
                    f"'{from_imports[func.id]}' is a raw clock read; time "
                    "through repro.obs (span/timed_span or obs.clock) "
                    "instead")
            elif (isinstance(func, ast.Attribute)
                  and isinstance(func.value, ast.Name)
                  and func.value.id in time_aliases
                  and func.attr in _CLOCK_FUNCTIONS):
                yield self.finding(
                    module, node,
                    f"'time.{func.attr}' is a raw clock read; time through "
                    "repro.obs (span/timed_span or obs.clock) instead")

    @staticmethod
    def _imports(module: ModuleContext) -> tuple:
        time_aliases: Set[str] = set()
        from_imports: Dict[str, str] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _CLOCK_FUNCTIONS:
                        from_imports[alias.asname or alias.name] = (
                            f"time.{alias.name}")
        return time_aliases, from_imports


# ----------------------------------------------------------------------
# R8 — private-graph-access
# ----------------------------------------------------------------------

_PRIVATE_GRAPH_ATTRS = {"_out", "_in", "_node_topics"}
_GRAPH_EXEMPT_DIRS = ("graph",)


@register
class PrivateGraphAccess(Rule):
    """``._out``/``._in``/``._node_topics`` reads outside ``graph/``."""

    id = "R8"
    name = "private-graph-access"
    description = (
        "touching a graph's private adjacency dicts (._out/._in/"
        "._node_topics) outside graph/ bypasses the frozen GraphSnapshot "
        "read path, so the reader can observe a mutation mid-propagation "
        "and its epoch is unaccounted for; go through graph.snapshot() "
        "or the public accessors instead.")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        parts = module.path.replace("\\", "/").split("/")
        if any(part in _GRAPH_EXEMPT_DIRS for part in parts):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr not in _PRIVATE_GRAPH_ATTRS:
                continue
            yield self.finding(
                module, node,
                f"'.{node.attr}' reaches into the graph's private "
                "adjacency state; read through graph.snapshot() (or the "
                "public accessors) so the access is epoch-consistent")


# ----------------------------------------------------------------------
# R9 — tuple-returning-recommend
# ----------------------------------------------------------------------

_API_MODULE_FILES = ("api.py",)
_TUPLE_PAIR_ANNOTATION_RE = re.compile(
    r"Tuple\[\s*int\s*,\s*(float|int)\s*\]")


@register
class TupleReturningRecommend(Rule):
    """``recommend``-named functions returning bare ``(node, score)``."""

    id = "R9"
    name = "tuple-returning-recommend"
    description = (
        "a recommend-named function returning bare (node, score) tuples "
        "resurrects the pre-repro.api surface the serving tier cannot "
        "sit in front of; return a repro.api.RecommendationResponse "
        "(sanctioned deprecation shims suppress this on the def line).")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        parts = module.path.replace("\\", "/").split("/")
        if "src" not in parts:
            return
        if parts[-1] in _API_MODULE_FILES:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not node.name.startswith("recommend"):
                continue
            if (self._pair_annotation(node.returns)
                    or self._returns_pair_literal(node)):
                yield self.finding(
                    module, node,
                    f"'{node.name}' returns bare (node, score) tuples; new "
                    "recommendation entry points must return a "
                    "repro.api.RecommendationResponse (wrap via "
                    "response_from_pairs)")

    @staticmethod
    def _pair_annotation(annotation: Optional[ast.expr]) -> bool:
        return bool(
            _TUPLE_PAIR_ANNOTATION_RE.search(_annotation_text(annotation)))

    @staticmethod
    def _returns_pair_literal(func: ast.FunctionDef) -> bool:
        for node in ast.walk(func):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            value = node.value
            if isinstance(value, ast.Tuple) and len(value.elts) == 2:
                return True
            if isinstance(value, ast.List) and any(
                    isinstance(el, ast.Tuple) for el in value.elts):
                return True
            if (isinstance(value, ast.ListComp)
                    and isinstance(value.elt, ast.Tuple)):
                return True
        return False


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in id order."""
    return [REGISTRY[rule_id]() for rule_id in sorted(REGISTRY)]
