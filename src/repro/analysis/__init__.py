"""Repo-specific static analysis: custom AST lints for the repro tree.

``python -m repro.analysis [paths]`` runs six rules that encode the
invariants this codebase keeps re-learning by fixing bugs — falsy
``or``-fallbacks on numeric parameters, nondeterministic set/dict
iteration feeding float accumulation, unseeded randomness, mutable
defaults, unbounded propagation loops, and blind exception handlers.
See ``docs/ANALYSIS.md`` for each rule's motivating bug, the
``# repro: ignore[RULE] -- why`` suppression syntax, and how to add a
rule.

Public surface:

- :func:`check_source` / :func:`check_paths` — run the pass in-process
  (the test fixtures drive rules through :func:`check_source`);
- :class:`Finding` — one violation;
- :class:`Rule` / :func:`register` / :data:`REGISTRY` — the plug-in
  point for new rules.
"""

from .engine import check_file, check_paths, check_source
from .findings import Finding
from .rules import REGISTRY, Rule, all_rules, register

__all__ = [
    "Finding",
    "REGISTRY",
    "Rule",
    "all_rules",
    "check_file",
    "check_paths",
    "check_source",
    "register",
]
