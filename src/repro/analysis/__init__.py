"""Repo-specific static analysis: custom AST lints for the repro tree.

``python -m repro.analysis [paths]`` runs two passes. The **per-file
pass** (rules ``R1``–``R9``) encodes the invariants this codebase
keeps re-learning by fixing bugs — falsy ``or``-fallbacks on numeric
parameters, nondeterministic set/dict iteration feeding float
accumulation, unseeded randomness, mutable defaults, unbounded
propagation loops, blind exception handlers, raw clock reads, private
graph access, and tuple-returning recommenders. The **project pass**
(rules ``W1``–``W4``) parses the whole package once, resolves imports
and name bindings into an import graph and a conservative call graph,
and checks the cross-module invariants no single file can see:
package layering against the checked-in ``layers.toml``, dropped
``allow_stale``-style flags at call boundaries, exception contracts
on the serving surface, and dead public API. See ``docs/ANALYSIS.md``
for each rule's motivating bug, the ``# repro: ignore[RULE] -- why``
suppression syntax, and how to add a rule.

Public surface:

- :func:`check_source` / :func:`check_paths` — run the pass
  in-process (the test fixtures drive rules through
  :func:`check_source`);
- :func:`run_analysis` — both passes plus cache statistics
  (:class:`AnalysisRun`);
- :class:`Finding` — one violation;
- :class:`Rule` / :func:`register` / :data:`REGISTRY` — the plug-in
  point for per-file rules;
- :class:`ProjectRule` / :func:`register_project` /
  :data:`PROJECT_REGISTRY` — the plug-in point for whole-program
  rules (driven by :func:`run_project_rules` over
  :class:`ModuleSummary` facts).
"""

from .engine import (AnalysisRun, UnknownRuleError, check_file, check_paths,
                     check_source, iter_python_files, run_analysis)
from .findings import Finding
from .modgraph import ModuleSummary, summarize_module
from .project import (PROJECT_REGISTRY, LayersConfig, LayersConfigError,
                      ProjectRule, all_project_rules, layer_of,
                      load_layers_config,
                      register_project, render_layering_dag,
                      run_project_rules)
from .rules import REGISTRY, Rule, all_rules, register
from .sarif import render_sarif

__all__ = [
    "AnalysisRun",
    "Finding",
    "LayersConfig",
    "LayersConfigError",
    "ModuleSummary",
    "PROJECT_REGISTRY",
    "ProjectRule",
    "REGISTRY",
    "Rule",
    "UnknownRuleError",
    "all_project_rules",
    "all_rules",
    "check_file",
    "check_paths",
    "check_source",
    "iter_python_files",
    "layer_of",
    "load_layers_config",
    "register",
    "register_project",
    "render_layering_dag",
    "render_sarif",
    "run_analysis",
    "run_project_rules",
    "summarize_module",
]
