"""Finding records produced by the static-analysis pass.

A :class:`Finding` pins one rule violation to a file, line and column.
Findings are plain data so that the reporters (text, JSON) and the test
suite can consume them without touching the AST machinery.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a concrete source location.

    Attributes:
        path: File the finding is in, as given to the runner.
        line: 1-based line of the offending node.
        col: 0-based column of the offending node.
        rule: Rule identifier (``R1`` … ``R6``, or ``R0`` for
            suppression-hygiene findings raised by the engine itself).
        message: Human-readable explanation with the suggested fix.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable representation."""
        return asdict(self)

    def render(self) -> str:
        """``path:line:col: RULE message`` — the text-report line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
