"""Per-line suppression comments for the static-analysis pass.

Syntax, on the same line as the finding::

    frontier = set(nodes)  # repro: ignore[R2] -- iteration order irrelevant: feeds a set union

Several rules may be silenced at once (``ignore[R1,R2]``). The text
after ``--`` is the *justification* and is mandatory: a suppression
without one is itself reported as an ``R0`` finding, as is a
suppression naming an unknown rule. This keeps the acceptance
criterion — "every suppression carries a justification" — mechanical
rather than a review convention.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, List

SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore\[([A-Za-z0-9_,\s]+)\]\s*(?:--\s*(\S.*))?")


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# repro: ignore[...]`` comment."""

    line: int
    rules: tuple
    justification: str

    def covers(self, rule: str) -> bool:
        """Whether this comment silences *rule* on its line."""
        return rule in self.rules


def parse_suppressions(source: str) -> Dict[int, Suppression]:
    """Map line number -> suppression for every ignore comment in *source*.

    Tokenizes rather than regex-scanning raw lines so that ``repro:
    ignore`` inside string literals does not count.
    """
    suppressions: Dict[int, Suppression] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return suppressions
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        rules = tuple(part.strip() for part in match.group(1).split(",")
                      if part.strip())
        justification = (match.group(2) or "").strip()
        suppressions[token.start[0]] = Suppression(
            line=token.start[0], rules=rules, justification=justification)
    return suppressions


def hygiene_messages(suppression: Suppression,
                     known_rules: List[str]) -> List[str]:
    """R0 complaints about a suppression comment itself, if any."""
    messages: List[str] = []
    if not suppression.justification:
        messages.append(
            "suppression lacks a justification: write "
            "'# repro: ignore[RULE] -- why this is safe'")
    for rule in suppression.rules:
        if rule not in known_rules:
            messages.append(
                f"suppression names unknown rule {rule!r} "
                f"(known: {', '.join(sorted(known_rules))})")
    return messages
