"""Per-module summaries for the whole-program analysis pass.

The project rules (W1–W4, :mod:`repro.analysis.project`) never touch an
AST: they consume :class:`ModuleSummary` facts extracted here, one
summary per file. A summary is a pure function of the file's bytes, is
JSON-round-trippable, and is therefore the unit the incremental cache
(:mod:`repro.analysis.cache`) persists — a warm run rebuilds the import
graph and call graph from cached summaries without re-parsing a single
unchanged module.

What a summary records:

- **imports** — every ``import``/``from ... import``, resolved to a
  dotted ``repro.*`` target where possible, flagged ``deferred`` when
  it executes inside a function (or under ``TYPE_CHECKING``) — the
  sanctioned cycle-breaking idiom W1 treats separately;
- **functions / classes** — parameters, decorators, call sites (with
  the keyword names passed and the exception types the enclosing
  ``try`` blocks catch), and the exception names each function can
  raise past its own handlers;
- **refs** — every name the module mentions, split into body
  references and import references so W4 can discount pure
  ``__init__`` re-exports;
- **suppressions** — the file's ``# repro: ignore[...]`` comments, so
  cached project findings are filtered without re-tokenizing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from .suppress import parse_suppressions

#: Bump when the summary shape changes; part of the cache key so stale
#: cache files from older versions of the analyzer are ignored.
SUMMARY_VERSION = 1


@dataclass(frozen=True)
class ImportEdge:
    """One import statement, resolved as far as the AST allows.

    Attributes:
        target: Dotted module the statement names (``repro.graph``;
            relative imports are resolved against the importing
            module). Non-``repro`` targets are recorded too — W1
            ignores them, but the call-graph binding logic needs them.
        names: For ``from X import a, b`` the imported names; empty
            for a plain ``import X``.
        line: 1-based line of the statement.
        deferred: True when the import executes inside a function
            body or under ``if TYPE_CHECKING:`` — i.e. not at module
            load time.
    """

    target: str
    names: Tuple[str, ...]
    line: int
    deferred: bool

    def to_dict(self) -> Dict[str, Any]:
        return {"target": self.target, "names": list(self.names),
                "line": self.line, "deferred": self.deferred}

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "ImportEdge":
        return ImportEdge(target=data["target"], names=tuple(data["names"]),
                          line=data["line"], deferred=data["deferred"])


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body.

    Attributes:
        callee: Dotted text of the called expression (``"f"``,
            ``"self.recommend"``, ``"module.Class"``); empty when the
            callee is not a name/attribute chain.
        line: 1-based line of the call.
        keywords: Keyword-argument names passed explicitly.
        has_star_kwargs: Whether the call passes ``**something``.
        arg_names: Plain variable names appearing anywhere in the
            argument expressions — ``f(allow_stale)`` forwards the
            flag positionally and W2 must see that.
        caught: Exception type names caught by ``try`` blocks
            enclosing this call (within the same function) whose
            handlers actually recover (no bare ``raise``).
    """

    callee: str
    line: int
    keywords: Tuple[str, ...]
    has_star_kwargs: bool
    arg_names: Tuple[str, ...]
    caught: Tuple[str, ...]

    def to_dict(self) -> Dict[str, Any]:
        return {"callee": self.callee, "line": self.line,
                "keywords": list(self.keywords),
                "has_star_kwargs": self.has_star_kwargs,
                "arg_names": list(self.arg_names),
                "caught": list(self.caught)}

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "CallSite":
        return CallSite(callee=data["callee"], line=data["line"],
                        keywords=tuple(data["keywords"]),
                        has_star_kwargs=data["has_star_kwargs"],
                        arg_names=tuple(data["arg_names"]),
                        caught=tuple(data["caught"]))


@dataclass(frozen=True)
class FunctionSummary:
    """One function or method, flattened (nested defs fold into it)."""

    qualname: str
    name: str
    line: int
    params: Tuple[str, ...]
    has_kwargs: bool
    decorators: Tuple[str, ...]
    raises: Tuple[str, ...]
    calls: Tuple[CallSite, ...]
    refs: Tuple[str, ...]
    is_public: bool

    def accepts(self, param: str) -> bool:
        """Whether *param* is an explicitly named parameter."""
        return param in self.params

    def to_dict(self) -> Dict[str, Any]:
        return {"qualname": self.qualname, "name": self.name,
                "line": self.line, "params": list(self.params),
                "has_kwargs": self.has_kwargs,
                "decorators": list(self.decorators),
                "raises": list(self.raises),
                "calls": [call.to_dict() for call in self.calls],
                "refs": list(self.refs), "is_public": self.is_public}

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "FunctionSummary":
        return FunctionSummary(
            qualname=data["qualname"], name=data["name"], line=data["line"],
            params=tuple(data["params"]), has_kwargs=data["has_kwargs"],
            decorators=tuple(data["decorators"]), raises=tuple(data["raises"]),
            calls=tuple(CallSite.from_dict(c) for c in data["calls"]),
            refs=tuple(data["refs"]), is_public=data["is_public"])


@dataclass(frozen=True)
class ClassSummary:
    """One top-level class: bases, decorators, and its methods."""

    name: str
    line: int
    bases: Tuple[str, ...]
    decorators: Tuple[str, ...]
    methods: Tuple[FunctionSummary, ...]
    is_public: bool

    def method(self, name: str) -> Optional[FunctionSummary]:
        for candidate in self.methods:
            if candidate.name == name:
                return candidate
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "line": self.line,
                "bases": list(self.bases),
                "decorators": list(self.decorators),
                "methods": [m.to_dict() for m in self.methods],
                "is_public": self.is_public}

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "ClassSummary":
        return ClassSummary(
            name=data["name"], line=data["line"], bases=tuple(data["bases"]),
            decorators=tuple(data["decorators"]),
            methods=tuple(FunctionSummary.from_dict(m)
                          for m in data["methods"]),
            is_public=data["is_public"])


@dataclass(frozen=True)
class ModuleSummary:
    """Everything the project rules need to know about one file."""

    path: str
    module: Optional[str]
    is_package_init: bool
    imports: Tuple[ImportEdge, ...]
    functions: Tuple[FunctionSummary, ...]
    classes: Tuple[ClassSummary, ...]
    bindings: Mapping[str, str] = field(default_factory=dict)
    body_refs: Tuple[str, ...] = ()
    import_refs: Tuple[str, ...] = ()
    exports: Tuple[str, ...] = ()
    suppressions: Mapping[int, Tuple[Tuple[str, ...], str]] = field(
        default_factory=dict)

    def all_functions(self) -> List[FunctionSummary]:
        """Top-level functions plus every method, flattened."""
        out = list(self.functions)
        for cls in self.classes:
            out.extend(cls.methods)
        return out

    def class_named(self, name: str) -> Optional[ClassSummary]:
        for cls in self.classes:
            if cls.name == name:
                return cls
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path, "module": self.module,
            "is_package_init": self.is_package_init,
            "imports": [edge.to_dict() for edge in self.imports],
            "functions": [f.to_dict() for f in self.functions],
            "classes": [c.to_dict() for c in self.classes],
            "bindings": dict(self.bindings),
            "body_refs": list(self.body_refs),
            "import_refs": list(self.import_refs),
            "exports": list(self.exports),
            "suppressions": {str(line): [list(rules), justification]
                             for line, (rules, justification)
                             in self.suppressions.items()},
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "ModuleSummary":
        return ModuleSummary(
            path=data["path"], module=data["module"],
            is_package_init=data["is_package_init"],
            imports=tuple(ImportEdge.from_dict(e) for e in data["imports"]),
            functions=tuple(FunctionSummary.from_dict(f)
                            for f in data["functions"]),
            classes=tuple(ClassSummary.from_dict(c) for c in data["classes"]),
            bindings=dict(data["bindings"]),
            body_refs=tuple(data["body_refs"]),
            import_refs=tuple(data["import_refs"]),
            exports=tuple(data["exports"]),
            suppressions={int(line): (tuple(rules), justification)
                          for line, (rules, justification)
                          in data["suppressions"].items()})


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------

def module_name_for_path(path: str) -> Optional[str]:
    """Dotted module name for *path*, or None outside a ``repro`` tree.

    The package root is located by path segment, so fixture trees like
    ``<tmp>/repro/core/evil.py`` resolve exactly like
    ``src/repro/core/exact.py`` does.
    """
    parts = path.replace("\\", "/").split("/")
    if "repro" not in parts:
        return None
    start = len(parts) - 1 - parts[::-1].index("repro")
    dotted = [part for part in parts[start:]]
    leaf = dotted[-1]
    if not leaf.endswith(".py"):
        return None
    dotted[-1] = leaf[:-3]
    if dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted)


def _dotted_text(node: ast.expr) -> str:
    """``a.b.c`` for a name/attribute chain; '' for anything else."""
    parts: List[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return ""


def _exception_name(node: Optional[ast.expr]) -> str:
    """Type name raised/caught: tail of a dotted chain, '' if opaque."""
    if node is None:
        return ""
    if isinstance(node, ast.Call):
        node = node.func
    text = _dotted_text(node)
    return text.rsplit(".", 1)[-1] if text else ""


def _handler_catches(handler: ast.ExceptHandler) -> Tuple[str, ...]:
    """Exception names a handler catches *and recovers from*.

    A handler whose body re-raises (bare ``raise``) does not stop the
    exception, so it contributes nothing here.
    """
    for stmt in ast.walk(handler):
        if isinstance(stmt, ast.Raise) and stmt.exc is None:
            return ()
    node = handler.type
    if node is None:
        return ("BaseException",)
    if isinstance(node, ast.Tuple):
        names = tuple(_exception_name(el) for el in node.elts)
        return tuple(name for name in names if name)
    name = _exception_name(node)
    return (name,) if name else ()


def _param_names(func: ast.FunctionDef, is_method: bool) -> Tuple[str, ...]:
    args = func.args
    names = [arg.arg for arg in args.posonlyargs]
    names += [arg.arg for arg in args.args]
    names += [arg.arg for arg in args.kwonlyargs]
    if is_method and names and names[0] in ("self", "cls"):
        names = names[1:]
    return tuple(names)


def _is_type_checking_test(test: ast.expr) -> bool:
    text = _dotted_text(test)
    return text.endswith("TYPE_CHECKING")


class _FunctionVisitor:
    """Collects calls, raises, and refs for one function subtree.

    Nested ``def``s are folded into the enclosing function: their call
    sites and raises belong, conservatively, to the code object the
    caller actually invokes.
    """

    def __init__(self) -> None:
        self.calls: List[CallSite] = []
        self.raises: Set[str] = set()
        self.refs: Set[str] = set()

    def visit(self, body: Sequence[ast.stmt],
              caught: Tuple[str, ...]) -> None:
        for stmt in body:
            self._visit_stmt(stmt, caught)

    def _visit_stmt(self, stmt: ast.stmt, caught: Tuple[str, ...]) -> None:
        if isinstance(stmt, ast.Try):
            recovered: List[str] = list(caught)
            for handler in stmt.handlers:
                recovered.extend(_handler_catches(handler))
            self.visit(stmt.body, tuple(recovered))
            for handler in stmt.handlers:
                self.visit(handler.body, caught)
            self.visit(stmt.orelse, caught)
            self.visit(stmt.finalbody, caught)
            return
        if isinstance(stmt, ast.Raise):
            name = _exception_name(stmt.exc)
            if name and name not in caught:
                self.raises.add(name)
            if stmt.exc is not None:
                self._visit_expr_children(stmt.exc, caught)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.visit(stmt.body, caught)
            for decorator in stmt.decorator_list:
                self._visit_expr_children(decorator, caught)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._visit_stmt(child, caught)
            elif isinstance(child, ast.expr):
                self._visit_expr_children(child, caught)

    def _visit_expr_children(self, expr: ast.expr,
                             caught: Tuple[str, ...]) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Name):
                self.refs.add(node.id)
            elif isinstance(node, ast.Attribute):
                self.refs.add(node.attr)
            elif isinstance(node, ast.Call):
                self._record_call(node, caught)

    def _record_call(self, node: ast.Call, caught: Tuple[str, ...]) -> None:
        callee = _dotted_text(node.func)
        keywords = tuple(kw.arg for kw in node.keywords
                         if kw.arg is not None)
        has_star = any(kw.arg is None for kw in node.keywords)
        arg_names: Set[str] = set()
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Name):
                    arg_names.add(sub.id)
        self.calls.append(CallSite(
            callee=callee, line=node.lineno, keywords=keywords,
            has_star_kwargs=has_star, arg_names=tuple(sorted(arg_names)),
            caught=caught))


def _summarize_function(func: ast.FunctionDef, qualname: str,
                        is_method: bool) -> FunctionSummary:
    visitor = _FunctionVisitor()
    visitor.visit(func.body, ())
    decorators = tuple(text for text in
                       (_dotted_text(d.func if isinstance(d, ast.Call) else d)
                        for d in func.decorator_list) if text)
    return FunctionSummary(
        qualname=qualname, name=func.name, line=func.lineno,
        params=_param_names(func, is_method),
        has_kwargs=func.args.kwarg is not None,
        decorators=decorators,
        raises=tuple(sorted(visitor.raises)),
        calls=tuple(visitor.calls),
        refs=tuple(sorted(visitor.refs)),
        is_public=not func.name.startswith("_"))


def _extract_all(body: Sequence[ast.stmt]) -> Tuple[str, ...]:
    for stmt in body:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
            value: Optional[ast.expr] = stmt.value
        elif isinstance(stmt, ast.AugAssign):
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        if not any(isinstance(t, ast.Name) and t.id == "__all__"
                   for t in targets):
            continue
        if isinstance(value, (ast.List, ast.Tuple)):
            names = [el.value for el in value.elts
                     if isinstance(el, ast.Constant)
                     and isinstance(el.value, str)]
            return tuple(names)
    return ()


def _resolve_relative(module: Optional[str], is_package_init: bool,
                      level: int, target: Optional[str]) -> str:
    """Absolute dotted target of a relative import, best effort."""
    if module is None:
        return target if target is not None else ""
    parts = module.split(".")
    package_parts = parts if is_package_init else parts[:-1]
    base = package_parts[:len(package_parts) - (level - 1)] if level > 1 \
        else package_parts
    if target:
        base = base + target.split(".")
    return ".".join(base)


def summarize_module(source: str, path: str,
                     tree: Optional[ast.Module] = None) -> ModuleSummary:
    """Extract the :class:`ModuleSummary` for one parsed file.

    Args:
        source: File contents (drives suppression parsing).
        path: Path string as given to the runner.
        tree: Pre-parsed AST to reuse; parsed from *source* if absent.

    Raises:
        SyntaxError: if *source* must be parsed and does not parse.
    """
    if tree is None:
        tree = ast.parse(source, filename=path)
    is_package_init = path.replace("\\", "/").endswith("__init__.py")
    module = module_name_for_path(path)

    imports: List[ImportEdge] = []
    bindings: Dict[str, str] = {}
    functions: List[FunctionSummary] = []
    classes: List[ClassSummary] = []
    body_refs: Set[str] = set()
    import_refs: Set[str] = set()

    deferred_nodes: Set[int] = set()
    for node in ast.walk(tree):
        deferred = isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
            or (isinstance(node, ast.If)
                and _is_type_checking_test(node.test))
        if deferred:
            for sub in ast.walk(node):
                if sub is not node:
                    deferred_nodes.add(id(sub))

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports.append(ImportEdge(
                    target=alias.name, names=(), line=node.lineno,
                    deferred=id(node) in deferred_nodes))
                if id(node) not in deferred_nodes:
                    bindings[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else
                        alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                target = _resolve_relative(module, is_package_init,
                                           node.level, node.module)
            else:
                target = node.module if node.module is not None else ""
            names = tuple(alias.name for alias in node.names)
            imports.append(ImportEdge(
                target=target, names=names, line=node.lineno,
                deferred=id(node) in deferred_nodes))
            for alias in node.names:
                import_refs.add(alias.name)
                if id(node) not in deferred_nodes and target:
                    bindings[alias.asname or alias.name] = (
                        f"{target}.{alias.name}")

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.append(_summarize_function(stmt, stmt.name, False))
            bindings[stmt.name] = stmt.name
        elif isinstance(stmt, ast.ClassDef):
            methods = tuple(
                _summarize_function(sub, f"{stmt.name}.{sub.name}", True)
                for sub in stmt.body
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)))
            bases = tuple(text for text in
                          (_dotted_text(b) for b in stmt.bases) if text)
            decorators = tuple(
                text for text in
                (_dotted_text(d.func if isinstance(d, ast.Call) else d)
                 for d in stmt.decorator_list) if text)
            classes.append(ClassSummary(
                name=stmt.name, line=stmt.lineno, bases=bases,
                decorators=decorators, methods=methods,
                is_public=not stmt.name.startswith("_")))
            bindings[stmt.name] = stmt.name

    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            body_refs.add(node.id)
        elif isinstance(node, ast.Attribute):
            body_refs.add(node.attr)

    suppressions = {
        suppression.line: (tuple(suppression.rules),
                           suppression.justification)
        for suppression in parse_suppressions(source).values()}

    return ModuleSummary(
        path=path, module=module, is_package_init=is_package_init,
        imports=tuple(imports), functions=tuple(functions),
        classes=tuple(classes), bindings=bindings,
        body_refs=tuple(sorted(body_refs)),
        import_refs=tuple(sorted(import_refs)),
        exports=_extract_all(tree.body),
        suppressions=suppressions)


def package_of(module: str) -> Optional[str]:
    """Top-level ``repro`` subpackage a dotted module belongs to.

    ``repro.core.exact`` → ``core``; ``repro`` itself (the package
    ``__init__``) → ``root``; non-``repro`` modules → None.
    """
    parts = module.split(".")
    if parts[0] != "repro":
        return None
    if len(parts) == 1:
        return "root"
    return parts[1]


def resolve_import_targets(edge: ImportEdge,
                           known_modules: Set[str]) -> List[str]:
    """Most-specific modules an import edge names.

    ``from repro import obs`` resolves to ``repro.obs`` (a known
    module) rather than the package root; ``from repro.graph.snapshot
    import GraphSnapshot`` stays pinned to the module because the
    joined name is not itself a module.
    """
    if not edge.names:
        return [edge.target]
    resolved: List[str] = []
    for name in edge.names:
        joined = f"{edge.target}.{name}"
        resolved.append(joined if joined in known_modules else edge.target)
    seen: Set[str] = set()
    unique: List[str] = []
    for target in resolved:
        if target not in seen:
            seen.add(target)
            unique.append(target)
    return unique


def collect_refs(summaries: Iterable[ModuleSummary],
                 count_init_reexports: bool = False) -> Dict[str, Set[str]]:
    """Name → set of module paths referencing it, across *summaries*.

    Import references inside package ``__init__`` files are excluded
    unless *count_init_reexports* — a façade re-export alone must not
    keep a dead API alive (W4).
    """
    usage: Dict[str, Set[str]] = {}
    for summary in summaries:
        names: Set[str] = set(summary.body_refs)
        if count_init_reexports or not summary.is_package_init:
            names.update(summary.import_refs)
        for name in names:
            usage.setdefault(name, set()).add(summary.path)
    return usage
