"""Runner: parse files, apply rules, honour suppressions.

The engine is deliberately small — rules do the analysis, this module
does I/O, suppression filtering, and the ``R0`` suppression-hygiene
findings (a suppression missing its justification, or naming an
unknown rule, is itself an unsuppressible finding).

Two passes run over the input set:

1. the **per-file pass** (rules ``R1``…, :mod:`repro.analysis.rules`)
   lints each file in isolation;
2. the **project pass** (rules ``W1``…,
   :mod:`repro.analysis.project`) assembles every file's
   :class:`~repro.analysis.modgraph.ModuleSummary` into import and
   call graphs and checks whole-program invariants.

Both passes share the incremental cache
(:mod:`repro.analysis.cache`): per-file findings and summaries are
pure functions of a file's bytes, so a warm run re-parses only the
files whose content hash changed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from .cache import AnalysisCache, content_digest
from .findings import Finding
from .modgraph import ModuleSummary, summarize_module
from .project import PROJECT_REGISTRY, run_project_rules
from .rules import REGISTRY, ModuleContext, Rule, all_rules
from .suppress import hygiene_messages, parse_suppressions


class UnknownRuleError(ValueError):
    """A rule id was selected that no registry knows.

    Attributes:
        unknown: The offending ids, in the order given.
        known: Every valid id (per-file and project rules).
    """

    def __init__(self, unknown: Sequence[str], known: Sequence[str]) -> None:
        self.unknown = list(unknown)
        self.known = sorted(known)
        super().__init__(
            f"unknown rule id(s): {', '.join(self.unknown)} "
            f"(known: {', '.join(self.known)})")


def known_rule_ids() -> List[str]:
    """Every selectable rule id: per-file ``R*`` plus project ``W*``."""
    return sorted(list(REGISTRY) + list(PROJECT_REGISTRY))


def validate_select(select: Sequence[str]) -> None:
    """Raise :class:`UnknownRuleError` on ids no registry knows."""
    unknown = [rule_id for rule_id in select
               if rule_id not in REGISTRY and rule_id not in PROJECT_REGISTRY]
    if unknown:
        raise UnknownRuleError(unknown, known_rule_ids())


def check_source(source: str, path: str = "<string>",
                 rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Lint a source string; returns unsuppressed findings, sorted.

    Runs the per-file rules only — project rules need the whole
    package and are driven through :func:`run_analysis`.

    Raises:
        SyntaxError: if *source* does not parse — a file the linter
            cannot read must fail loudly, not pass silently.
    """
    findings, _ = _analyze_source(source, path=path, rules=rules,
                                  want_summary=False)
    return findings


def _analyze_source(
        source: str, path: str,
        rules: Optional[Sequence[Rule]] = None,
        want_summary: bool = True,
) -> Tuple[List[Finding], Optional[ModuleSummary]]:
    """One parse feeding both the per-file rules and the summary."""
    tree = ast.parse(source, filename=path)
    module = ModuleContext(path=path, source=source, tree=tree)
    active = list(rules) if rules is not None else all_rules()
    suppressions = parse_suppressions(source)
    # R0 is a legal id to *name* (the hygiene docs mention it) but
    # suppressing it has no effect: R0 findings are added after the
    # suppression filter below.
    known = ["R0"] + known_rule_ids()

    findings: List[Finding] = []
    for rule in active:
        for finding in rule.check(module):
            suppression = suppressions.get(finding.line)
            if suppression is not None and suppression.covers(finding.rule):
                continue
            findings.append(finding)

    # Suppression hygiene (R0): never suppressible, always checked.
    for suppression in suppressions.values():
        for message in hygiene_messages(suppression, known):
            findings.append(Finding(path=path, line=suppression.line, col=0,
                                    rule="R0", message=message))
    summary = summarize_module(source, path, tree=tree) if want_summary \
        else None
    return sorted(findings), summary


def check_file(path: Path,
               rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Lint one file. Syntax errors become a single R0 finding."""
    source = path.read_text(encoding="utf-8")
    try:
        return check_source(source, path=str(path), rules=rules)
    except SyntaxError as exc:
        return [Finding(path=str(path), line=exc.lineno or 1, col=0,
                        rule="R0", message=f"file does not parse: {exc.msg}")]


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files.

    Overlapping inputs (``src src/repro``, a directory plus a file
    inside it, the same path twice) are deduplicated by resolved
    path, so no file is ever linted — or double-reported — twice.
    """
    files: List[Path] = []
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            raise FileNotFoundError(f"not a python file or directory: {raw}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(candidate)
    return sorted(files)


@dataclass
class AnalysisRun:
    """Everything one :func:`run_analysis` invocation produced.

    Attributes:
        findings: Sorted, unsuppressed findings from both passes.
        files: The deduplicated input set.
        parsed: Files actually parsed this run (cache misses).
        cache_hits: Files served from the incremental cache.
        cache_misses: Files the cache could not serve.
    """

    findings: List[Finding] = field(default_factory=list)
    files: List[Path] = field(default_factory=list)
    parsed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0


def run_analysis(paths: Iterable[str],
                 select: Optional[Sequence[str]] = None,
                 cache_path: Optional[Path] = None) -> AnalysisRun:
    """Run both passes over every python file under *paths*.

    Args:
        paths: Files or directories.
        select: Rule ids to report (default: all, per-file and
            project). The per-file pass always computes all rules so
            the cache stores complete results; *select* filters what
            is reported.
        cache_path: Incremental-cache location; None disables caching.

    Raises:
        UnknownRuleError: if *select* names an unregistered rule.
        LayersConfigError: if the layering config is unreadable or
            cyclic.
    """
    if select is not None:
        validate_select(select)
    run = AnalysisRun(files=iter_python_files(paths))
    cache = AnalysisCache(cache_path)
    selected_file_rules = None if select is None else \
        [rule_id for rule_id in select if rule_id in REGISTRY]
    selected_project_rules = None if select is None else \
        [rule_id for rule_id in select if rule_id in PROJECT_REGISTRY]

    summaries: List[ModuleSummary] = []
    per_file: List[Finding] = []
    for path in run.files:
        path_key = str(path)
        data = path.read_bytes()
        digest = content_digest(data)
        cached = cache.lookup(path_key, digest)
        if cached is not None:
            findings, summary = cached
        else:
            run.parsed += 1
            source = data.decode("utf-8")
            try:
                findings, summary = _analyze_source(source, path=path_key)
            except SyntaxError as exc:
                findings = [Finding(
                    path=path_key, line=exc.lineno or 1, col=0, rule="R0",
                    message=f"file does not parse: {exc.msg}")]
                summary = None
            cache.store(path_key, digest, findings, summary)
        if summary is not None:
            summaries.append(summary)
        if selected_file_rules is None:
            per_file.extend(findings)
        else:
            wanted = set(selected_file_rules) | {"R0"}
            per_file.extend(f for f in findings if f.rule in wanted)

    run.cache_hits = cache.hits
    run.cache_misses = cache.misses

    project_findings: List[Finding] = []
    if selected_project_rules is None or selected_project_rules:
        project_findings = run_project_rules(
            summaries, select=selected_project_rules)

    cache.save()
    run.findings = sorted(per_file + project_findings)
    return run


def check_paths(paths: Iterable[str],
                select: Optional[Sequence[str]] = None) -> List[Finding]:
    """Lint every python file under *paths* (both passes).

    Args:
        paths: Files or directories.
        select: Rule ids to run (default: all registered rules).

    Raises:
        UnknownRuleError: if *select* names an unregistered rule.
    """
    return run_analysis(paths, select=select).findings
