"""Runner: parse files, apply rules, honour suppressions.

The engine is deliberately small — rules do the analysis, this module
does I/O, suppression filtering, and the ``R0`` suppression-hygiene
findings (a suppression missing its justification, or naming an
unknown rule, is itself an unsuppressible finding).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from .findings import Finding
from .rules import REGISTRY, ModuleContext, Rule, all_rules
from .suppress import hygiene_messages, parse_suppressions


def check_source(source: str, path: str = "<string>",
                 rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Lint a source string; returns unsuppressed findings, sorted.

    Raises:
        SyntaxError: if *source* does not parse — a file the linter
            cannot read must fail loudly, not pass silently.
    """
    tree = ast.parse(source, filename=path)
    module = ModuleContext(path=path, source=source, tree=tree)
    active = list(rules) if rules is not None else all_rules()
    suppressions = parse_suppressions(source)
    # R0 is a legal id to *name* (the hygiene docs mention it) but
    # suppressing it has no effect: R0 findings are added after the
    # suppression filter below.
    known = ["R0"] + list(REGISTRY)

    findings: List[Finding] = []
    for rule in active:
        for finding in rule.check(module):
            suppression = suppressions.get(finding.line)
            if suppression is not None and suppression.covers(finding.rule):
                continue
            findings.append(finding)

    # Suppression hygiene (R0): never suppressible, always checked.
    for suppression in suppressions.values():
        for message in hygiene_messages(suppression, known):
            findings.append(Finding(path=path, line=suppression.line, col=0,
                                    rule="R0", message=message))
    return sorted(findings)


def check_file(path: Path,
               rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Lint one file. Syntax errors become a single R0 finding."""
    source = path.read_text(encoding="utf-8")
    try:
        return check_source(source, path=str(path), rules=rules)
    except SyntaxError as exc:
        return [Finding(path=str(path), line=exc.lineno or 1, col=0,
                        rule="R0", message=f"file does not parse: {exc.msg}")]


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {raw}")
    return files


def check_paths(paths: Iterable[str],
                select: Optional[Sequence[str]] = None) -> List[Finding]:
    """Lint every python file under *paths*.

    Args:
        paths: Files or directories.
        select: Rule ids to run (default: all registered rules).

    Raises:
        KeyError: if *select* names an unregistered rule.
    """
    if select is not None:
        rules: Optional[List[Rule]] = [REGISTRY[rule_id]()
                                       for rule_id in select]
    else:
        rules = None
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(check_file(path, rules=rules))
    return sorted(findings)
