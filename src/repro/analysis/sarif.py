"""SARIF 2.1.0 renderer for analysis findings.

SARIF (Static Analysis Results Interchange Format) is what GitHub
code scanning ingests: uploading the file CI produces annotates the
offending lines directly on the pull request. The renderer emits one
``run`` with the full rule catalogue (per-file rules, project rules,
and the engine-level ``R0``) so every result carries its rule's
description, and one ``result`` per finding.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from .findings import Finding
from .project import PROJECT_REGISTRY
from .rules import REGISTRY

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

_R0_DESCRIPTION = (
    "suppression hygiene: a '# repro: ignore[...]' comment without a "
    "justification, naming an unknown rule, or a file that fails to "
    "parse. Raised by the engine itself; not suppressible.")


def _rule_catalogue() -> List[Dict[str, Any]]:
    catalogue: List[Dict[str, Any]] = []
    entries: List[Any] = [("R0", "suppression-hygiene", _R0_DESCRIPTION)]
    for registry in (REGISTRY, PROJECT_REGISTRY):
        for rule_id in sorted(registry):
            rule = registry[rule_id]
            entries.append((rule_id, rule.name, rule.description))
    for rule_id, name, description in sorted(entries):
        catalogue.append({
            "id": rule_id,
            "name": name,
            "shortDescription": {"text": name},
            "fullDescription": {"text": description},
            "defaultConfiguration": {"level": "error"},
        })
    return catalogue


def render_sarif(findings: Sequence[Finding]) -> str:
    """One SARIF run covering *findings*, as an indented JSON string."""
    rules = _rule_catalogue()
    rule_index = {rule["id"]: position
                  for position, rule in enumerate(rules)}
    results: List[Dict[str, Any]] = []
    for finding in findings:
        uri = finding.path.replace("\\", "/")
        result: Dict[str, Any] = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": uri},
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.col + 1,
                    },
                },
            }],
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        results.append(result)
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-analysis",
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
