"""Whole-program rules over the repro package (W1–W4).

Where :mod:`repro.analysis.rules` sees one file at a time, this module
sees the package: it assembles the :class:`ModuleSummary` facts of
every analyzed file (:mod:`repro.analysis.modgraph`) into an import
graph and a conservative name-resolution call graph, then runs the
project-scoped rules:

- **W1 layering** — imports between top-level subpackages must follow
  the DAG checked in as ``layers.toml`` (module-load imports against
  ``[layers]``; function-scoped/TYPE_CHECKING imports may additionally
  use ``[deferred]`` edges, the sanctioned cycle-breaking idiom).
- **W2 dropped-parameter flow** — a function that accepts a watched
  flag (``allow_stale``/``engine``/``query_engine``) and calls a
  callee that also accepts it must forward it. Exactly the PR 6 bug:
  a per-call ``allow_stale=False`` silently swallowed across a
  constructor boundary.
- **W3 exception contracts** — a function whose
  ``StaleSnapshotError``/``ConfigurationError`` can escape to the
  serving surface (``repro.api``, ``ShardedPlatform.serve``) must be
  listed in :data:`EXCEPTION_CONTRACTS`, or some frame on the path
  must handle the exception.
- **W4 dead public API** — a public top-level name referenced nowhere
  outside its defining module (façade re-exports in ``__init__`` do
  not count) is dead weight; delete it, underscore it, or suppress
  with a justification.

The rules are registered in :data:`PROJECT_REGISTRY` (ids ``W1``…)
and selected through the same ``--select`` surface as the per-file
rules; ``# repro: ignore[Wn] -- why`` suppressions work unchanged.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import (Dict, FrozenSet, Iterator, List, Mapping, Optional,
                    Sequence, Set, Tuple, Type)

from .findings import Finding
from .modgraph import (ClassSummary, FunctionSummary, ModuleSummary,
                       collect_refs, package_of, resolve_import_targets)

#: Default layering contract, checked in next to this module.
DEFAULT_LAYERS_PATH = Path(__file__).resolve().parent / "layers.toml"


class LayersConfigError(ValueError):
    """``layers.toml`` is missing, malformed, or cyclic."""


@dataclass(frozen=True)
class LayersConfig:
    """Allowed import edges between top-level subpackages.

    Attributes:
        allowed: Package → packages it may import at module load time.
        deferred: Additional edges permitted only for function-scoped
            (or TYPE_CHECKING) imports.
    """

    allowed: Mapping[str, Tuple[str, ...]]
    deferred: Mapping[str, Tuple[str, ...]]


_SECTION_RE = re.compile(r"^\[([A-Za-z0-9_\-]+)\]$")
_ENTRY_RE = re.compile(r"^\"?([A-Za-z0-9_\-.]+)\"?\s*=\s*(\[.*\])$")


def load_layers_config(path: Optional[Path] = None) -> LayersConfig:
    """Parse ``layers.toml`` (a flat TOML subset, stdlib-only).

    Only the shape this file actually uses is supported: ``[section]``
    headers and single-line ``name = ["dep", ...]`` entries. Parsing
    by hand keeps the analyzer dependency-free on every supported
    Python (``tomllib`` landed in 3.11).

    Raises:
        LayersConfigError: on unreadable/malformed input, an unknown
            section, a ``[deferred]`` package missing from
            ``[layers]``, or a cyclic ``[layers]`` edge set.
    """
    config_path = path if path is not None else DEFAULT_LAYERS_PATH
    try:
        text = config_path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LayersConfigError(
            f"cannot read layering config {config_path}: {exc}") from exc

    sections: Dict[str, Dict[str, Tuple[str, ...]]] = {
        "layers": {}, "deferred": {}}
    current: Optional[str] = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        section_match = _SECTION_RE.match(line)
        if section_match:
            current = section_match.group(1)
            if current not in sections:
                raise LayersConfigError(
                    f"{config_path}:{lineno}: unknown section "
                    f"[{current}] (expected [layers] or [deferred])")
            continue
        entry_match = _ENTRY_RE.match(line)
        if entry_match is None or current is None:
            raise LayersConfigError(
                f"{config_path}:{lineno}: cannot parse {line!r} "
                "(expected 'name = [\"dep\", ...]')")
        name = entry_match.group(1)
        try:
            value = ast.literal_eval(entry_match.group(2))
        except (ValueError, SyntaxError) as exc:
            raise LayersConfigError(
                f"{config_path}:{lineno}: bad value for {name!r}: "
                f"{exc}") from exc
        if not isinstance(value, list) or not all(
                isinstance(item, str) for item in value):
            raise LayersConfigError(
                f"{config_path}:{lineno}: {name!r} must be a list of "
                "package names")
        sections[current][name] = tuple(value)

    allowed = sections["layers"]
    deferred = sections["deferred"]
    for name in deferred:
        if name not in allowed:
            raise LayersConfigError(
                f"{config_path}: [deferred] names {name!r} which is not "
                "declared in [layers]")
    cycle = _find_cycle(allowed)
    if cycle is not None:
        raise LayersConfigError(
            f"{config_path}: [layers] edges are cyclic "
            f"({' -> '.join(cycle)}); the layering contract must be a DAG")
    return LayersConfig(allowed=allowed, deferred=deferred)


def _find_cycle(
        edges: Mapping[str, Tuple[str, ...]]) -> Optional[List[str]]:
    """A cycle in the allowed-edge graph as a node list, or None."""
    WHITE, GREY, BLACK = 0, 1, 2
    color: Dict[str, int] = {node: WHITE for node in edges}
    stack: List[str] = []

    def visit(node: str) -> Optional[List[str]]:
        color[node] = GREY
        stack.append(node)
        for neighbor in edges.get(node, ()):
            state = color.get(neighbor, BLACK)
            if state == GREY:
                return stack[stack.index(neighbor):] + [neighbor]
            if state == WHITE:
                found = visit(neighbor)
                if found is not None:
                    return found
        stack.pop()
        color[node] = BLACK
        return None

    for node in sorted(edges):
        if color[node] == WHITE:
            found = visit(node)
            if found is not None:
                return found
    return None


def layer_of(module: str, config: LayersConfig) -> Optional[str]:
    """Layer a dotted module belongs to.

    The longest dotted prefix declared in ``[layers]`` wins
    (``repro.graph.storage`` → ``graph.storage`` when that layer is
    declared), falling back to the top-level subpackage. Nested layers
    let a subpackage carve out an inner seam with its own, tighter
    dependency contract while undeclared sibling modules keep the
    enclosing package's layer.
    """
    package = package_of(module)
    if package is None:
        return None
    parts = module.split(".")[1:]
    for depth in range(len(parts), 1, -1):
        candidate = ".".join(parts[:depth])
        if candidate in config.allowed:
            return candidate
    return package


def render_layering_dag(config: Optional[LayersConfig] = None) -> str:
    """Deterministic text rendering of the layering DAG.

    ``docs/ARCHITECTURE.md`` embeds this output verbatim between
    ``layers.toml:begin``/``end`` markers;
    ``tests/analysis/test_layers_doc.py`` asserts the embedded copy
    matches, so the config and the doc cannot drift apart silently.
    """
    if config is None:
        config = load_layers_config()
    width = max(len(name) for name in config.allowed)
    lines = []
    for name in sorted(config.allowed):
        deps = ", ".join(sorted(config.allowed[name])) or "(nothing)"
        lines.append(f"{name.ljust(width)} -> {deps}")
    if config.deferred:
        lines.append("")
        lines.append("deferred-only (function-scoped imports):")
        for name in sorted(config.deferred):
            deps = ", ".join(sorted(config.deferred[name]))
            lines.append(f"{name.ljust(width)} -> {deps}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Project context: the import graph and the call graph
# ----------------------------------------------------------------------

#: Attribute-call names too generic to resolve by bare name — matching
#: ``x.get(...)`` against every project method called ``get`` would
#: drown the call graph in false edges.
_COMMON_METHOD_NAMES = frozenset({
    "add", "append", "clear", "close", "copy", "count", "decode",
    "discard", "encode", "extend", "format", "get", "index", "insert",
    "items", "join", "keys", "pop", "popitem", "read", "remove",
    "setdefault", "sort", "split", "startswith", "endswith", "strip",
    "update", "values", "write",
})


class ProjectContext:
    """All module summaries plus the cross-module indexes rules need."""

    def __init__(self, summaries: Sequence[ModuleSummary],
                 layers: Optional[LayersConfig] = None) -> None:
        self.all_summaries: Tuple[ModuleSummary, ...] = tuple(summaries)
        self.package_modules: Dict[str, ModuleSummary] = {
            summary.module: summary for summary in summaries
            if summary.module is not None}
        self.known_modules: Set[str] = set(self.package_modules)
        self.layers = layers if layers is not None else load_layers_config()
        # repro.mod.func / repro.mod.Class.method -> summary
        self.function_index: Dict[str, FunctionSummary] = {}
        # repro.mod.Class -> summary
        self.class_index: Dict[str, ClassSummary] = {}
        # bare method name -> qualified ids (methods only)
        self.method_name_index: Dict[str, List[str]] = {}
        # qualified function id -> module summary that defines it
        self.owner: Dict[str, ModuleSummary] = {}
        for module, summary in sorted(self.package_modules.items()):
            for func in summary.functions:
                qual = f"{module}.{func.qualname}"
                self.function_index[qual] = func
                self.owner[qual] = summary
            for cls in summary.classes:
                self.class_index[f"{module}.{cls.name}"] = cls
                for method in cls.methods:
                    qual = f"{module}.{method.qualname}"
                    self.function_index[qual] = method
                    self.owner[qual] = summary
                    if method.name not in _COMMON_METHOD_NAMES:
                        self.method_name_index.setdefault(
                            method.name, []).append(qual)

    # -- call resolution -------------------------------------------------

    def callable_params(self, qual: str) -> Optional[FunctionSummary]:
        """The function summary a qualified id calls into.

        For a class id this is its ``__init__`` (construction calls
        flow into the constructor — the PR 6 boundary).
        """
        func = self.function_index.get(qual)
        if func is not None:
            return func
        cls = self.class_index.get(qual)
        if cls is not None:
            return cls.method("__init__")
        return None

    def _resolve_binding(self, summary: ModuleSummary,
                         name: str) -> Optional[str]:
        """Qualified id (function/class/module) a local name binds to."""
        module = summary.module
        if module is None:
            return None
        target = summary.bindings.get(name)
        if target is None:
            return None
        if target == name:  # defined in this module
            return f"{module}.{name}"
        if not target.startswith("repro"):
            return None
        # "repro.x.y" may be module.attr or a module itself
        if target in self.known_modules:
            return target
        prefix, _, leaf = target.rpartition(".")
        if prefix in self.known_modules:
            return f"{prefix}.{leaf}"
        return target

    def resolve_call(self, summary: ModuleSummary,
                     cls: Optional[ClassSummary],
                     callee: str) -> Tuple[List[str], bool]:
        """Candidate qualified callees for a call expression.

        Returns ``(candidates, confident)``. Confident resolutions
        come from local defs, import bindings, ``self.``/``cls.``
        methods, and class constructors; the fallback matches an
        attribute call against every project method of that name
        (minus :data:`_COMMON_METHOD_NAMES`) and is marked
        unconfident.
        """
        module = summary.module
        if not callee or module is None:
            return [], False
        parts = callee.split(".")
        if len(parts) == 1:
            resolved = self._resolve_binding(summary, parts[0])
            if resolved is not None and (resolved in self.function_index
                                         or resolved in self.class_index):
                return [resolved], True
            return [], False
        head, rest = parts[0], parts[1:]
        if head in ("self", "cls") and cls is not None and len(rest) == 1:
            found = self._resolve_method(module, cls, rest[0])
            if found is not None:
                return [found], True
            return self._fallback(rest[0])
        resolved = self._resolve_binding(summary, head)
        if resolved is not None:
            current = resolved
            for step in rest[:-1]:
                if current in self.known_modules:
                    current = f"{current}.{step}"
                else:
                    return self._fallback(parts[-1])
            leaf = rest[-1]
            if current in self.known_modules:
                qual = f"{current}.{leaf}"
            elif current in self.class_index:
                qual = f"{current}.{leaf}"
            else:
                return self._fallback(leaf)
            if qual in self.function_index or qual in self.class_index:
                return [qual], True
            return [], False
        return self._fallback(parts[-1])

    def _resolve_method(self, module: str, cls: ClassSummary,
                        name: str) -> Optional[str]:
        """``self.name`` → method of *cls* or a resolvable base class."""
        if cls.method(name) is not None:
            return f"{module}.{cls.name}.{name}"
        summary = self.package_modules.get(module)
        for base in cls.bases:
            base_qual = None if summary is None else \
                self._resolve_binding(summary, base.split(".")[0])
            if base_qual is None:
                continue
            base_cls = self.class_index.get(base_qual)
            if base_cls is not None and base_cls.method(name) is not None:
                return f"{base_qual}.{name}"
        return None

    def _fallback(self, name: str) -> Tuple[List[str], bool]:
        if name in _COMMON_METHOD_NAMES:
            return [], False
        return list(self.method_name_index.get(name, ())), False

    def functions_with_class(
            self, summary: ModuleSummary
    ) -> Iterator[Tuple[FunctionSummary, Optional[ClassSummary]]]:
        for func in summary.functions:
            yield func, None
        for cls in summary.classes:
            for method in cls.methods:
                yield method, cls

    def suppressed(self, summary: ModuleSummary, line: int,
                   rule: str) -> bool:
        entry = summary.suppressions.get(line)
        return entry is not None and rule in entry[0]


# ----------------------------------------------------------------------
# Rule plumbing
# ----------------------------------------------------------------------

class ProjectRule:
    """Base class for one whole-program rule.

    Subclasses set ``id``/``name``/``description`` and implement
    :meth:`check`, yielding findings. Rules are pure functions of the
    :class:`ProjectContext` — no filesystem access — so fixture trees
    in the test suite can drive them from in-memory summaries.
    """

    id: str = ""
    name: str = ""
    description: str = ""

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, summary: ModuleSummary, line: int,
                message: str) -> Finding:
        return Finding(path=summary.path, line=line, col=0,
                       rule=self.id, message=message)


#: Registry of every project rule, keyed by rule id.
PROJECT_REGISTRY: Dict[str, Type[ProjectRule]] = {}


def register_project(rule_class: Type[ProjectRule]) -> Type[ProjectRule]:
    """Class decorator adding *rule_class* to :data:`PROJECT_REGISTRY`."""
    if not rule_class.id:
        raise ValueError(f"rule {rule_class.__name__} has no id")
    if rule_class.id in PROJECT_REGISTRY:
        raise ValueError(f"duplicate rule id {rule_class.id}")
    PROJECT_REGISTRY[rule_class.id] = rule_class
    return rule_class


def all_project_rules() -> List[ProjectRule]:
    """Fresh instances of every project rule, in id order."""
    return [PROJECT_REGISTRY[rule_id]() for rule_id in sorted(PROJECT_REGISTRY)]


def run_project_rules(
        summaries: Sequence[ModuleSummary],
        select: Optional[Sequence[str]] = None,
        layers: Optional[LayersConfig] = None) -> List[Finding]:
    """Run W rules over *summaries*; returns unsuppressed findings.

    Args:
        summaries: Every analyzed file (package modules feed the
            graphs; non-package files feed W4's usage census).
        select: Project-rule ids to run (default: all).
        layers: Layering config override (fixtures); defaults to the
            checked-in ``layers.toml``.

    Raises:
        LayersConfigError: if the layering config cannot be loaded.
    """
    if not any(summary.module is not None for summary in summaries):
        return []
    project = ProjectContext(summaries, layers=layers)
    if select is None:
        rules = all_project_rules()
    else:
        rules = [PROJECT_REGISTRY[rule_id]() for rule_id in select
                 if rule_id in PROJECT_REGISTRY]
    by_path = {summary.path: summary for summary in summaries}
    findings: List[Finding] = []
    for rule in rules:
        for finding in rule.check(project):
            summary = by_path.get(finding.path)
            if summary is not None and project.suppressed(
                    summary, finding.line, finding.rule):
                continue
            findings.append(finding)
    return sorted(findings)


# ----------------------------------------------------------------------
# W1 — layering
# ----------------------------------------------------------------------

@register_project
class LayeringRule(ProjectRule):
    """Imports between subpackages must follow the ``layers.toml`` DAG."""

    id = "W1"
    name = "layering"
    description = (
        "imports between top-level repro subpackages must follow the DAG "
        "checked in as analysis/layers.toml (module-load imports use "
        "[layers]; function-scoped imports may also use [deferred] — the "
        "sanctioned cycle-breaking idiom). An edge outside the contract "
        "couples layers the architecture keeps apart.")

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        config = project.layers
        for module in sorted(project.package_modules):
            summary = project.package_modules[module]
            source_pkg = layer_of(module, config)
            if source_pkg is None:
                continue
            if source_pkg not in config.allowed:
                yield self.finding(
                    summary, 1,
                    f"package '{source_pkg}' is not declared in "
                    "layers.toml; add it to [layers] with its allowed "
                    "imports")
                continue
            for edge in summary.imports:
                if edge.target.split(".")[0] != "repro":
                    continue
                for target in resolve_import_targets(
                        edge, project.known_modules):
                    target_pkg = layer_of(target, config)
                    if target_pkg is None or target_pkg == source_pkg:
                        continue
                    if target_pkg in config.allowed[source_pkg]:
                        continue
                    if edge.deferred and target_pkg in \
                            config.deferred.get(source_pkg, ()):
                        continue
                    kind = ("deferred import" if edge.deferred
                            else "module-load import")
                    yield self.finding(
                        summary, edge.line,
                        f"{kind} of '{target}' crosses layers: "
                        f"'{source_pkg}' -> '{target_pkg}' is not an "
                        "allowed edge in layers.toml; invert the "
                        "dependency, move the shared code down a layer, "
                        "or (for a genuine architecture change) amend "
                        "layers.toml and docs/ARCHITECTURE.md together")


# ----------------------------------------------------------------------
# W2 — dropped-parameter flow
# ----------------------------------------------------------------------

#: Flags whose silent loss across a call boundary has already shipped
#: a bug (PR 6's allow_stale) or would change which engine serves a
#: query without any error.
WATCHED_FLAGS: Tuple[str, ...] = ("allow_stale", "engine", "query_engine")


@register_project
class DroppedParameterFlow(ProjectRule):
    """A watched flag accepted by caller and callee must be forwarded."""

    id = "W2"
    name = "dropped-parameter-flow"
    description = (
        "a function that accepts a watched flag (allow_stale / engine / "
        "query_engine) and calls a callee that also accepts it must "
        "forward it — the PR 6 bug class, where a per-call "
        "allow_stale=False was silently swallowed at a constructor "
        "boundary. Pass the flag through (or suppress with a "
        "justification when dropping it is the point).")

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        for module in sorted(project.package_modules):
            summary = project.package_modules[module]
            for func, cls in project.functions_with_class(summary):
                watched = [flag for flag in WATCHED_FLAGS
                           if flag in func.params]
                if not watched:
                    continue
                for call in func.calls:
                    candidates, _ = project.resolve_call(
                        summary, cls, call.callee)
                    if not candidates:
                        continue
                    callees = [project.callable_params(qual)
                               for qual in candidates]
                    resolved = [callee for callee in callees
                                if callee is not None]
                    if not resolved or len(resolved) != len(callees):
                        continue
                    for flag in watched:
                        if not all(callee.accepts(flag)
                                   for callee in resolved):
                            continue
                        if flag in call.keywords or call.has_star_kwargs \
                                or flag in call.arg_names:
                            continue
                        yield self.finding(
                            summary, call.line,
                            f"'{func.qualname}' accepts '{flag}' but calls "
                            f"'{call.callee}' (which also accepts "
                            f"'{flag}') without forwarding it; the "
                            "caller's flag is silently dropped at this "
                            f"boundary — pass {flag}=... through")


# ----------------------------------------------------------------------
# W3 — exception contracts
# ----------------------------------------------------------------------

#: Watched exception → names that catch it (its bases, per
#: repro.errors: StaleSnapshotError < GraphError < ReproError;
#: ConfigurationError < ReproError and < ValueError).
WATCHED_EXCEPTIONS: Mapping[str, FrozenSet[str]] = {
    "StaleSnapshotError": frozenset({
        "StaleSnapshotError", "GraphError", "ReproError", "Exception",
        "BaseException"}),
    "ConfigurationError": frozenset({
        "ConfigurationError", "ReproError", "ValueError", "Exception",
        "BaseException"}),
}

#: Modules whose public functions (and public-class methods) are the
#: serving surface W3 guards.
ENTRY_POINT_MODULES: Tuple[str, ...] = ("repro.api",)

#: Individually named entry points.
ENTRY_POINT_FUNCTIONS: Tuple[str, ...] = (
    "repro.distributed.sharded.ShardedPlatform.serve",)

#: The sanctioned raisers: qualified function → watched exceptions it
#: is documented to raise through the serving surface. Raising one of
#: these is the function's *contract* (StaleSnapshotError is the
#: allow_stale escape hatch; ConfigurationError is constructor
#: validation) — anything NOT listed here that leaks a watched
#: exception to an entry point is a W3 finding.
EXCEPTION_CONTRACTS: Mapping[str, Tuple[str, ...]] = {
    # The allow_stale escape hatch: epoch checks raise unless the
    # caller opted into staleness. Documented in docs/ARCHITECTURE.md
    # ("Epoch-pinned reads") and each docstring's Raises section.
    "repro.graph.snapshot.GraphSnapshot.ensure_fresh":
        ("StaleSnapshotError",),
    "repro.distributed.sharded.ShardedPlatform._check_epochs":
        ("StaleSnapshotError",),
    # Constructor/topology validation on the sharded tier: routing a
    # node that no shard owns, or asking a worker about a node outside
    # its range, is a deployment misconfiguration the caller must see.
    "repro.distributed.cluster.distributed_single_source_scores":
        ("ConfigurationError",),
    "repro.distributed.sharded.ShardRouter.route":
        ("ConfigurationError",),
    "repro.distributed.sharded.ShardWorker.out_neighbors":
        ("ConfigurationError",),
    "repro.distributed.sharded.ShardWorker.landmark_entries":
        ("ConfigurationError",),
    "repro.distributed.sharded.ShardWorker.landmark_vectors":
        ("ConfigurationError",),
}


@register_project
class ExceptionContracts(ProjectRule):
    """Watched exceptions escaping to the API must be contract-listed."""

    id = "W3"
    name = "exception-contracts"
    description = (
        "a StaleSnapshotError or ConfigurationError that can escape from "
        "a function all the way to the serving surface (repro.api / "
        "ShardedPlatform.serve) must be part of that function's declared "
        "contract (EXCEPTION_CONTRACTS in analysis/project.py) or be "
        "handled on the way; an undeclared escape path means callers "
        "meet an exception no docstring promised.")

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        escapes = self._escape_sets(project)
        reachable = self._reachable(project)
        reported: Set[Tuple[str, str]] = set()
        for entry in sorted(self._entry_points(project)):
            for exc_name, origins in sorted(escapes.get(entry, {}).items()):
                for origin in sorted(origins):
                    if origin not in reachable:
                        continue
                    if exc_name in EXCEPTION_CONTRACTS.get(origin, ()):
                        continue
                    if (origin, exc_name) in reported:
                        continue
                    reported.add((origin, exc_name))
                    summary = project.owner.get(origin)
                    func = project.function_index.get(origin)
                    if summary is None or func is None:
                        continue
                    yield self.finding(
                        summary, func.line,
                        f"'{origin}' raises {exc_name} which escapes "
                        f"uncaught to serving entry point '{entry}'; "
                        "declare it in EXCEPTION_CONTRACTS "
                        "(analysis/project.py) if raising is the "
                        "contract, or handle it along the call path")

    def _entry_points(self, project: ProjectContext) -> Set[str]:
        entries: Set[str] = set()
        for module in ENTRY_POINT_MODULES:
            summary = project.package_modules.get(module)
            if summary is None:
                continue
            for func in summary.functions:
                if func.is_public:
                    entries.add(f"{module}.{func.qualname}")
            for cls in summary.classes:
                if not cls.is_public:
                    continue
                for method in cls.methods:
                    if method.is_public:
                        entries.add(f"{module}.{method.qualname}")
        for qual in ENTRY_POINT_FUNCTIONS:
            if qual in project.function_index:
                entries.add(qual)
        return entries

    def _call_edges(self, project: ProjectContext,
                    qual: str) -> List[Tuple["str", Tuple[str, ...]]]:
        """(callee qual, caught names) pairs for one function."""
        summary = project.owner[qual]
        func = project.function_index[qual]
        cls: Optional[ClassSummary] = None
        if "." in func.qualname:
            cls = summary.class_named(func.qualname.split(".")[0])
        edges: List[Tuple[str, Tuple[str, ...]]] = []
        for call in func.calls:
            candidates, _ = project.resolve_call(summary, cls, call.callee)
            for candidate in candidates:
                target = candidate
                if candidate in project.class_index:
                    target = f"{candidate}.__init__"
                if target in project.function_index:
                    edges.append((target, call.caught))
        return edges

    def _escape_sets(
            self, project: ProjectContext
    ) -> Dict[str, Dict[str, Set[str]]]:
        """Fixpoint: function → watched exception → origin functions."""
        escapes: Dict[str, Dict[str, Set[str]]] = {}
        for qual in sorted(project.function_index):
            func = project.function_index[qual]
            direct = {name for name in func.raises
                      if name in WATCHED_EXCEPTIONS}
            if direct:
                escapes[qual] = {name: {qual} for name in sorted(direct)}
        edges = {qual: self._call_edges(project, qual)
                 for qual in sorted(project.function_index)}
        changed = True
        while changed:
            changed = False
            for qual in sorted(project.function_index):
                for callee, caught in edges[qual]:
                    for exc_name, origins in escapes.get(callee, {}).items():
                        if WATCHED_EXCEPTIONS[exc_name] & set(caught):
                            continue
                        bucket = escapes.setdefault(qual, {}).setdefault(
                            exc_name, set())
                        if not origins <= bucket:
                            bucket.update(origins)
                            changed = True
        return escapes

    def _reachable(self, project: ProjectContext) -> Set[str]:
        frontier = sorted(self._entry_points(project))
        seen: Set[str] = set(frontier)
        while frontier:
            qual = frontier.pop()
            for callee, _ in self._call_edges(project, qual):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return seen


# ----------------------------------------------------------------------
# W4 — dead public API
# ----------------------------------------------------------------------

#: Qualified names invoked from outside Python (console-script entry
#: points in pyproject.toml), which a reference census cannot see.
_W4_EXTERNAL_ENTRY_POINTS = frozenset({"repro.cli.main"})


@register_project
class DeadPublicApi(ProjectRule):
    """Public top-level names referenced nowhere else are dead API."""

    id = "W4"
    name = "dead-public-api"
    description = (
        "a public top-level function or class referenced nowhere outside "
        "its defining module — façade re-exports in __init__ don't count "
        "— is unreachable from repro.api, the CLI, and the tests: dead "
        "weight that still costs review and mypy time. Delete it, "
        "underscore it, or suppress with a justification. Runs only when "
        "the analyzed set covers the whole package plus at least one "
        "out-of-package file (the tests), so a partial run cannot "
        "mis-flag test-only APIs.")

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        if "repro" not in project.package_modules:
            return
        if not any(summary.module is None
                   for summary in project.all_summaries):
            return
        usage = collect_refs(project.all_summaries)
        for module in sorted(project.package_modules):
            if module.endswith("__main__"):
                continue
            summary = project.package_modules[module]
            for name, line, decorators in self._public_defs(summary):
                qual = f"{module}.{name}"
                if qual in _W4_EXTERNAL_ENTRY_POINTS:
                    continue
                if decorators:
                    # Decorators imply side-effect registration (rule
                    # registries, dataclass factories): reference
                    # counting cannot see those consumers.
                    continue
                referenced = usage.get(name, set()) - {summary.path}
                if referenced:
                    continue
                yield self.finding(
                    summary, line,
                    f"public name '{name}' is referenced nowhere outside "
                    f"{module} (and __init__ re-exports don't count); it "
                    "is unreachable from repro.api, the CLI, and the "
                    "tests — delete it, rename it with a leading "
                    "underscore, or suppress with a justification")

    @staticmethod
    def _public_defs(
            summary: ModuleSummary
    ) -> Iterator[Tuple[str, int, Tuple[str, ...]]]:
        for func in summary.functions:
            if func.is_public:
                yield func.name, func.line, func.decorators
        for cls in summary.classes:
            if cls.is_public:
                yield cls.name, cls.line, cls.decorators
