"""End-to-end graph labeling pipeline (Section 5.1).

Stages, mirroring the paper exactly:

1. **Seed tagging** — the keyword tagger (OpenCalais stand-in) labels
   ~10% of accounts from their posts;
2. **Profile completion** — the multi-label classifier (Mulan SVM
   stand-in), trained on the seeds, predicts a publisher profile for
   every remaining account; its held-out precision is reported next to
   the paper's 0.90;
3. **Follower profiles** — high-frequency topics among each account's
   followees;
4. **Edge labeling** — follower ∩ publisher intersection per edge.

The output is a fully labeled social graph plus a
:class:`LabelingReport` with the coverage/precision numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

from ..graph.labeled_graph import LabeledSocialGraph
from ..utils.rng import SeedLike, rng_from_seed, spawn_rng
from .classifier import MultiLabelClassifier
from .documents import Document
from .profiles import apply_publisher_profiles, build_follower_profiles, label_edges
from .seed_tagger import KeywordSeedTagger


@dataclass(frozen=True)
class LabelingReport:
    """What the pipeline did, for the experiment write-ups.

    Attributes:
        num_accounts: Accounts in the corpus.
        seed_tagged: Accounts labeled by the seed tagger (~10% in the
            paper).
        classifier_precision: Held-out micro precision of the profile
            classifier (paper: 0.90).
        classifier_recall: Held-out micro recall.
        labeled_edges: Edges that received a non-empty label.
        total_edges: Edges in the graph.
    """

    num_accounts: int
    seed_tagged: int
    classifier_precision: float
    classifier_recall: float
    labeled_edges: int
    total_edges: int

    @property
    def seed_coverage(self) -> float:
        """Fraction of accounts the seed tagger labeled."""
        return self.seed_tagged / self.num_accounts if self.num_accounts else 0.0

    @property
    def edge_coverage(self) -> float:
        """Fraction of edges that received a label."""
        return self.labeled_edges / self.total_edges if self.total_edges else 0.0


class LabelingPipeline:
    """Compose tagger + classifier + profile builders.

    Example::

        dataset = generate_twitter_dataset(2000, seed=1)
        pipeline = LabelingPipeline()
        graph, report = pipeline.run(dataset.unlabeled_graph(),
                                     dataset.tweets, seed=1)
    """

    def __init__(self, tagger: KeywordSeedTagger | None = None,
                 classifier: MultiLabelClassifier | None = None,
                 holdout_fraction: float = 0.25,
                 follower_min_share: float = 0.2) -> None:
        self.tagger = tagger if tagger is not None else KeywordSeedTagger()
        self.classifier = (classifier if classifier is not None
                           else MultiLabelClassifier())
        self.holdout_fraction = holdout_fraction
        self.follower_min_share = follower_min_share

    def run(self, graph: LabeledSocialGraph,
            posts: Mapping[int, Sequence[str]],
            seed: SeedLike = None,
            ) -> Tuple[LabeledSocialGraph, LabelingReport]:
        """Label *graph* in place from the *posts* corpus.

        Returns:
            ``(graph, report)`` — the same graph object, now labeled.
        """
        rng = rng_from_seed(seed)
        documents = [
            Document.from_posts(node, posts.get(node, ()))
            for node in sorted(graph.nodes())
        ]

        # Stage 1: seed tagging.
        seeds = self.tagger.tag(documents, seed=spawn_rng(rng, "tagger"))

        # Stage 2: train on most seeds, hold some out for the
        # precision report, then predict everyone's publisher profile.
        seed_authors = sorted(seeds)
        holdout_rng = spawn_rng(rng, "holdout")
        holdout_size = max(1, int(self.holdout_fraction * len(seed_authors)))
        holdout = set(holdout_rng.sample(seed_authors,
                                         min(holdout_size, len(seed_authors))))
        training_labels = {
            author: topics for author, topics in seeds.items()
            if author not in holdout
        }
        self.classifier.fit(documents, training_labels)
        evaluation = self.classifier.evaluate(
            [doc for doc in documents if doc.author in holdout], seeds)

        predictions = self.classifier.predict(documents)
        publisher_profiles: Dict[int, Tuple[str, ...]] = {}
        for document in documents:
            if document.author in seeds:
                publisher_profiles[document.author] = seeds[document.author]
            else:
                publisher_profiles[document.author] = predictions.get(
                    document.author, ())
        apply_publisher_profiles(graph, publisher_profiles)

        # Stages 3 + 4: follower profiles, then edge intersections.
        follower_profiles = build_follower_profiles(
            graph, publisher_profiles, min_share=self.follower_min_share)
        labeled_edges = label_edges(graph, publisher_profiles,
                                    follower_profiles)

        report = LabelingReport(
            num_accounts=graph.num_nodes,
            seed_tagged=len(seeds),
            classifier_precision=evaluation.precision,
            classifier_recall=evaluation.recall,
            labeled_edges=labeled_edges,
            total_edges=graph.num_edges,
        )
        return graph, report
