"""Topic-extraction pipeline (Section 5.1's labeling methodology)."""

from .documents import Document, tokenize
from .seed_tagger import KeywordSeedTagger
from .classifier import MultiLabelClassifier
from .profiles import build_follower_profiles, label_edges
from .pipeline import LabelingPipeline, LabelingReport

__all__ = [
    "Document",
    "tokenize",
    "KeywordSeedTagger",
    "MultiLabelClassifier",
    "build_follower_profiles",
    "label_edges",
    "LabelingPipeline",
    "LabelingReport",
]
