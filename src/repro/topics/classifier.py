"""One-vs-rest multi-label text classifier — the Mulan SVM stand-in.

Section 5.1 completes the 10% seed labeling with "a trained Support
Vector Multi-Label Model using Mulan, with a precision of 0.90". We
implement the same role from scratch: one regularised logistic
regression per topic over a bag-of-words representation, trained on the
seed-tagged accounts, with a held-out precision report so the pipeline
can state its own number next to the paper's 0.90.

Numpy-only; vocabulary is capped by document frequency so the dense
matrices stay small (the synthetic corpus has a few hundred distinct
words).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from .documents import Document


@dataclass(frozen=True)
class EvaluationReport:
    """Held-out multi-label quality of the trained classifier.

    Precision/recall are micro-averaged over (account, topic) pairs —
    the convention under which the paper reports 0.90.
    """

    precision: float
    recall: float
    f1: float
    num_eval_documents: int


class MultiLabelClassifier:
    """One-vs-rest logistic regression on bag-of-words features.

    Args:
        min_document_frequency: Words must appear in at least this many
            training documents to enter the vocabulary.
        learning_rate: Gradient-descent step size.
        l2: L2 regularisation strength.
        epochs: Full-batch gradient-descent epochs per topic.
        threshold: Probability above which a topic is assigned; if no
            topic clears it, the single best topic is assigned instead
            (every account publishes on *something*).
    """

    def __init__(self, min_document_frequency: int = 2,
                 learning_rate: float = 0.5, l2: float = 1e-3,
                 epochs: int = 200, threshold: float = 0.5) -> None:
        if not 0.0 < threshold < 1.0:
            raise ConfigurationError(
                f"threshold must be in (0, 1), got {threshold}")
        self.min_document_frequency = min_document_frequency
        self.learning_rate = learning_rate
        self.l2 = l2
        self.epochs = epochs
        self.threshold = threshold
        self._vocabulary: Dict[str, int] = {}
        self._topics: Tuple[str, ...] = ()
        self._weights: np.ndarray | None = None  # (topics, features + bias)

    @property
    def is_trained(self) -> bool:
        """Whether :meth:`fit` has run."""
        return self._weights is not None

    @property
    def topics(self) -> Tuple[str, ...]:
        """Topics the classifier can assign."""
        return self._topics

    @property
    def vocabulary_size(self) -> int:
        """Number of bag-of-words features."""
        return len(self._vocabulary)

    # ------------------------------------------------------------------
    def _build_vocabulary(self, documents: Sequence[Document]) -> None:
        document_frequency: Counter = Counter()
        for document in documents:
            document_frequency.update(set(document.tokens()))
        words = sorted(
            word for word, count in document_frequency.items()
            if count >= self.min_document_frequency)
        self._vocabulary = {word: index for index, word in enumerate(words)}

    def _features(self, documents: Sequence[Document]) -> np.ndarray:
        """Log-scaled term counts plus a bias column."""
        matrix = np.zeros((len(documents), len(self._vocabulary) + 1))
        for row, document in enumerate(documents):
            counts = Counter(document.tokens())
            for word, count in counts.items():
                column = self._vocabulary.get(word)
                if column is not None:
                    matrix[row, column] = 1.0 + np.log(count)
            matrix[row, -1] = 1.0  # bias
        norms = np.linalg.norm(matrix[:, :-1], axis=1, keepdims=True)
        np.divide(matrix[:, :-1], norms, out=matrix[:, :-1], where=norms > 0)
        return matrix

    def fit(self, documents: Sequence[Document],
            labels: Mapping[int, Sequence[str]]) -> "MultiLabelClassifier":
        """Train on seed-tagged accounts.

        Args:
            documents: Training documents (author ids must appear in
                *labels*).
            labels: author → assigned topics (the seed tagger's output).

        Raises:
            ConfigurationError: when no training document or no topic
                is available.
        """
        training = [doc for doc in documents if labels.get(doc.author)]
        if not training:
            raise ConfigurationError("no labeled documents to train on")
        topic_set = sorted({t for doc in training for t in labels[doc.author]})
        if not topic_set:
            raise ConfigurationError("no topics present in the labels")
        self._topics = tuple(topic_set)
        self._build_vocabulary(training)
        features = self._features(training)
        num_docs, num_features = features.shape
        targets = np.zeros((num_docs, len(self._topics)))
        topic_index = {topic: i for i, topic in enumerate(self._topics)}
        for row, document in enumerate(training):
            for topic in labels[document.author]:
                targets[row, topic_index[topic]] = 1.0

        weights = np.zeros((len(self._topics), num_features))
        rate = self.learning_rate
        for _ in range(self.epochs):
            logits = features @ weights.T
            probabilities = 1.0 / (1.0 + np.exp(-logits))
            gradient = ((probabilities - targets).T @ features) / num_docs
            gradient += self.l2 * weights
            weights -= rate * gradient
        self._weights = weights
        return self

    # ------------------------------------------------------------------
    def predict_proba(self, documents: Sequence[Document]) -> np.ndarray:
        """Per-topic probabilities, shape (docs, topics)."""
        if self._weights is None:
            raise ConfigurationError("classifier is not trained")
        features = self._features(documents)
        return 1.0 / (1.0 + np.exp(-(features @ self._weights.T)))

    def predict(self, documents: Sequence[Document],
                ) -> Dict[int, Tuple[str, ...]]:
        """Multi-label predictions per account."""
        probabilities = self.predict_proba(list(documents))
        result: Dict[int, Tuple[str, ...]] = {}
        for row, document in enumerate(documents):
            above = [
                (float(probabilities[row, i]), topic)
                for i, topic in enumerate(self._topics)
                if probabilities[row, i] >= self.threshold
            ]
            if above:
                above.sort(reverse=True)
                result[document.author] = tuple(t for _, t in above)
            else:
                best = int(np.argmax(probabilities[row]))
                result[document.author] = (self._topics[best],)
        return result

    def evaluate(self, documents: Sequence[Document],
                 truth: Mapping[int, Sequence[str]]) -> EvaluationReport:
        """Micro-averaged precision/recall against ground truth."""
        eligible = [doc for doc in documents if truth.get(doc.author)]
        if not eligible:
            return EvaluationReport(0.0, 0.0, 0.0, 0)
        predictions = self.predict(eligible)
        true_positive = predicted = actual = 0
        for document in eligible:
            predicted_topics = set(predictions.get(document.author, ()))
            true_topics = set(truth[document.author])
            true_positive += len(predicted_topics & true_topics)
            predicted += len(predicted_topics)
            actual += len(true_topics)
        precision = true_positive / predicted if predicted else 0.0
        recall = true_positive / actual if actual else 0.0
        f1 = (2 * precision * recall / (precision + recall)
              if precision + recall else 0.0)
        return EvaluationReport(precision, recall, f1, len(eligible))
