"""Publisher/follower profiles and edge labeling (Section 5.1).

"Each follower is characterized by a follower profile containing topics
with high frequency among the topics of their followed publishers.
Finally the labels of each edge are the topics in the intersection
between the corresponding follower and publisher profiles."
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Mapping, Sequence, Tuple

from ..graph.labeled_graph import LabeledSocialGraph


def build_follower_profiles(
    graph: LabeledSocialGraph,
    publisher_profiles: Mapping[int, Sequence[str]],
    min_share: float = 0.2,
    max_topics: int = 5,
) -> Dict[int, Tuple[str, ...]]:
    """Follower profile of each account from its followees' profiles.

    A topic enters an account's follower profile when at least
    ``min_share`` of its followees publish on it (capped at
    *max_topics*, most frequent first). Accounts following nobody get
    an empty profile.
    """
    profiles: Dict[int, Tuple[str, ...]] = {}
    for node in graph.nodes():
        followees = graph.out_neighbors(node)
        if not followees:
            profiles[node] = ()
            continue
        counts: Counter = Counter()
        for followee in followees:
            counts.update(publisher_profiles.get(followee, ()))
        cutoff = min_share * len(followees)
        frequent = [
            (count, topic) for topic, count in counts.items()
            if count >= cutoff
        ]
        frequent.sort(key=lambda pair: (-pair[0], pair[1]))
        profiles[node] = tuple(topic for _, topic in frequent[:max_topics])
    return profiles


def label_edges(
    graph: LabeledSocialGraph,
    publisher_profiles: Mapping[int, Sequence[str]],
    follower_profiles: Mapping[int, Sequence[str]],
    fallback: bool = True,
) -> int:
    """Label every edge with the follower ∩ publisher topic intersection.

    Args:
        graph: Mutated in place (labels replaced).
        publisher_profiles: node → publishing topics.
        follower_profiles: node → interest topics.
        fallback: When the intersection is empty, label with the
            publisher's most characteristic topic (first in profile)
            instead of leaving the edge unlabeled — this is what makes
            the paper's output "a fully labeled social graph".

    Returns:
        The number of edges that received a non-empty label.
    """
    labeled = 0
    for source, target, _ in list(graph.edges()):
        interests = set(follower_profiles.get(source, ()))
        publishes = publisher_profiles.get(target, ())
        label = tuple(sorted(interests & set(publishes)))
        if not label and fallback and publishes:
            label = (publishes[0],)
        graph.set_edge_topics(source, target, label)
        if label:
            labeled += 1
    return labeled


def apply_publisher_profiles(
    graph: LabeledSocialGraph,
    publisher_profiles: Mapping[int, Sequence[str]],
) -> None:
    """Install publisher profiles as node labels (in place)."""
    for node in graph.nodes():
        graph.set_node_topics(node, publisher_profiles.get(node, ()))
