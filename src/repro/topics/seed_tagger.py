"""Keyword-based seed tagger — the OpenCalais stand-in.

Section 5.1: OpenCalais categorisation tagged ~10% of the nodes with
topics extracted from their tweets. This tagger plays that role: it
attempts only a sample of the accounts (the *coverage*), and within the
sample tags conservatively — a topic is assigned only when its keyword
evidence is strong — so the output is a small, high-precision training
set for the multi-label classifier, exactly the regime the paper's
pipeline operated in.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Mapping, Sequence, Tuple

from ..datasets.text import TOPIC_KEYWORDS
from ..errors import ConfigurationError
from ..utils.rng import SeedLike, rng_from_seed
from .documents import Document


class KeywordSeedTagger:
    """Tag accounts whose posts clearly match topic keyword pools.

    Args:
        keywords: topic → keyword pool (defaults to the built-in Web
            pools).
        coverage: Fraction of accounts the tagger attempts (0.1 mirrors
            the paper's 10%).
        min_hits: Minimum keyword matches for a topic to be considered.
        min_share: Minimum share of all keyword matches a topic needs.
        max_topics: Cap on assigned topics per account.
    """

    def __init__(self,
                 keywords: Mapping[str, Sequence[str]] = TOPIC_KEYWORDS,
                 coverage: float = 0.1,
                 min_hits: int = 2,
                 min_share: float = 0.15,
                 max_topics: int = 3) -> None:
        if not 0.0 < coverage <= 1.0:
            raise ConfigurationError(
                f"coverage must be in (0, 1], got {coverage}")
        if min_hits < 1:
            raise ConfigurationError(f"min_hits must be >= 1, got {min_hits}")
        self.coverage = coverage
        self.min_hits = min_hits
        self.min_share = min_share
        self.max_topics = max_topics
        self._keyword_topic: Dict[str, str] = {}
        for topic, pool in keywords.items():
            for word in pool:
                self._keyword_topic[word] = topic

    def tag_document(self, document: Document) -> Tuple[str, ...]:
        """Topics of one account's posts ('()' when evidence is weak)."""
        hits: Counter = Counter()
        for token in document.tokens():
            topic = self._keyword_topic.get(token)
            if topic is not None:
                hits[topic] += 1
        total = sum(hits.values())  # repro: ignore[R2] -- keyword hit counts are integers; the sum is exact in any order
        if total == 0:
            return ()
        qualified = [
            (count, topic) for topic, count in hits.items()
            if count >= self.min_hits and count / total >= self.min_share
        ]
        qualified.sort(key=lambda pair: (-pair[0], pair[1]))
        return tuple(topic for _, topic in qualified[: self.max_topics])

    def tag(self, documents: Iterable[Document],
            seed: SeedLike = None) -> Dict[int, Tuple[str, ...]]:
        """Tag a *coverage*-sized sample of *documents*.

        Returns:
            author → topics, for sampled accounts that got at least one
            topic. The dictionary's size over the corpus size is the
            effective coverage the pipeline report shows.
        """
        rng = rng_from_seed(seed)
        corpus = list(documents)
        attempted = max(1, int(self.coverage * len(corpus)))
        sample = rng.sample(corpus, min(attempted, len(corpus)))
        result: Dict[int, Tuple[str, ...]] = {}
        for document in sample:
            topics = self.tag_document(document)
            if topics:
                result[document.author] = topics
        return result
