"""Document model and tokenisation for the labeling pipeline."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Sequence, Tuple

_TOKEN = re.compile(r"[a-z0-9']+")


def tokenize(text: str) -> List[str]:
    """Lowercase word tokens; hashtags/mentions keep their word part."""
    return _TOKEN.findall(text.lower())


@dataclass(frozen=True)
class Document:
    """A user's aggregated posts, the unit the taggers consume.

    Attributes:
        author: Account id.
        texts: The individual posts.
    """

    author: int
    texts: Tuple[str, ...]

    @classmethod
    def from_posts(cls, author: int, posts: Sequence[str]) -> "Document":
        """Build a document from an account's post list."""
        return cls(author=author, texts=tuple(posts))

    def tokens(self) -> List[str]:
        """All tokens across the posts, in order."""
        collected: List[str] = []
        for text in self.texts:
            collected.extend(tokenize(text))
        return collected

    def __len__(self) -> int:
        return len(self.texts)
