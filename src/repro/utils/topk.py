"""Bounded top-k accumulator.

Both Algorithm 1 (per-landmark preprocessing keeps only the top-n
recommendations per topic) and the query-time rankers need a structure
that ingests (item, score) pairs — possibly updating an item's score —
and yields the k best. A heap alone cannot update keys cheaply, so this
keeps a dict of current scores and sorts on demand; n is small (<= 1000)
throughout the paper, which makes the O(m log m) finalisation cheap.
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, Iterator, List, Tuple, TypeVar

K = TypeVar("K", bound=Hashable)


class TopK(Generic[K]):
    """Accumulate additive scores per item and report the k largest.

    Ties are broken by item (ascending) so results are deterministic.
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._scores: Dict[K, float] = {}

    def add(self, item: K, score: float) -> None:
        """Add *score* to the running total of *item*."""
        self._scores[item] = self._scores.get(item, 0.0) + score

    def set(self, item: K, score: float) -> None:
        """Overwrite the score of *item*."""
        self._scores[item] = score

    def get(self, item: K, default: float = 0.0) -> float:
        """Current score of *item* (default when absent)."""
        return self._scores.get(item, default)

    def __contains__(self, item: K) -> bool:
        return item in self._scores

    def __len__(self) -> int:
        return len(self._scores)

    def __iter__(self) -> Iterator[K]:
        return iter(self._scores)

    def items(self) -> Iterator[Tuple[K, float]]:
        """Iterate over (item, score) pairs, unordered."""
        return iter(self._scores.items())

    def best(self) -> List[Tuple[K, float]]:
        """Return up to k (item, score) pairs, highest score first."""
        ranked = sorted(self._scores.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[: self.k]

    def prune(self) -> None:
        """Drop everything outside the current top k.

        Useful for long-running accumulations where the candidate pool
        is much larger than k; callers decide when pruning is safe
        (i.e. when dropped items can no longer re-enter the top k).
        """
        if len(self._scores) > self.k:
            self._scores = dict(self.best())
