"""LEB128-style unsigned varint codec.

The landmark store (``repro.landmarks.storage``) keeps inverted lists on
disk as delta-gapped varints — the standard posting-list encoding in IR
systems. Kept dependency-free and round-trip property-tested.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from ..errors import CorruptRecordError

_CONTINUATION = 0x80
_PAYLOAD = 0x7F


def encode_uvarint(value: int) -> bytes:
    """Encode a non-negative integer as a little-endian base-128 varint."""
    if value < 0:
        raise ValueError(f"varints encode non-negative integers, got {value}")
    out = bytearray()
    while True:
        byte = value & _PAYLOAD
        value >>= 7
        if value:
            out.append(byte | _CONTINUATION)
        else:
            out.append(byte)
            return bytes(out)


def decode_uvarint(buffer: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode one varint from *buffer* starting at *offset*.

    Returns:
        ``(value, next_offset)``.

    Raises:
        CorruptRecordError: on truncated input or a varint longer than
            ten bytes (more than 64 bits of payload).
    """
    result = 0
    shift = 0
    position = offset
    while True:
        if position >= len(buffer):
            raise CorruptRecordError(
                f"truncated varint at offset {offset}")
        byte = buffer[position]
        position += 1
        result |= (byte & _PAYLOAD) << shift
        if not byte & _CONTINUATION:
            return result, position
        shift += 7
        if shift >= 70:
            raise CorruptRecordError(
                f"varint at offset {offset} exceeds 64 bits")


def encode_uvarint_list(values: Iterable[int], delta: bool = False) -> bytes:
    """Encode a sequence of non-negative ints, optionally delta-gapped.

    With ``delta=True`` the input must be strictly increasing; the gaps
    (first value, then successive differences) are what gets encoded,
    which is much smaller for sorted id lists.
    """
    out = bytearray()
    previous = 0
    first = True
    for value in values:
        if delta:
            if not first and value <= previous:
                raise ValueError(
                    "delta encoding requires strictly increasing values "
                    f"({value} after {previous})")
            encoded = value if first else value - previous
            previous = value
        else:
            encoded = value
        out += encode_uvarint(encoded)
        first = False
    return bytes(out)


def decode_uvarint_list(buffer: bytes, count: int, offset: int = 0,
                        delta: bool = False) -> Tuple[List[int], int]:
    """Decode *count* varints; inverse of :func:`encode_uvarint_list`."""
    values: List[int] = []
    position = offset
    running = 0
    for index in range(count):
        value, position = decode_uvarint(buffer, position)
        if delta:
            running = value if index == 0 else running + value
            values.append(running)
        else:
            values.append(value)
    return values, position
