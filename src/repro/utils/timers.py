"""Deprecated shim — the timing primitives live in :mod:`repro.obs.clock`.

Kept so existing imports (benchmarks, examples, downstream users of
``repro.utils.timers``) keep working; new code should import
:class:`~repro.obs.clock.Stopwatch` from :mod:`repro.obs` directly, or
better, time stages through :func:`repro.obs.span` so the measurement
reaches the metrics registry. Rule R7 of :mod:`repro.analysis` keeps
raw ``time.perf_counter()`` calls out of ``src/`` for the same reason.
"""

from __future__ import annotations

from ..obs.clock import Stopwatch, format_duration

__all__ = ["Stopwatch", "format_duration"]
