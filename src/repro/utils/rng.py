"""Deterministic random-number discipline.

All stochastic components (dataset generators, landmark sampling, the
evaluation protocol, the simulated user panels) take an explicit seed or
:class:`random.Random` instance, so every experiment in this repository
is reproducible bit-for-bit. These helpers centralise the conversions.
"""

from __future__ import annotations

import random
import zlib
from typing import Optional, Union

SeedLike = Union[int, random.Random, None]


def rng_from_seed(seed: SeedLike) -> random.Random:
    """Return a :class:`random.Random` for the given seed-like value.

    Accepts an ``int`` seed, an existing ``Random`` (returned as-is so a
    caller can thread one generator through a pipeline), or ``None`` for
    a fresh OS-seeded generator.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def spawn_rng(rng: random.Random, label: str) -> random.Random:
    """Derive an independent child generator from *rng*.

    The child is seeded from the parent's stream combined with a label,
    so two subsystems that spawn from the same parent with different
    labels get decorrelated streams, and the parent's subsequent output
    does not depend on how much the child consumes.
    """
    # zlib.crc32 (not hash()) so the derivation is stable across
    # processes — Python randomises str hashing per interpreter.
    material = (rng.getrandbits(64) << 32) ^ zlib.crc32(label.encode("utf-8"))
    return random.Random(material)


def sample_without_replacement(rng: random.Random, population: list,
                               k: int, exclude: Optional[set] = None) -> list:
    """Sample ``k`` distinct items from *population*, skipping *exclude*.

    Falls back to returning every eligible item when fewer than ``k``
    remain, rather than raising — evaluation code treats a short sample
    as "use everything available".
    """
    if exclude:
        eligible = [item for item in population if item not in exclude]
    else:
        eligible = list(population)
    if k >= len(eligible):
        rng.shuffle(eligible)
        return eligible
    return rng.sample(eligible, k)
