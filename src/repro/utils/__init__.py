"""Shared utilities: deterministic RNG helpers, timers, varint codec."""

from .rng import rng_from_seed, spawn_rng
from .timers import Stopwatch, format_duration
from .varint import decode_uvarint, decode_uvarint_list, encode_uvarint, encode_uvarint_list
from .topk import TopK

__all__ = [
    "rng_from_seed",
    "spawn_rng",
    "Stopwatch",
    "format_duration",
    "encode_uvarint",
    "decode_uvarint",
    "encode_uvarint_list",
    "decode_uvarint_list",
    "TopK",
]
