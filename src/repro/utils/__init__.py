"""Shared utilities: deterministic RNG helpers, varint codec, top-k.

Timing primitives (``Stopwatch``, ``format_duration``) live in
:mod:`repro.obs.clock`; the ``repro.utils.timers`` shim that used to
re-export them here has been removed.
"""

from .rng import rng_from_seed, spawn_rng
from .varint import decode_uvarint, decode_uvarint_list, encode_uvarint, encode_uvarint_list
from .topk import TopK

__all__ = [
    "rng_from_seed",
    "spawn_rng",
    "encode_uvarint",
    "decode_uvarint",
    "encode_uvarint_list",
    "decode_uvarint_list",
    "TopK",
]
