"""The unified public recommendation API.

Before this module every scorer exposed its own entry point with its
own shape: ``core.Recommender.recommend`` returned rich per-topic
items, the landmark and baseline recommenders returned bare
``(node, score)`` tuples, and the distributed service returned a
``(ranking, cost)`` pair. One serving tier cannot sit in front of five
shapes, so this module defines the one contract they all now share:

- :class:`RecommendationRequest` — what a caller asks for;
- :class:`Recommendation` — one ranked suggestion;
- :class:`RecommendationResponse` — the ordered answer plus serving
  metadata (engine, snapshot epoch, degradation flag, network cost);
- :class:`Recommender` — the structural protocol
  ``recommend(user, topic, top_n=..., *, allow_stale=False)`` that
  every scorer satisfies (asserted by ``tests/api/test_protocol.py``).

Legacy shapes did not disappear: a :class:`Recommendation` unpacks
like the old ``(node, score)`` tuple and a
:class:`RecommendationResponse` iterates, indexes, and measures like
the old ranked list, so pre-redesign call sites keep working. The old
*call* signatures (``query()``, keyword styles like
``candidates=``/``aggregation=``, SALSA's topic-less form) went
through a deprecation cycle as warning shims and have now been
**removed** — see the API-surface table in ``docs/ARCHITECTURE.md``
for the old → new mapping. Lint rule R9 (:mod:`repro.analysis`) keeps
tuple-returning ``recommend`` functions from growing back.

The module also hosts the two other cross-layer contracts:

- :class:`Maintainer` / :class:`MaintenanceStats` — the shape shared
  by every landmark maintenance strategy in :mod:`repro.dynamics`
  (eager, batch, TTL, no-op, incremental);
- :class:`IngestEvent` / :class:`IngestResponse` — the request/answer
  pair of the live ingestion path (:mod:`repro.ingest`), mirroring the
  :class:`RecommendationRequest`/:class:`RecommendationResponse`
  pattern for graph *writes* instead of reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Dict, Iterator, List, Mapping,
                    Optional, Protocol, Sequence, Tuple, Union, overload,
                    runtime_checkable)

from .errors import ConfigurationError

if TYPE_CHECKING:  # deferred: api sits below graph in the layering
    from .graph.events import EdgeEvent

__all__ = [
    "RecommendationRequest",
    "Recommendation",
    "RecommendationResponse",
    "Recommender",
    "MaintenanceStats",
    "Maintainer",
    "IngestEvent",
    "IngestResponse",
    "response_from_pairs",
]


@dataclass(frozen=True)
class RecommendationRequest:
    """One recommendation query, as routed between serving components.

    Attributes:
        user: The account to recommend to.
        topic: The query topic (Algorithm 2 is per-topic; scorers that
            are topic-blind, like SALSA, accept and ignore it).
        top_n: Number of suggestions wanted.
        allow_stale: Accept answers computed on a snapshot whose graph
            has since mutated instead of raising
            :class:`~repro.errors.StaleSnapshotError`.
        depth: Exploration-depth override for landmark-based scorers
            (``None`` = the index's ``query_depth``).
        deadline_ms: Simulated per-request deadline budget for
            distributed tiers (``None`` = the tier's default).
    """

    user: int
    topic: str
    top_n: int = 10
    allow_stale: bool = False
    depth: Optional[int] = None
    deadline_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.top_n < 1:
            raise ConfigurationError(
                f"top_n must be >= 1, got {self.top_n}")
        if self.depth is not None and self.depth < 0:
            raise ConfigurationError(
                f"depth must be >= 0, got {self.depth}")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ConfigurationError(
                f"deadline_ms must be > 0, got {self.deadline_ms}")


@dataclass(frozen=True)
class Recommendation:
    """One recommended account.

    Unpacks like the pre-redesign ``(node, score)`` tuple
    (``node, score = rec`` and ``rec[0]``/``rec[1]`` both work), so
    ranked lists migrated to :class:`RecommendationResponse` stay
    drop-in compatible with tuple-consuming call sites.

    Attributes:
        node: The recommended account id.
        score: Combined recommendation score.
        per_topic: Optional breakdown ``topic → σ(u, node, t)``
            (populated by the exact recommender).
    """

    node: int
    score: float
    per_topic: Dict[str, float] = field(default_factory=dict)

    def __iter__(self) -> Iterator[Union[int, float]]:
        yield self.node
        yield self.score

    def __getitem__(self, index: int) -> Union[int, float]:
        return (self.node, self.score)[index]

    def as_pair(self) -> Tuple[int, float]:
        """The plain ``(node, score)`` tuple."""
        return (self.node, self.score)


@dataclass(frozen=True)
class RecommendationResponse:
    """The ordered answer to one :class:`RecommendationRequest`.

    Equality compares the *answer* — the ranked recommendations and the
    degradation flag — not serving provenance (engine name, snapshot
    epoch, cost, or the request), so parity tests can compare responses
    produced by different tiers directly.

    The response behaves like the ranked list the old entry points
    returned: iterating yields :class:`Recommendation` items (each
    unpackable as ``(node, score)``), ``len``/``[i]``/slicing work, and
    an empty response is falsy.

    Attributes:
        request: The request this answers.
        recommendations: Ranked suggestions, descending score, ties
            broken by ascending node id.
        engine: Which scorer produced it (``"exact"``, ``"approximate"``,
            ``"twitterrank"``, ``"salsa"``, ``"distributed"``,
            ``"sharded"``).
        snapshot_epoch: Epoch of the graph snapshot that was read.
        degraded: True when part of the serving tier was unreachable
            and the ranking may be missing contributions (sharded
            serving with a shard down).
        cost: Network-cost accounting for distributed tiers (a
            :class:`~repro.distributed.QueryCost`), ``None`` for
            single-machine scorers.
        served_epoch: Epoch of the generation that actually answered —
            during a zero-downtime rollover this can lag
            the live graph (the old generation keeps serving until the
            flip); ``None`` for single-machine scorers.
        hedged: True when at least one remote fetch of this request
            was hedged to a backup replica (sharded serving only).
    """

    request: RecommendationRequest = field(compare=False)
    recommendations: Tuple[Recommendation, ...] = ()
    engine: str = field(default="", compare=False)
    snapshot_epoch: Optional[int] = field(default=None, compare=False)
    degraded: bool = False
    cost: Optional[object] = field(default=None, compare=False)
    served_epoch: Optional[int] = field(default=None, compare=False)
    hedged: bool = field(default=False, compare=False)

    def __len__(self) -> int:
        return len(self.recommendations)

    def __iter__(self) -> Iterator[Recommendation]:
        return iter(self.recommendations)

    @overload
    def __getitem__(self, index: int) -> Recommendation: ...

    @overload
    def __getitem__(self, index: slice) -> List[Recommendation]: ...

    def __getitem__(self, index: Union[int, slice]
                    ) -> Union[Recommendation, List[Recommendation]]:
        if isinstance(index, slice):
            return list(self.recommendations[index])
        return self.recommendations[index]

    def pairs(self) -> List[Tuple[int, float]]:
        """The ranking as plain ``(node, score)`` tuples."""
        return [item.as_pair() for item in self.recommendations]

    def nodes(self) -> List[int]:
        """Just the ranked account ids."""
        return [item.node for item in self.recommendations]


@runtime_checkable
class Recommender(Protocol):
    """Structural protocol every recommendation entry point satisfies.

    Implementations may accept additional keyword-only parameters with
    defaults (``depth=``, ``exclude_followed=``), but the core call
    shape — positional ``user`` and ``topic``, keyword ``top_n`` and
    keyword-only ``allow_stale`` — must behave identically everywhere.
    """

    def recommend(self, user: int, topic: str, top_n: int = 10, *,
                  allow_stale: bool = False) -> RecommendationResponse:
        """Top-n suggestions for *user* on *topic*."""
        ...  # pragma: no cover - protocol body


@dataclass(frozen=True)
class MaintenanceStats:
    """Immutable accounting snapshot shared by every maintainer.

    Returned by :attr:`Maintainer.stats`; each read is a frozen copy of
    the maintainer's private counters, so callers can diff snapshots
    across a churn window without the maintainer mutating them
    underneath.

    Attributes:
        events_seen: Graph mutations observed via ``on_event``.
        landmarks_rebuilt: Landmark re-propagations performed (one per
            landmark per refresh round).
        rebuild_rounds: Refresh rounds triggered (eager: one per event;
            batch/TTL: one per flush; incremental: one per dirty-frontier
            refresh).
        sources_propagated: Total propagation sources actually walked —
            for full rebuilds this equals ``landmarks_rebuilt``; the
            dirty-frontier maintainer re-propagates only dirty landmarks,
            so this is the numerator of the ≥5x-savings acceptance gate.
    """

    events_seen: int = 0
    landmarks_rebuilt: int = 0
    rebuild_rounds: int = 0
    sources_propagated: int = 0

    @property
    def rebuilds_per_event(self) -> float:
        """Average landmarks rebuilt per observed event."""
        if not self.events_seen:
            return 0.0
        return self.landmarks_rebuilt / self.events_seen


@runtime_checkable
class Maintainer(Protocol):
    """Structural protocol every landmark maintenance strategy satisfies.

    The five strategies in :mod:`repro.dynamics` (eager, batch, TTL,
    no-op, incremental) all subscribe to a
    :class:`~repro.dynamics.stream.GraphStream` through ``on_event``
    and report the same frozen :class:`MaintenanceStats` shape, so a
    serving tier can swap strategies without touching its wiring
    (asserted by ``tests/api/test_protocol.py``).
    """

    def on_event(self, event: "EdgeEvent") -> None:
        """Observe one applied graph mutation."""
        ...  # pragma: no cover - protocol body

    @property
    def stats(self) -> MaintenanceStats:
        """Frozen snapshot of the maintenance counters."""
        ...  # pragma: no cover - protocol body


_INGEST_KINDS = ("follow", "unfollow", "retopic")


@dataclass(frozen=True)
class IngestEvent:
    """One follow-graph mutation submitted to the ingest path.

    The write-side twin of :class:`RecommendationRequest`: the wire
    shape clients hand to :class:`repro.ingest.IngestPipeline` (or the
    ``repro ingest`` CLI), converted internally to the
    :class:`~repro.graph.events.EdgeEvent` vocabulary.

    Attributes:
        kind: ``"follow"``, ``"unfollow"``, or ``"retopic"``.
        source: The follower.
        target: The followee.
        topics: Edge label (ignored for unfollows; the replacement
            label for retopics).
        time: Logical timestamp; defaults to submission order.
    """

    kind: str
    source: int
    target: int
    topics: Tuple[str, ...] = ()
    time: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _INGEST_KINDS:
            raise ConfigurationError(
                f"kind must be one of {_INGEST_KINDS}, got {self.kind!r}")
        if self.source == self.target:
            raise ConfigurationError(
                f"self-follow on node {self.source} is not allowed")

    def to_edge_event(self) -> "EdgeEvent":
        """The :class:`~repro.graph.events.EdgeEvent` equivalent."""
        from .graph.events import EdgeEvent, EventKind
        return EdgeEvent(kind=EventKind(self.kind), source=self.source,
                         target=self.target, topics=tuple(self.topics),
                         time=self.time)


@dataclass(frozen=True)
class IngestResponse:
    """The answer to one :class:`IngestEvent` submission.

    Equality compares the outcome (``applied``/``compacted``), not the
    epoch provenance, mirroring :class:`RecommendationResponse`.

    Attributes:
        event: The event this answers.
        applied: False when the event was a no-op (unfollow or retopic
            of an edge that does not exist).
        ingest_epoch: Overlay epoch after this event — what a reader of
            the delta overlay sees.
        servable_epoch: Epoch of the snapshot the serving tier answers
            queries from; lags ``ingest_epoch`` until the next
            compaction + rollover folds the overlay in.
        compacted: True when this event triggered a compaction (the
            returned ``servable_epoch`` is already the fresh base).
        pending_events: Overlay events not yet folded into a base.
    """

    event: IngestEvent = field(compare=False)
    applied: bool = True
    ingest_epoch: int = field(default=0, compare=False)
    servable_epoch: Optional[int] = field(default=None, compare=False)
    compacted: bool = False
    pending_events: int = field(default=0, compare=False)


def response_from_pairs(
    request: RecommendationRequest,
    pairs: Sequence[Tuple[int, float]],
    *,
    engine: str,
    snapshot_epoch: Optional[int] = None,
    degraded: bool = False,
    cost: Optional[object] = None,
    per_topic: Optional[Mapping[int, Dict[str, float]]] = None,
    served_epoch: Optional[int] = None,
    hedged: bool = False,
) -> RecommendationResponse:
    """Wrap an already-ranked ``(node, score)`` sequence in a response.

    The adapter every migrated scorer funnels through: *pairs* must
    already be sorted descending by score with ascending-node
    tie-break — this function asserts nothing and preserves order.
    """
    breakdown: Mapping[int, Dict[str, float]] = (
        per_topic if per_topic is not None else {})
    return RecommendationResponse(
        request=request,
        recommendations=tuple(
            Recommendation(node=node, score=score,
                           per_topic=breakdown.get(node, {}))
            for node, score in pairs),
        engine=engine,
        snapshot_epoch=snapshot_epoch,
        degraded=degraded,
        cost=cost,
        served_epoch=served_epoch,
        hedged=hedged,
    )
