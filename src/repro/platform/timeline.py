"""Posting and timeline delivery.

Two classical delivery strategies, selectable per store:

- **push** (fan-out on write): a post is copied into every follower's
  timeline at publish time — cheap reads, expensive celebrity writes;
- **pull** (fan-out on read): timelines are assembled at read time by
  merging the followed accounts' recent posts — cheap writes, reads
  cost O(followees · log).

The store keeps per-account home timelines bounded (old entries are
evicted), mirroring how real systems cap timeline length. Both
strategies must produce identical timelines — a test asserts it — so
the choice is purely an operational trade-off, which the write/read
counters expose.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from ..errors import ConfigurationError
from ..graph.labeled_graph import LabeledSocialGraph


@dataclass(frozen=True)
class Post:
    """One published micro-post.

    Attributes:
        post_id: Monotonically increasing id (doubles as timestamp).
        author: Publishing account id.
        text: Post body.
        topics: Topics of the post (from the author's profile or a
            per-post tagger).
    """

    post_id: int
    author: int
    text: str
    topics: Tuple[str, ...] = ()


class TimelineStore:
    """Posts plus per-account home timelines.

    Args:
        graph: The follow graph (reads follower lists at fan-out time).
        strategy: ``"push"`` or ``"pull"``.
        timeline_size: Home-timeline capacity per account.
    """

    def __init__(self, graph: LabeledSocialGraph, strategy: str = "push",
                 timeline_size: int = 200) -> None:
        if strategy not in ("push", "pull"):
            raise ConfigurationError(
                f"strategy must be 'push' or 'pull', got {strategy!r}")
        if timeline_size < 1:
            raise ConfigurationError(
                f"timeline_size must be >= 1, got {timeline_size}")
        self.graph = graph
        self.strategy = strategy
        self.timeline_size = timeline_size
        self._posts: Dict[int, Post] = {}
        self._by_author: Dict[int, Deque[int]] = {}
        self._home: Dict[int, Deque[int]] = {}
        self._next_post_id = 0
        #: Operational counters for the push/pull trade-off.
        self.fanout_writes = 0
        self.merge_reads = 0

    # ------------------------------------------------------------------
    def publish(self, author: int, text: str,
                topics: Iterable[str] = ()) -> Post:
        """Publish a post; fan out immediately under the push strategy."""
        post = Post(post_id=self._next_post_id, author=author, text=text,
                    topics=tuple(topics))
        self._next_post_id += 1
        self._posts[post.post_id] = post
        authored = self._by_author.setdefault(
            author, deque(maxlen=self.timeline_size))
        authored.append(post.post_id)
        if self.strategy == "push":
            for follower in self.graph.in_neighbors(author):
                home = self._home.setdefault(
                    follower, deque(maxlen=self.timeline_size))
                home.append(post.post_id)
                self.fanout_writes += 1
        return post

    def post(self, post_id: int) -> Post:
        """Fetch a post by id."""
        return self._posts[post_id]

    def posts_by(self, author: int, limit: Optional[int] = None) -> List[Post]:
        """An account's own posts, newest first."""
        ids = list(self._by_author.get(author, ()))
        ids.reverse()
        if limit is not None:
            ids = ids[:limit]
        return [self._posts[post_id] for post_id in ids]

    def timeline(self, account: int, limit: int = 50) -> List[Post]:
        """The account's home timeline, newest first.

        Under push this reads the precomputed timeline; under pull it
        k-way merges the followed accounts' recent posts.
        """
        if self.strategy == "push":
            ids = list(self._home.get(account, ()))
            ids.reverse()
            return [self._posts[post_id] for post_id in ids[:limit]]
        # pull: merge followees' author feeds by descending post id
        feeds = []
        for followee in self.graph.out_neighbors(account):
            authored = self._by_author.get(followee)
            if authored:
                feeds.append(reversed(authored))
                self.merge_reads += 1
        merged = heapq.merge(*feeds, reverse=True)
        return [self._posts[post_id]
                for post_id in itertools.islice(merged, limit)]

    @property
    def num_posts(self) -> int:
        """Total posts ever published."""
        return len(self._posts)
