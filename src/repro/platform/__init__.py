"""Micro-blogging platform substrate.

The paper's system lives inside a micro-blogging service: accounts
publish posts, followers receive them in timelines, and a
"Who-to-Follow"-style service (the paper cites Twitter's WTF) surfaces
recommendations. This subpackage provides that operational context so
the recommender can be exercised end to end:

- :mod:`accounts` — account registry with handles and profiles;
- :mod:`timeline` — posting and timeline delivery, with both
  fan-out-on-write (push) and fan-out-on-read (pull) strategies;
- :mod:`service` — the platform façade: follow/unfollow (kept in sync
  with the labeled graph and a landmark maintainer), posting, timeline
  reads, and the who-to-follow endpoint.
"""

from .accounts import Account, AccountRegistry
from .timeline import Post, TimelineStore
from .service import MicroblogPlatform, WhoToFollowResult

__all__ = [
    "Account",
    "AccountRegistry",
    "Post",
    "TimelineStore",
    "MicroblogPlatform",
    "WhoToFollowResult",
]
