"""The platform façade: follows, posts, timelines, who-to-follow.

Wires every subsystem together the way the paper's deployment sketch
implies: the follow graph is the system of record, follow/unfollow
operations keep the labeled graph (and optionally a landmark
maintainer) in sync, posts flow through the timeline store, and the
who-to-follow endpoint serves Tr recommendations — exact, or
landmark-accelerated once an index is attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from ..api import RecommendationResponse
from ..config import LandmarkParams, ScoreParams
from ..core.recommender import Recommender
from ..dynamics.events import EdgeEvent, EventKind
from ..errors import ConfigurationError
from ..graph.labeled_graph import LabeledSocialGraph
from ..graph.snapshot import GraphSnapshot
from ..landmarks.approximate import ApproximateRecommender
from ..landmarks.index import LandmarkIndex
from ..landmarks.selection import select_landmarks
from ..obs import runtime as _obs
from ..semantics.matrix import SimilarityMatrix
from .accounts import Account, AccountRegistry
from .timeline import Post, TimelineStore

Ref = Union[int, str]


@dataclass(frozen=True)
class WhoToFollowResult:
    """One who-to-follow suggestion, ready for display.

    Attributes:
        handle: Suggested account's handle.
        account_id: Its id.
        score: Recommendation score.
        topics: Its publisher profile (the "why you might care" line).
    """

    handle: str
    account_id: int
    score: float
    topics: Tuple[str, ...]


class MicroblogPlatform:
    """An in-memory micro-blogging service with Tr recommendations.

    Example::

        platform = MicroblogPlatform(similarity)
        alice = platform.register("alice", topics=("technology",))
        bob = platform.register("bob", topics=("technology", "bigdata"))
        platform.follow("alice", "bob")
        platform.post("bob", "shipping our new cloud pipeline")
        platform.who_to_follow("alice", "technology")
    """

    #: Valid ``refresh_policy`` values.
    REFRESH_POLICIES = ("eager", "on-demand", "every-n")

    def __init__(self, similarity: SimilarityMatrix,
                 params: ScoreParams = ScoreParams(),
                 timeline_strategy: str = "push",
                 timeline_size: int = 200,
                 refresh_policy: str = "on-demand",
                 refresh_interval: int = 10) -> None:
        """Args:
            similarity: Topic-similarity matrix for the recommenders.
            params: Score decay/convergence parameters.
            timeline_strategy: ``"push"`` or ``"pull"`` fan-out.
            timeline_size: Per-account home-timeline capacity.
            refresh_policy: How the serving snapshot tracks mutations —
                ``"eager"`` re-pins on every mutation, ``"on-demand"``
                re-pins lazily at the next who-to-follow request, and
                ``"every-n"`` keeps serving the pinned (stale) snapshot
                until *refresh_interval* mutations have accumulated.
            refresh_interval: Mutations per re-pin under ``"every-n"``.
        """
        if refresh_policy not in self.REFRESH_POLICIES:
            known = ", ".join(self.REFRESH_POLICIES)
            raise ConfigurationError(
                f"unknown refresh_policy {refresh_policy!r}; known: {known}")
        if refresh_interval < 1:
            raise ConfigurationError(
                f"refresh_interval must be >= 1, got {refresh_interval}")
        self.graph = LabeledSocialGraph()
        self.accounts = AccountRegistry()
        self.similarity = similarity
        self.params = params
        self.refresh_policy = refresh_policy
        self.refresh_interval = refresh_interval
        self.timelines = TimelineStore(self.graph,
                                       strategy=timeline_strategy,
                                       timeline_size=timeline_size)
        self._recommender: Optional[Recommender] = None
        self._approximate: Optional[ApproximateRecommender] = None
        self._maintainer = None  # duck-typed: has on_event(EdgeEvent)
        self._event_clock = 0
        self._pinned: Optional[GraphSnapshot] = None
        self._events_since_refresh = 0

    # ------------------------------------------------------------------
    # Accounts & follows
    # ------------------------------------------------------------------
    def register(self, handle: str,
                 topics: Sequence[str] = ()) -> Account:
        """Create an account and its graph node."""
        account = self.accounts.create(handle, tuple(topics))
        self.graph.add_node(account.account_id, topics)
        self._invalidate()
        return account

    def _resolve(self, ref: Ref) -> Account:
        if isinstance(ref, str):
            return self.accounts.by_handle(ref)
        return self.accounts.by_id(ref)

    def follow(self, follower: Ref, followee: Ref,
               topics: Optional[Iterable[str]] = None) -> None:
        """Create a follow edge.

        The edge label defaults to the §5.1 semantics — the
        intersection of the follower's and followee's profiles, falling
        back to the followee's lead topic — and can be overridden when
        the caller knows the follower's precise interest.
        """
        source = self._resolve(follower)
        target = self._resolve(followee)
        if topics is None:
            shared = set(source.topics) & set(target.topics)
            if shared:
                label: Tuple[str, ...] = tuple(sorted(shared))
            elif target.topics:
                label = (sorted(target.topics)[0],)
            else:
                label = ()
        else:
            label = tuple(topics)
        self.graph.add_edge(source.account_id, target.account_id, label)
        self._emit(EventKind.FOLLOW, source.account_id, target.account_id,
                   label)
        self._invalidate()

    def unfollow(self, follower: Ref, followee: Ref) -> None:
        """Remove a follow edge and notify the maintainer."""
        source = self._resolve(follower)
        target = self._resolve(followee)
        self.graph.remove_edge(source.account_id, target.account_id)
        self._emit(EventKind.UNFOLLOW, source.account_id,
                   target.account_id, ())
        self._invalidate()

    def _emit(self, kind: EventKind, source: int, target: int,
              topics: Tuple[str, ...]) -> None:
        if self._maintainer is not None:
            self._maintainer.on_event(EdgeEvent(
                kind=kind, source=source, target=target, topics=topics,
                time=self._event_clock))
        self._event_clock += 1

    # ------------------------------------------------------------------
    # Posts & timelines
    # ------------------------------------------------------------------
    def post(self, author: Ref, text: str,
             topics: Optional[Iterable[str]] = None) -> Post:
        """Publish a post (topics default to the author's profile)."""
        account = self._resolve(author)
        post_topics = (tuple(topics) if topics is not None
                       else account.topics)
        return self.timelines.publish(account.account_id, text, post_topics)

    def timeline(self, account: Ref, limit: int = 50) -> List[Post]:
        """The account's home timeline, newest first."""
        return self.timelines.timeline(self._resolve(account).account_id,
                                       limit=limit)

    # ------------------------------------------------------------------
    # Who-to-follow
    # ------------------------------------------------------------------
    def enable_landmarks(self, strategy: str = "In-Deg",
                         num_landmarks: int = 20, top_n: int = 100,
                         seed: int = 0) -> LandmarkIndex:
        """Build a landmark index and serve who-to-follow through it.

        Also attaches an eager maintainer so subsequent follow and
        unfollow operations keep the index fresh.

        Raises:
            ConfigurationError: when the platform has fewer accounts
                than the requested landmark count.
        """
        if num_landmarks > self.graph.num_nodes:
            raise ConfigurationError(
                f"cannot place {num_landmarks} landmarks on "
                f"{self.graph.num_nodes} accounts")
        from ..dynamics.maintenance import EagerMaintainer

        topics = sorted(self.graph.topics())
        landmarks = select_landmarks(self.graph, strategy, num_landmarks,
                                     rng=seed)
        index = LandmarkIndex.build(
            self.graph, landmarks, topics, self.similarity,
            params=self.params,
            landmark_params=LandmarkParams(num_landmarks=num_landmarks,
                                           top_n=top_n))
        self._approximate = ApproximateRecommender(
            self.graph, self.similarity, index)
        self._maintainer = EagerMaintainer(
            self.graph, index, topics, self.similarity, self.params)
        _obs.count("platform.landmarks_enabled_total")
        return index

    def _serve_response(self, user_id: int, topic: str, top_n: int,
                        snapshot: GraphSnapshot) -> RecommendationResponse:
        """Rank against *snapshot* with whichever engine is attached."""
        if self._approximate is not None:
            if self._approximate.graph is not snapshot:
                self._approximate = ApproximateRecommender(
                    snapshot, self.similarity,
                    self._approximate.index, params=self.params,
                    allow_stale=True)
            return self._approximate.recommend(user_id, topic, top_n=top_n)
        cached = (self._recommender is not None
                  and self._recommender.graph is snapshot)
        _obs.gauge("platform.exact_recommender_cached",
                   1.0 if cached else 0.0)
        if not cached:
            self._recommender = Recommender(
                snapshot, self.similarity, self.params,
                allow_stale=True)
        return self._recommender.recommend(user_id, topic, top_n=top_n)

    def recommend(self, user: Ref, topic: str, top_n: int = 10, *,
                  allow_stale: bool = False) -> RecommendationResponse:
        """The raw :class:`repro.api.Recommender` protocol endpoint.

        :meth:`who_to_follow` hydrates this response into display rows;
        callers composing services (or the sharded tier's parity tests)
        consume it directly. Staleness is governed by the platform's
        ``refresh_policy`` — each request is served from the pinned
        snapshot, so *allow_stale* is accepted for protocol conformity
        and has nothing further to relax.
        """
        account = self._resolve(user)
        snapshot = self._serving_snapshot()
        return self._serve_response(account.account_id, topic, top_n,
                                    snapshot)

    def who_to_follow(self, account: Ref, topic: str, top_n: int = 5,
                      ) -> List[WhoToFollowResult]:
        """Topic-conditioned account suggestions (the WTF endpoint).

        Each request pins one :class:`GraphSnapshot` (per the
        platform's ``refresh_policy``) and ranks, scores, and hydrates
        against it — concurrent mutations never shift the ground under
        a request (copy-on-write serving). The ranking itself flows
        through :meth:`recommend` (one unified
        :class:`~repro.api.RecommendationResponse` shape, whichever
        engine serves it).
        """
        with _obs.span("platform.who_to_follow") as _sp:
            user = self._resolve(account)
            snapshot = self._serving_snapshot()
            engine = ("approximate" if self._approximate is not None
                      else "exact")
            if _sp:
                _sp.set(topic=topic, top_n=top_n, engine=engine,
                        snapshot_epoch=snapshot.epoch)
            _obs.count("platform.wtf_requests_total")
            _obs.count(f"platform.wtf_served_by_{engine}_total")
            _obs.gauge("platform.wtf_engine_approximate",
                       1.0 if engine == "approximate" else 0.0)
            with _obs.span("platform.rank") as _rank:
                response = self._serve_response(
                    user.account_id, topic, top_n, snapshot)
                if _rank:
                    _rank.set(returned=len(response))
            with _obs.span("platform.hydrate") as _hydrate:
                results = []
                for item in response:
                    suggested = self.accounts.by_id(item.node)
                    results.append(WhoToFollowResult(
                        handle=suggested.handle, account_id=item.node,
                        score=item.score,
                        topics=tuple(sorted(
                            snapshot.node_topics(item.node)))))
                if _hydrate:
                    _hydrate.set(results=len(results))
        return results

    # ------------------------------------------------------------------
    # Serving snapshots
    # ------------------------------------------------------------------
    def _refresh(self) -> None:
        """Pin the graph's current snapshot for serving."""
        self._pinned = self.graph.snapshot()
        self._events_since_refresh = 0

    def _serving_snapshot(self) -> GraphSnapshot:
        """The snapshot requests are served from, per the policy."""
        if self._pinned is None:
            self._refresh()
        return self._pinned

    def _invalidate(self) -> None:
        """Graph changed: refresh the serving snapshot per the policy."""
        if self.refresh_policy == "eager":
            self._refresh()
        elif self.refresh_policy == "every-n":
            self._events_since_refresh += 1
            if (self._pinned is None
                    or self._events_since_refresh >= self.refresh_interval):
                self._refresh()
        else:  # on-demand: re-pin lazily at the next request
            self._pinned = None
