"""Account registry: ids, handles, and publisher profiles."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from ..errors import ReproError

_HANDLE = re.compile(r"^[a-z0-9_]{1,30}$")


class AccountError(ReproError):
    """Account registry violations (duplicate/unknown handle, bad name)."""


@dataclass
class Account:
    """One platform account.

    Attributes:
        account_id: Stable integer id (node id in the social graph).
        handle: Unique lowercase handle (without the leading ``@``).
        topics: Publisher-profile topics (mutable — the labeling
            pipeline refreshes them as the account posts).
    """

    account_id: int
    handle: str
    topics: Tuple[str, ...] = ()


class AccountRegistry:
    """Bidirectional id ↔ handle mapping with validation.

    Example:
        >>> registry = AccountRegistry()
        >>> alice = registry.create("alice", topics=("technology",))
        >>> registry.by_handle("alice").account_id == alice.account_id
        True
    """

    def __init__(self) -> None:
        self._by_id: Dict[int, Account] = {}
        self._by_handle: Dict[str, int] = {}
        self._next_id = 0

    def create(self, handle: str, topics: Tuple[str, ...] = (),
               account_id: Optional[int] = None) -> Account:
        """Register a new account.

        Args:
            handle: Unique handle matching ``[a-z0-9_]{1,30}``.
            topics: Initial publisher profile.
            account_id: Explicit id (used when importing an existing
                graph); autoincremented otherwise.

        Raises:
            AccountError: on an invalid or taken handle, or a taken id.
        """
        if not _HANDLE.match(handle):
            raise AccountError(f"invalid handle {handle!r}")
        if handle in self._by_handle:
            raise AccountError(f"handle @{handle} is taken")
        if account_id is None:
            while self._next_id in self._by_id:
                self._next_id += 1
            account_id = self._next_id
            self._next_id += 1
        elif account_id in self._by_id:
            raise AccountError(f"account id {account_id} is taken")
        account = Account(account_id=account_id, handle=handle,
                          topics=tuple(topics))
        self._by_id[account_id] = account
        self._by_handle[handle] = account_id
        return account

    def by_id(self, account_id: int) -> Account:
        """Look an account up by id."""
        try:
            return self._by_id[account_id]
        except KeyError:
            raise AccountError(f"unknown account id {account_id}") from None

    def by_handle(self, handle: str) -> Account:
        """Look an account up by handle (without the @)."""
        try:
            return self._by_id[self._by_handle[handle]]
        except KeyError:
            raise AccountError(f"unknown handle @{handle}") from None

    def set_topics(self, account_id: int, topics: Tuple[str, ...]) -> None:
        """Replace an account's publisher profile."""
        self.by_id(account_id).topics = tuple(topics)

    def __contains__(self, account_id: int) -> bool:
        return account_id in self._by_id

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[Account]:
        return iter(self._by_id.values())
