"""Churn simulation over the follow/unfollow event model.

The :class:`EdgeEvent`/:class:`EventKind` vocabulary itself lives in
:mod:`repro.graph.events` (the layer below, shared with the WAL and
the serving tier) and is re-exported here for compatibility.

Churn mirrors the observation the paper cites: a large share of fresh
follow links are short-lived. :func:`simulate_churn` produces an event
stream over an existing graph in which

- *unfollows* preferentially remove recently created edges (short
  lifespans) and low-engagement edges (no shared topics);
- *follows* are created with the same homophily + popularity biases as
  the Twitter generator, so the graph's statistical shape is stationary
  under churn;
- *retopics* (optional, off by default so pinned seeded streams stay
  byte-identical) relabel an existing edge with a fresh topic drawn
  from the target's profile — interest drift without structural churn.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..errors import ConfigurationError
from ..graph.events import EdgeEvent, EventKind
from ..graph.labeled_graph import LabeledSocialGraph
from ..utils.rng import SeedLike, rng_from_seed

__all__ = ["EdgeEvent", "EventKind", "simulate_churn"]


def simulate_churn(
    graph: LabeledSocialGraph,
    num_events: int,
    unfollow_fraction: float = 0.5,
    recency_bias: float = 0.7,
    retopic_fraction: float = 0.0,
    seed: SeedLike = None,
) -> Iterator[EdgeEvent]:
    """Yield a churn stream over (a private view of) *graph*.

    The input graph is *not* mutated; the caller applies events through
    :class:`~repro.dynamics.stream.GraphStream`.

    Args:
        graph: Starting graph (only read here).
        num_events: Total events to emit.
        unfollow_fraction: Share of events that remove an edge.
        recency_bias: Probability an unfollow targets one of the edges
            created earlier *in this stream* (short-lifespan links)
            rather than an arbitrary existing edge.
        retopic_fraction: Share of events that relabel an existing
            edge instead. The default ``0.0`` consumes no extra
            randomness, so streams pinned before this knob existed
            replay unchanged.
        seed: RNG seed.

    Raises:
        ConfigurationError: on an out-of-range fraction or an empty
            graph.
    """
    if not 0.0 <= unfollow_fraction <= 1.0:
        raise ConfigurationError(
            f"unfollow_fraction must be in [0, 1], got {unfollow_fraction}")
    if not 0.0 <= retopic_fraction <= 1.0 - unfollow_fraction:
        raise ConfigurationError(
            f"retopic_fraction must be in [0, 1 - unfollow_fraction], "
            f"got {retopic_fraction}")
    if graph.num_edges == 0 or graph.num_nodes < 2:
        raise ConfigurationError("churn needs a non-trivial graph")
    rng = rng_from_seed(seed)

    nodes = sorted(graph.nodes())
    # Preferential-attachment pool seeded from current in-degrees.
    popularity_pool: List[int] = []
    for node in nodes:
        popularity_pool.extend([node] * (1 + graph.in_degree(node) // 2))
    existing = {(s, t) for s, t, _ in graph.edges()}
    removed: set = set()
    fresh: List[Tuple[int, int, Tuple[str, ...]]] = []
    edge_list = [(s, t) for s, t, _ in graph.edges()]

    def pick_new_edge() -> Optional[Tuple[int, int, Tuple[str, ...]]]:
        for _ in range(20):
            source = rng.choice(nodes)
            target = rng.choice(popularity_pool)
            if source == target:
                continue
            if (source, target) in existing and (source, target) not in removed:
                continue
            profile = sorted(graph.node_topics(target))
            topics = (rng.choice(profile),) if profile else ()
            return source, target, tuple(topics)
        return None

    def pick_retopic() -> Optional[Tuple[int, int, Tuple[str, ...]]]:
        for _ in range(20):
            source, target = rng.choice(edge_list)
            if (source, target) in removed:
                continue
            profile = sorted(graph.node_topics(target))
            if not profile:
                continue
            return source, target, (rng.choice(profile),)
        return None

    def pick_unfollow() -> Optional[Tuple[int, int]]:
        if fresh and rng.random() < recency_bias:
            index = rng.randrange(len(fresh))
            source, target, _ = fresh.pop(index)
            return source, target
        for _ in range(20):
            source, target = rng.choice(edge_list)
            if (source, target) not in removed:
                return source, target
        return None

    for time in range(num_events):
        draw = rng.random()
        if draw < unfollow_fraction:
            choice = pick_unfollow()
            if choice is None:
                continue
            source, target = choice
            removed.add((source, target))
            yield EdgeEvent(EventKind.UNFOLLOW, source, target, (), time)
        elif draw < unfollow_fraction + retopic_fraction:
            relabel = pick_retopic()
            if relabel is None:
                continue
            source, target, topics = relabel
            yield EdgeEvent(EventKind.RETOPIC, source, target, topics, time)
        else:
            created = pick_new_edge()
            if created is None:
                continue
            source, target, topics = created
            existing.add((source, target))
            removed.discard((source, target))
            fresh.append((source, target, topics))
            yield EdgeEvent(EventKind.FOLLOW, source, target, topics, time)
