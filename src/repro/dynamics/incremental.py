"""Dirty-frontier incremental landmark maintenance.

The rebuild-based policies of :mod:`repro.dynamics.maintenance` re-run
Algorithm 1 for every landmark whose *stored lists* an event touches —
a heuristic that both over-fires (a listed node far outside the
propagation cone) and under-fires (an unlisted node inside it). This
module replaces the earlier first-order delta approximation with an
**exact** incremental strategy built on
:mod:`repro.landmarks.frontier`:

1. every applied event contributes its frontier
   ``{source} ∪ Γ_now(target)`` to a pending dirty set;
2. at flush time, one backward BFS from the pending frontier (depth ≤
   ``precompute_depth``, along in-edges) finds exactly the landmarks
   whose propagation cone intersects the churn;
3. only those landmarks are re-propagated, with the *same* engine and
   depth cap as :meth:`LandmarkIndex.build` — so the refreshed index is
   bitwise-identical to a from-scratch rebuild, at a fraction of the
   propagation sources (the ``sources_propagated`` stat; the ≥5x
   acceptance gate of ``tests/dynamics/test_incremental.py``).

One global hazard: the authority normaliser ``log1p(max |Γv(t)|)`` is
graph-wide. If churn moves that maximum for a maintained topic, every
landmark's scores shift and the maintainer falls back to a full
refresh for that flush (checked against per-topic marks recorded at
the previous flush).

With the default ``flush_every=1`` the index is fresh after every
event — same observable freshness as :class:`EagerMaintainer`, far
fewer propagations. The ingest pipeline (:mod:`repro.ingest`) instead
constructs it with ``flush_every=0`` and calls :meth:`flush` once per
compaction, passing the compacted snapshot as the propagation view.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from ..config import ScoreParams
from ..core.scores import AuthorityIndex
from ..landmarks.frontier import dirty_landmarks, refresh_landmarks
from ..landmarks.index import LandmarkIndex
from ..obs import runtime as _obs
from ..semantics.matrix import SimilarityMatrix
from .events import EdgeEvent
from .maintenance import _BaseMaintainer


class IncrementalMaintainer(_BaseMaintainer):
    """Re-propagate only landmarks whose cone intersects the churn.

    Args:
        graph: The post-event view events are applied to before this
            maintainer sees them (GraphStream's contract) — a live
            graph or a :class:`~repro.graph.overlay.DeltaSnapshot`.
        index: The landmark index to keep fresh.
        topics: Topics maintained (usually the index's vocabulary).
        similarity: Topic-similarity matrix.
        params: Decay parameters.
        flush_every: Auto-flush after this many applied events; ``0``
            disables auto-flush (callers drive :meth:`flush`, e.g. the
            ingest pipeline at compaction boundaries).
        engine: Refresh engine override; defaults to the engine that
            built the index, keeping refreshed lists bitwise-consistent
            with the unrefreshed ones.

    Attributes:
        full_refreshes: Flushes that fell back to refreshing every
            landmark because a per-topic follower maximum moved.
    """

    def __init__(self, graph, index: LandmarkIndex,
                 topics: Sequence[str], similarity: SimilarityMatrix,
                 params: Optional[ScoreParams] = None,
                 flush_every: int = 1,
                 engine: Optional[str] = None) -> None:
        super().__init__(graph, index, topics, similarity, params)
        self.flush_every = flush_every
        self.engine = engine
        self.full_refreshes = 0
        self._frontier: Set[int] = set()
        self._pending = 0
        self._max_marks: Dict[str, int] = {
            topic: graph.max_followers_on(topic) for topic in self.topics}

    # ------------------------------------------------------------------
    def rebind(self, graph) -> None:
        """Point the maintainer at a new post-event view.

        Used by the ingest pipeline after a compaction swaps the
        overlay for a fresh one over the compacted base. The per-topic
        maximum marks carry over — they describe the graph *content*,
        which the swap preserves.
        """
        self.graph = graph

    def on_event(self, event: EdgeEvent) -> None:  # noqa: D102
        self._events_seen += 1
        self._pending += 1
        self._frontier.add(event.source)
        self._frontier.update(self.graph.in_neighbors(event.target))
        if self.flush_every and self._pending >= self.flush_every:
            self.flush()

    @property
    def pending_events(self) -> int:
        """Applied events observed since the last flush."""
        return self._pending

    @property
    def frontier_size(self) -> int:
        """Distinct churn-touched nodes awaiting the next flush."""
        return len(self._frontier)

    def flush(self, view=None) -> int:
        """Refresh every landmark the pending churn can have affected.

        Args:
            view: Propagation view override — the ingest pipeline
                passes the freshly compacted
                :class:`~repro.graph.snapshot.GraphSnapshot` so the
                sparse engine binds to real CSR arrays; defaults to
                the maintainer's bound graph.

        Returns:
            The number of landmarks re-propagated.
        """
        graph = view if view is not None else self.graph
        if not self._pending:
            return 0
        landmarks = list(self.index.landmarks)
        horizon = self.index.landmark_params.precompute_depth
        if horizon is None:
            horizon = self.params.max_iter

        full = False
        for topic in self.topics:
            current = graph.max_followers_on(topic)
            if current != self._max_marks[topic]:
                self._max_marks[topic] = current
                full = True
        if full:
            dirty = landmarks
            self.full_refreshes += 1
        else:
            dirty = dirty_landmarks(graph, landmarks, self._frontier,
                                    horizon)

        with _obs.span("dynamics.incremental_flush") as _sp:
            if _sp:
                _sp.set(pending=self._pending, frontier=len(self._frontier),
                        dirty=len(dirty), total=len(landmarks), full=full)
            refreshed = refresh_landmarks(
                self.index, graph, dirty, self.topics, self.similarity,
                authority=AuthorityIndex(graph), engine=self.engine)
        if refreshed:
            self._landmarks_rebuilt += refreshed
            self._sources_propagated += refreshed
            self._rebuild_rounds += 1
            self.rebuilt_ever.update(dirty)
        self._frontier.clear()
        self._pending = 0
        return refreshed

    def rebuild(self, landmarks: Sequence[int]) -> None:
        """Re-propagate *landmarks* via the engine-exact refresh path.

        Overrides the dict-engine base implementation so that explicit
        rebuilds stay bitwise-consistent with this maintainer's
        flushes (same engine, same depth cap).
        """
        todo: List[int] = list(landmarks)
        if not todo:
            return
        refreshed = refresh_landmarks(
            self.index, self.graph, todo, self.topics, self.similarity,
            authority=AuthorityIndex(self.graph), engine=self.engine)
        self._landmarks_rebuilt += refreshed
        self._sources_propagated += refreshed
        self._rebuild_rounds += 1
        self.rebuilt_ever.update(todo)
