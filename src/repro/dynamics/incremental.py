"""Incremental landmark updates via first-order score deltas.

The rebuild-based policies of :mod:`repro.dynamics.maintenance` re-run
Algorithm 1 from scratch. This module implements the cheaper strategy
the paper's future-work paragraph gestures at: *update* the stored
vectors using the composition property (Prop. 2) instead.

When an edge ``e = (a → b)`` with label ``L`` appears, the new walks it
creates from a landmark ``λ`` decompose as ``p1 . e . p2`` with
``p1 ∈ P(λ, a)`` and ``p2 ∈ P(b, x)``. Summing Prop. 2 over both
families (the same algebra as Prop. 4):

- new score mass arriving at ``b``:
  ``Δσ(λ, b, t) = β·σ(λ, a, t) + topo_{αβ}(λ, a) · ω_e(t)``
  with ``ω_e(t) = β·α·maxsim(L, t)·auth(b, t)``;
- new topological mass: ``Δtopo_β(λ, b) = β·topo_β(λ, a)`` and
  ``Δtopo_{αβ}(λ, b) = αβ·topo_{αβ}(λ, a)``;
- propagation beyond ``b``: compose the deltas with a short
  exploration from ``b`` (the ``p2`` family, truncated at a
  configurable depth).

The result is **first order**: walks crossing the new edge twice or
more are ignored, and the ``p2`` tail is depth-limited. With the
paper's β = 0.0005 both truncations are far below ranking resolution —
the accuracy test pits the incremental index against a full rebuild.
Edge *removals* apply the same delta negatively, using the stored
pre-removal vectors.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..config import ScoreParams
from ..core.exact import _MaxSimCache, single_source_scores
from ..core.scores import AuthorityIndex
from ..graph.labeled_graph import LabeledSocialGraph
from ..landmarks.index import LandmarkEntry, LandmarkIndex
from ..semantics.matrix import SimilarityMatrix
from .events import EdgeEvent
from .maintenance import _BaseMaintainer


class IncrementalMaintainer(_BaseMaintainer):
    """Apply first-order deltas instead of rebuilding landmarks.

    Args:
        graph: The live graph (events are applied *before* this
            maintainer sees them — GraphStream's contract).
        index: The landmark index to keep fresh.
        topics: Topics maintained (usually the index's vocabulary).
        similarity: Topic-similarity matrix.
        params: Decay parameters.
        tail_depth: How far the ``p2`` family is explored beyond the
            new edge's head (2 covers everything the paper's β can
            distinguish).

    Attributes:
        deltas_applied: Number of edge events absorbed incrementally.
    """

    def __init__(self, graph: LabeledSocialGraph, index: LandmarkIndex,
                 topics: Sequence[str], similarity: SimilarityMatrix,
                 params: Optional[ScoreParams] = None,
                 tail_depth: int = 2) -> None:
        super().__init__(graph, index, topics, similarity, params)
        self.tail_depth = tail_depth
        self.deltas_applied = 0
        self._sim_cache = _MaxSimCache(similarity)

    # ------------------------------------------------------------------
    def on_event(self, event: EdgeEvent) -> None:  # noqa: D102
        self.stats.events_seen += 1
        sign = 1.0 if event.is_follow else -1.0
        # GraphStream enriches unfollow events with the removed edge's
        # label, so both directions carry the semantics of the delta.
        label = frozenset(event.topics)
        touched = self._watched.get(event.source, set())
        if not touched:
            return
        # authority values shift with follower counts; refresh lazily
        fresh_authority = AuthorityIndex(self.graph)
        tail = self._tail_state(event.target)
        for landmark in sorted(touched):
            self._apply_delta(landmark, event, sign, label,
                              fresh_authority, tail)
        self.deltas_applied += 1
        self.stats.rebuild_rounds += 0  # deltas are not rebuilds

    def _tail_state(self, head: int):
        """Short exploration from the new edge's head (the p2 family)."""
        return single_source_scores(
            self.graph, head, self.topics, self.similarity,
            params=self.params, max_depth=self.tail_depth,
            sim_cache=self._sim_cache)

    def _apply_delta(self, landmark: int, event: EdgeEvent, sign: float,
                     label: frozenset, authority: AuthorityIndex,
                     tail) -> None:
        beta = self.params.beta
        alpha = self.params.alpha
        for topic in self.topics:
            entries = self.index.recommendations(landmark, topic)
            by_node: Dict[int, LandmarkEntry] = {
                entry.node: entry for entry in entries}
            source_entry = by_node.get(event.source)
            if source_entry is None and event.source != landmark:
                continue
            if event.source == landmark:
                sigma_to_source = 0.0
                topo_b_source = 1.0
                topo_ab_source = 1.0
            else:
                sigma_to_source = source_entry.score
                topo_b_source = source_entry.topo
                topo_ab_source = source_entry.topo_ab
            best = self._sim_cache.max_similarity(label, topic) if label else 0.0
            omega_e = (beta * alpha * best
                       * authority.auth(event.target, topic))
            # deltas landing on the edge head b
            delta_sigma_b = sign * (beta * sigma_to_source
                                    + topo_ab_source * omega_e)
            delta_topo_b = sign * beta * topo_b_source
            delta_topo_ab_b = sign * beta * alpha * topo_ab_source

            updates: Dict[int, List[float]] = {}
            updates[event.target] = [delta_sigma_b, delta_topo_b,
                                     delta_topo_ab_b]
            # compose with the p2 tails from b (x != b)
            tail_scores = tail.scores.get(topic, {})
            tail_nodes = set(tail.topo_beta) | set(tail_scores)
            for node in tail_nodes:
                if node == event.target:
                    continue
                tail_topo_b = tail.topo_beta.get(node, 0.0)
                tail_topo_ab = tail.topo_alphabeta.get(node, 0.0)
                tail_sigma = tail_scores.get(node, 0.0)
                delta_sigma = (delta_sigma_b * tail_topo_b
                               + delta_topo_ab_b * tail_sigma)
                delta_topo = delta_topo_b * tail_topo_b
                delta_topo_ab = delta_topo_ab_b * tail_topo_ab
                if delta_sigma or delta_topo:
                    updates[node] = [delta_sigma, delta_topo,
                                     delta_topo_ab]

            changed = False
            for node, (d_sigma, d_topo, d_topo_ab) in updates.items():
                if node == landmark:
                    continue
                entry = by_node.get(node)
                if entry is not None:
                    by_node[node] = LandmarkEntry(
                        node=node,
                        score=max(0.0, entry.score + d_sigma),
                        topo=max(0.0, entry.topo + d_topo),
                        topo_ab=max(0.0, entry.topo_ab + d_topo_ab),
                    )
                    changed = True
                elif d_sigma > 0.0:
                    by_node[node] = LandmarkEntry(
                        node=node, score=d_sigma,
                        topo=max(0.0, d_topo),
                        topo_ab=max(0.0, d_topo_ab))
                    changed = True
            if changed:
                ranked = sorted(by_node.values(),
                                key=lambda e: (-e.score, e.node))
                top_n = self.index.landmark_params.top_n
                self.index.set_recommendations(landmark, topic,
                                               ranked[:top_n])
        self._watch_insert(event.target, landmark)

    def _watch_insert(self, node: int, landmark: int) -> None:
        self._watched.setdefault(node, set()).add(landmark)
