"""Apply an event stream to a graph, with listener hooks."""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, List

from ..errors import EdgeNotFoundError
from ..graph.labeled_graph import LabeledSocialGraph
from .events import EdgeEvent, EventKind

Listener = Callable[[EdgeEvent], None]


class GraphStream:
    """Mutate a graph from :class:`EdgeEvent`s and notify listeners.

    Listeners (e.g. a landmark maintainer) are called *after* each
    event is applied, so they observe the post-event graph state.

    Example::

        stream = GraphStream(graph)
        stream.subscribe(maintainer.on_event)
        stream.apply_all(simulate_churn(graph, 1000, seed=1))
    """

    def __init__(self, graph: LabeledSocialGraph) -> None:
        self.graph = graph
        self._listeners: List[Listener] = []
        self.applied = 0
        self.skipped = 0

    def subscribe(self, listener: Listener) -> None:
        """Register a post-event callback."""
        self._listeners.append(listener)

    def apply(self, event: EdgeEvent) -> bool:
        """Apply one event; returns ``False`` for no-op events.

        A follow of an existing edge relabels it; an unfollow or
        retopic of a missing edge is skipped (streams may race with
        each other in callers' tests) — both without notifying
        listeners on a skip. Unfollow events are enriched with the
        removed edge's label before listeners see them, so incremental
        maintainers can undo the semantic contribution exactly.
        """
        if event.is_follow:
            self.graph.add_edge(event.source, event.target, event.topics)
        elif event.kind is EventKind.RETOPIC:
            try:
                self.graph.set_edge_topics(event.source, event.target,
                                           event.topics)
            except EdgeNotFoundError:
                self.skipped += 1
                return False
        else:
            try:
                removed = self.graph.remove_edge(event.source, event.target)
            except EdgeNotFoundError:
                self.skipped += 1
                return False
            event = dataclasses.replace(
                event, topics=tuple(sorted(removed)))
        self.applied += 1
        for listener in self._listeners:
            listener(event)
        return True

    def apply_all(self, events: Iterable[EdgeEvent]) -> int:
        """Apply every event; returns the number actually applied."""
        before = self.applied
        for event in events:
            self.apply(event)
        return self.applied - before
