"""Landmark-index maintenance under graph churn.

Every maintainer satisfies the runtime-checkable
:class:`repro.api.Maintainer` protocol — subscribe ``on_event`` to a
:class:`~repro.dynamics.stream.GraphStream`, read the frozen
:class:`repro.api.MaintenanceStats` snapshot from ``stats`` — so a
serving tier can swap policies without rewiring.

The policies trade freshness against rebuild cost, the dimension the
paper's future-work section opens:

- :class:`EagerMaintainer` — rebuild a landmark the moment an event
  touches its stored neighbourhood (an endpoint appears in its lists,
  or is the landmark itself);
- :class:`BatchMaintainer` — mark such landmarks dirty, rebuild them
  together once the dirty fraction crosses a threshold (amortises the
  Algorithm-1 runs);
- :class:`TTLMaintainer` — ignore event contents entirely, refresh each
  landmark once per fixed event window, spreading the rebuilds
  round-robin across the window instead of bursting them all at once;
- :class:`NoOpMaintainer` — the do-nothing baseline, quantifying how
  stale an unmaintained index becomes.

:func:`measure_staleness` probes an index against fresh Algorithm-1
runs and reports the mean Kendall tau drift — the quantity that decides
whether a policy is good enough.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from ..api import MaintenanceStats
from ..config import ScoreParams
from ..core.exact import single_source_scores
from ..core.scores import AuthorityIndex
from ..errors import ConfigurationError
from ..eval.metrics import kendall_tau_distance
from ..graph.labeled_graph import LabeledSocialGraph
from ..landmarks.index import LandmarkEntry, LandmarkIndex
from .events import EdgeEvent

__all__ = [
    "MaintenanceStats",
    "NoOpMaintainer",
    "EagerMaintainer",
    "BatchMaintainer",
    "TTLMaintainer",
    "measure_staleness",
]


class _BaseMaintainer:
    """Shared rebuild machinery; subclasses decide *when* to rebuild."""

    def __init__(self, graph: LabeledSocialGraph, index: LandmarkIndex,
                 topics: Sequence[str], similarity,
                 params: Optional[ScoreParams] = None) -> None:
        self.graph = graph
        self.index = index
        self.topics = list(topics)
        self.similarity = similarity
        self.params = params if params is not None else index.params
        self._events_seen = 0
        self._landmarks_rebuilt = 0
        self._rebuild_rounds = 0
        self._sources_propagated = 0
        #: Landmarks rebuilt at least once over this maintainer's life.
        self.rebuilt_ever: Set[int] = set()
        self._watched: Dict[int, Set[int]] = {}
        self._rebuild_watch_index()

    @property
    def stats(self) -> MaintenanceStats:
        """Frozen snapshot of the maintenance counters."""
        return MaintenanceStats(
            events_seen=self._events_seen,
            landmarks_rebuilt=self._landmarks_rebuilt,
            rebuild_rounds=self._rebuild_rounds,
            sources_propagated=self._sources_propagated,
        )

    def _rebuild_watch_index(self) -> None:
        """node → landmarks whose stored lists mention it."""
        watched: Dict[int, Set[int]] = {}
        for landmark in self.index.landmarks:
            watched.setdefault(landmark, set()).add(landmark)
            for topic in self.index.topics_of(landmark):
                for entry in self.index.recommendations(landmark, topic):
                    watched.setdefault(entry.node, set()).add(landmark)
        self._watched = watched

    def _touched_landmarks(self, event: EdgeEvent) -> Set[int]:
        touched: Set[int] = set()
        touched |= self._watched.get(event.source, set())
        touched |= self._watched.get(event.target, set())
        return touched

    def rebuild(self, landmarks: Sequence[int]) -> None:
        """Re-run Algorithm 1 for *landmarks* and refresh the lists."""
        if not landmarks:
            return
        authority = AuthorityIndex(self.graph)
        for landmark in landmarks:
            state = single_source_scores(
                self.graph, landmark, self.topics, self.similarity,
                authority=authority, params=self.params)
            for topic in self.topics:
                ranked = state.ranked(
                    topic, top_n=self.index.landmark_params.top_n,
                    exclude=(landmark,))
                self.index.set_recommendations(landmark, topic, [
                    LandmarkEntry(node=node, score=score,
                                  topo=state.topo_beta.get(node, 0.0),
                                  topo_ab=state.topo_alphabeta.get(node, 0.0))
                    for node, score in ranked
                ])
            self._landmarks_rebuilt += 1
            self._sources_propagated += 1
            self.rebuilt_ever.add(landmark)
        self._rebuild_rounds += 1
        self._rebuild_watch_index()

    def on_event(self, event: EdgeEvent) -> None:
        raise NotImplementedError


class NoOpMaintainer(_BaseMaintainer):
    """Never rebuilds — the staleness baseline."""

    def on_event(self, event: EdgeEvent) -> None:  # noqa: D102
        self._events_seen += 1


class EagerMaintainer(_BaseMaintainer):
    """Rebuild immediately whenever an event touches a stored list."""

    def on_event(self, event: EdgeEvent) -> None:  # noqa: D102
        self._events_seen += 1
        touched = self._touched_landmarks(event)
        if touched:
            self.rebuild(sorted(touched))


class BatchMaintainer(_BaseMaintainer):
    """Accumulate dirty landmarks; rebuild when enough have piled up.

    Args:
        dirty_threshold: Rebuild once this fraction of the landmark set
            is dirty.
        max_pending_events: Hard cap — rebuild after this many events
            even if the dirty fraction stays low.
    """

    def __init__(self, graph, index, topics, similarity,
                 params: Optional[ScoreParams] = None,
                 dirty_threshold: float = 0.25,
                 max_pending_events: int = 500) -> None:
        if not 0.0 < dirty_threshold <= 1.0:
            raise ConfigurationError(
                f"dirty_threshold must be in (0, 1], got {dirty_threshold}")
        super().__init__(graph, index, topics, similarity, params)
        self.dirty_threshold = dirty_threshold
        self.max_pending_events = max_pending_events
        self._dirty: Set[int] = set()
        self._pending = 0

    def on_event(self, event: EdgeEvent) -> None:  # noqa: D102
        self._events_seen += 1
        self._pending += 1
        self._dirty |= self._touched_landmarks(event)
        landmark_count = max(1, len(self.index))
        if (len(self._dirty) / landmark_count >= self.dirty_threshold
                or self._pending >= self.max_pending_events):
            self.flush()

    def flush(self) -> None:
        """Rebuild everything currently dirty."""
        if self._dirty:
            self.rebuild(sorted(self._dirty))
            self._dirty.clear()
        self._pending = 0

    @property
    def dirty_count(self) -> int:
        """Landmarks currently awaiting a rebuild."""
        return len(self._dirty)


class TTLMaintainer(_BaseMaintainer):
    """Rebuild every landmark each *ttl_events* events, round-robin.

    Each landmark is refreshed once per *ttl_events*-event window, but
    the work is spread evenly across the window instead of rebuilding
    the whole set in one burst: after ``e`` events exactly
    ``⌊|Λ|·e / ttl_events⌋`` rebuilds have run, taken from a rotating
    cursor over the sorted landmark list.  Amortised cost is therefore
    ``|Λ| / ttl_events`` rebuilds per event with per-tick batches of at
    most ``⌈|Λ| / ttl_events⌉`` — no latency spike every *ttl_events*
    events, same freshness guarantee.
    """

    def __init__(self, graph, index, topics, similarity,
                 params: Optional[ScoreParams] = None,
                 ttl_events: int = 200) -> None:
        if ttl_events < 1:
            raise ConfigurationError(
                f"ttl_events must be >= 1, got {ttl_events}")
        super().__init__(graph, index, topics, similarity, params)
        self.ttl_events = ttl_events
        # Deterministic rotation order; the cursor wraps so every
        # landmark is hit exactly once per ttl window.
        self._order: List[int] = sorted(self.index.landmarks)
        self._cursor = 0
        self._scheduled_done = 0

    def on_event(self, event: EdgeEvent) -> None:  # noqa: D102
        self._events_seen += 1
        if not self._order:
            return
        due = (len(self._order) * self._events_seen) // self.ttl_events
        todo = due - self._scheduled_done
        if todo <= 0:
            return
        batch: List[int] = []
        for _ in range(todo):
            batch.append(self._order[self._cursor])
            self._cursor = (self._cursor + 1) % len(self._order)
        self._scheduled_done += todo
        self.rebuild(batch)


def measure_staleness(
    graph: LabeledSocialGraph,
    index: LandmarkIndex,
    topic: str,
    similarity,
    params: Optional[ScoreParams] = None,
    sample: Optional[Sequence[int]] = None,
    top_k: int = 50,
) -> float:
    """Mean Kendall tau between stored and freshly recomputed lists.

    0 means the index still matches the current graph exactly; values
    grow as churn invalidates the precomputation.
    """
    params = params if params is not None else index.params
    landmarks = list(sample) if sample is not None else list(index.landmarks)
    authority = AuthorityIndex(graph)
    distances: List[float] = []
    for landmark in landmarks:
        stored = [entry.node
                  for entry in index.recommendations(landmark, topic)][:top_k]
        state = single_source_scores(graph, landmark, [topic], similarity,
                                     authority=authority, params=params)
        fresh = [node for node, _ in state.ranked(topic, top_n=top_k,
                                                  exclude=(landmark,))]
        distances.append(kendall_tau_distance(stored, fresh))
    if not distances:
        return 0.0
    return sum(distances) / len(distances)
