"""Graph dynamicity and landmark-index maintenance.

The paper's conclusion flags this as future work: "many following
links have a short lifespan. This graph dynamicity may impact the
scores stored by the landmarks." This subpackage implements it:

- a follow/unfollow event model and a churn simulator that mirrors the
  generator's attachment biases (:mod:`events`);
- a stream applier with listener hooks (:mod:`stream`);
- landmark-index maintenance policies — eager, batched-lazy, and
  TTL-based — plus a staleness probe that quantifies how far stored
  recommendations drift from fresh ones (:mod:`maintenance`).
"""

from .events import EdgeEvent, EventKind, simulate_churn
from .stream import GraphStream
from .maintenance import (
    BatchMaintainer,
    EagerMaintainer,
    MaintenanceStats,
    NoOpMaintainer,
    TTLMaintainer,
    measure_staleness,
)
from .incremental import IncrementalMaintainer

__all__ = [
    "EdgeEvent",
    "EventKind",
    "simulate_churn",
    "GraphStream",
    "EagerMaintainer",
    "BatchMaintainer",
    "TTLMaintainer",
    "NoOpMaintainer",
    "IncrementalMaintainer",
    "MaintenanceStats",
    "measure_staleness",
]
