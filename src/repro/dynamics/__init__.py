"""Graph dynamicity and landmark-index maintenance.

The paper's conclusion flags this as future work: "many following
links have a short lifespan. This graph dynamicity may impact the
scores stored by the landmarks." This subpackage implements it:

- a follow/unfollow/retopic event model and a churn simulator that
  mirrors the generator's attachment biases (:mod:`events`);
- a stream applier with listener hooks (:mod:`stream`);
- landmark-index maintenance policies — eager, batched-lazy, TTL, and
  no-op — plus a staleness probe that quantifies how far stored
  recommendations drift from fresh ones (:mod:`maintenance`);
- the exact dirty-frontier :class:`IncrementalMaintainer`
  (:mod:`incremental`), bitwise-identical to a from-scratch rebuild at
  a fraction of the propagation cost.

All five maintainers satisfy the runtime-checkable
:class:`repro.api.Maintainer` protocol and report the same frozen
:class:`repro.api.MaintenanceStats` snapshot.
"""

from .events import EdgeEvent, EventKind, simulate_churn
from .stream import GraphStream
from .maintenance import (
    BatchMaintainer,
    EagerMaintainer,
    MaintenanceStats,
    NoOpMaintainer,
    TTLMaintainer,
    measure_staleness,
)
from .incremental import IncrementalMaintainer

__all__ = [
    "EdgeEvent",
    "EventKind",
    "simulate_churn",
    "GraphStream",
    "EagerMaintainer",
    "BatchMaintainer",
    "TTLMaintainer",
    "NoOpMaintainer",
    "IncrementalMaintainer",
    "MaintenanceStats",
    "measure_staleness",
]
