"""Write-ahead log + snapshot persistence for a dynamic landmark index.

The maintenance policies of :mod:`repro.dynamics` keep an in-memory
index fresh; this module makes that durable the way a database would:

- every follow/unfollow event is appended to a **write-ahead log**
  before being applied (checksummed, length-prefixed records — same
  hygiene as the index snapshot format);
- a **snapshot** (the :mod:`repro.landmarks.storage` format) is cut
  whenever the log grows past a threshold, after which the log is
  truncated;
- **recovery** loads the latest snapshot and replays the tail of the
  log through a maintainer, reproducing the pre-crash index state.

The replay path goes through the same maintainer code as live traffic,
so recovery is exercised by exactly the logic the tests already verify.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path
from typing import Callable, Iterator, List, Tuple, Union

from ..errors import CorruptRecordError, StorageError
from ..graph.events import EdgeEvent, EventKind
from ..utils.varint import decode_uvarint, encode_uvarint
from .index import LandmarkIndex
from .storage import load_index, save_index

PathLike = Union[str, Path]

_WAL_MAGIC = b"RPWL"
_WAL_VERSION = 1
_CRC = struct.Struct("<I")
_KIND_CODE = {EventKind.FOLLOW: 0, EventKind.UNFOLLOW: 1}
_CODE_KIND = {code: kind for kind, code in _KIND_CODE.items()}


def _encode_event(event: EdgeEvent) -> bytes:
    payload = bytearray()
    payload += encode_uvarint(_KIND_CODE[event.kind])
    payload += encode_uvarint(event.source)
    payload += encode_uvarint(event.target)
    payload += encode_uvarint(event.time)
    payload += encode_uvarint(len(event.topics))
    for topic in event.topics:
        blob = topic.encode("utf-8")
        payload += encode_uvarint(len(blob))
        payload += blob
    return bytes(payload)


def _decode_event(payload: bytes) -> EdgeEvent:
    cursor = 0
    kind_code, cursor = decode_uvarint(payload, cursor)
    source, cursor = decode_uvarint(payload, cursor)
    target, cursor = decode_uvarint(payload, cursor)
    time, cursor = decode_uvarint(payload, cursor)
    topic_count, cursor = decode_uvarint(payload, cursor)
    topics: List[str] = []
    for _ in range(topic_count):
        length, cursor = decode_uvarint(payload, cursor)
        topics.append(payload[cursor:cursor + length].decode("utf-8"))
        cursor += length
    kind = _CODE_KIND.get(kind_code)
    if kind is None:
        raise CorruptRecordError(f"unknown event kind code {kind_code}")
    return EdgeEvent(kind=kind, source=source, target=target,
                     topics=tuple(topics), time=time)


class WriteAheadLog:
    """Append-only, CRC-checked event log.

    Example::

        wal = WriteAheadLog(tmp_path / "events.wal")
        wal.append(event)
        list(wal.replay())
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        if not self.path.exists():
            self.path.write_bytes(_WAL_MAGIC + bytes([_WAL_VERSION]))
        else:
            header = self.path.read_bytes()[:5]
            if header[:4] != _WAL_MAGIC:
                raise StorageError(f"{self.path} is not a WAL (bad magic)")
            if header[4] != _WAL_VERSION:
                raise StorageError(
                    f"{self.path}: unsupported WAL version {header[4]}")

    def append(self, event: EdgeEvent) -> None:
        """Durably append one event (length + CRC + payload)."""
        payload = _encode_event(event)
        record = (encode_uvarint(len(payload))
                  + _CRC.pack(zlib.crc32(payload)) + payload)
        with self.path.open("ab") as handle:
            handle.write(record)
            handle.flush()

    def replay(self) -> Iterator[EdgeEvent]:
        """Yield every logged event in append order.

        Raises:
            CorruptRecordError: on a CRC mismatch; a *trailing*
                truncated record (torn final write) is tolerated and
                ends the replay, standard WAL-recovery behaviour.
        """
        blob = self.path.read_bytes()
        offset = 5
        while offset < len(blob):
            try:
                length, cursor = decode_uvarint(blob, offset)
            except CorruptRecordError:
                return  # torn length prefix at the tail
            if cursor + _CRC.size + length > len(blob):
                return  # torn final record
            expected = _CRC.unpack_from(blob, cursor)[0]
            cursor += _CRC.size
            payload = blob[cursor:cursor + length]
            if zlib.crc32(payload) != expected:
                raise CorruptRecordError(
                    f"{self.path}: CRC mismatch at offset {offset}")
            yield _decode_event(payload)
            offset = cursor + length

    def __len__(self) -> int:
        return sum(1 for _ in self.replay())

    def truncate(self) -> None:
        """Reset the log (after a successful snapshot)."""
        self.path.write_bytes(_WAL_MAGIC + bytes([_WAL_VERSION]))


class DurableIndex:
    """A landmark index with WAL + snapshot durability.

    Args:
        index: The live in-memory index.
        directory: Where ``snapshot.rplm`` and ``events.wal`` live.
        apply_event: Callback that applies one event to the live state
            (typically ``maintainer.on_event`` composed with the graph
            mutation); used verbatim during recovery replay.
        snapshot_every: Cut a snapshot after this many logged events.
    """

    SNAPSHOT_NAME = "snapshot.rplm"
    WAL_NAME = "events.wal"

    def __init__(self, index: LandmarkIndex, directory: PathLike,
                 apply_event: Callable[[EdgeEvent], None],
                 snapshot_every: int = 1000) -> None:
        if snapshot_every < 1:
            raise StorageError("snapshot_every must be >= 1")
        self.index = index
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._apply = apply_event
        self.snapshot_every = snapshot_every
        self.wal = WriteAheadLog(self.directory / self.WAL_NAME)
        self._since_snapshot = len(self.wal)
        if not (self.directory / self.SNAPSHOT_NAME).exists():
            save_index(index, self.directory / self.SNAPSHOT_NAME)

    def record(self, event: EdgeEvent) -> None:
        """Log, then apply, one event (write-ahead ordering)."""
        self.wal.append(event)
        self._apply(event)
        self._since_snapshot += 1
        if self._since_snapshot >= self.snapshot_every:
            self.snapshot()

    def snapshot(self) -> Path:
        """Persist the live index and truncate the log."""
        path = self.directory / self.SNAPSHOT_NAME
        save_index(self.index, path)
        self.wal.truncate()
        self._since_snapshot = 0
        return path

    @classmethod
    def recover(cls, directory: PathLike,
                apply_event: Callable[[EdgeEvent], None],
                install_index: Callable[[LandmarkIndex], None],
                snapshot_every: int = 1000) -> Tuple["DurableIndex", int]:
        """Rebuild the live state after a crash.

        Args:
            directory: The durability directory.
            apply_event: Same callback as the live path; replayed
                events go through it.
            install_index: Receives the snapshot index so the caller
                can wire it into its maintainer *before* replay starts.

        Returns:
            ``(durable, replayed)`` — the re-armed durable wrapper and
            the number of events replayed from the log.

        Raises:
            StorageError: when no snapshot exists.
        """
        directory = Path(directory)
        snapshot_path = directory / cls.SNAPSHOT_NAME
        if not snapshot_path.exists():
            raise StorageError(f"no snapshot in {directory}")
        index = load_index(snapshot_path)
        install_index(index)
        wal = WriteAheadLog(directory / cls.WAL_NAME)
        replayed = 0
        for event in wal.replay():
            apply_event(event)
            replayed += 1
        durable = cls.__new__(cls)
        durable.index = index
        durable.directory = directory
        durable._apply = apply_event
        durable.snapshot_every = snapshot_every
        durable.wal = wal
        durable._since_snapshot = replayed
        return durable, replayed
