"""Dirty-frontier landmark maintenance — rebuild only what changed.

A full :meth:`LandmarkIndex.build` re-propagates every landmark after
any churn. But Algorithm 1 walks *out*-edges from the landmark for at
most ``precompute_depth`` rounds, so a landmark's stored lists can only
change when its forward reachability cone (within that horizon)
intersects the set of nodes the churn actually touched:

- a changed edge ``a → b`` affects a walker only if the walk visits
  ``a`` (the edge is taken or newly skippable there);
- the authority of ``b`` (its per-topic follower counts) is read when
  a walker sits at any in-neighbour ``w`` of ``b`` — so ``b``'s count
  change matters only to walks that reach such a ``w``.

The *frontier* of one event is therefore ``{a} ∪ Γ_now(b)`` (the
post-event in-neighbours of ``b``; an in-neighbour removed by churn is
the source of its own removal event and lands in the frontier there).
:func:`dirty_landmarks` finds every landmark whose cone intersects a
frontier by a single **backward** BFS from the frontier along
in-edges — horizon levels over the post-event graph — instead of one
forward BFS per landmark.

:func:`refresh_landmarks` then re-runs exactly the
:meth:`LandmarkIndex.build` propagation for those landmarks (same
engine, same ``max_depth``, same tie-breaks), so the refreshed lists
are bitwise-identical to a from-scratch rebuild — asserted by
``tests/dynamics/test_incremental.py``.

One global hazard remains: the authority normaliser
``log1p(max_followers_on(t))`` is a *graph-wide* maximum. If churn
moves it for a maintained topic, every landmark's scores change and
the frontier argument does not apply — callers (the incremental
maintainer) detect that and fall back to a full refresh.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set

from ..config import EngineParams
from ..core.exact import _MaxSimCache, single_source_scores
from ..core.fast import SparseEngine, resolve_engine
from ..core.scores import AuthorityIndex
from ..obs import runtime as _obs
from ..semantics.matrix import SimilarityMatrix
from .index import LandmarkIndex


def dirty_landmarks(
    graph,
    landmarks: Sequence[int],
    frontier: Iterable[int],
    horizon: Optional[int],
) -> List[int]:
    """Landmarks whose depth-*horizon* cone intersects *frontier*.

    Args:
        graph: Post-event ``GraphLike`` view (live graph, snapshot, or
            :class:`~repro.graph.overlay.DeltaSnapshot` overlay).
        landmarks: Candidate landmark ids.
        frontier: Nodes the churn touched (see module docstring).
        horizon: Propagation depth bound (``precompute_depth``);
            ``None`` means unbounded — every landmark that can reach
            the frontier at any distance is dirty.

    Returns:
        The dirty subset, in *landmarks* order.
    """
    candidates = set(landmarks)
    reached: Set[int] = {node for node in frontier if node in graph}
    if not reached or not candidates:
        return []
    level = set(reached)
    depth = 0
    # Backward BFS: a node w is marked iff w reaches the frontier along
    # out-edges within `depth` hops — i.e. we expand along in-edges.
    while level and not candidates <= reached:
        if horizon is not None and depth >= horizon:
            break
        next_level: Set[int] = set()
        for node in level:
            for follower in graph.in_neighbors(node):
                if follower not in reached:
                    reached.add(follower)
                    next_level.add(follower)
        level = next_level
        depth += 1
    return [landmark for landmark in landmarks if landmark in reached]


def refresh_landmarks(
    index: LandmarkIndex,
    graph,
    landmarks: Sequence[int],
    topics: Sequence[str],
    similarity: SimilarityMatrix,
    *,
    authority: Optional[AuthorityIndex] = None,
    engine: Optional[str] = None,
    batch_size: Optional[int] = None,
) -> int:
    """Re-run the :meth:`LandmarkIndex.build` propagation for a subset.

    Mirrors the build path exactly — same engine resolution, same
    ``max_depth=landmark_params.precompute_depth`` cap, same ranking
    tie-breaks — so the refreshed lists are bitwise-identical to what a
    from-scratch build over *graph* would store for these landmarks.
    Lists are installed via :meth:`LandmarkIndex.set_recommendations`
    so version counters bump and cached vectorised views invalidate.

    Args:
        index: The index to refresh in place.
        graph: Post-event ``GraphLike`` view to propagate over.
        landmarks: The (dirty) landmarks to re-propagate.
        topics: Topic vocabulary the index maintains.
        similarity: Topic-similarity matrix.
        authority: Shared authority cache (created over *graph* if
            omitted — it must reflect the post-event counts).
        engine: Engine override; defaults to the engine that built the
            index (``index.engine_used``), falling back to ``"auto"``.
        batch_size: Sources per block for the sparse engine.

    Returns:
        The number of landmarks re-propagated.
    """
    todo = list(landmarks)
    if not todo:
        return 0
    resolved = resolve_engine(engine if engine is not None
                              else index.engine_used or "auto")
    shared_authority = (authority if authority is not None
                        else AuthorityIndex(graph))
    max_depth = index.landmark_params.precompute_depth
    top_n = index.landmark_params.top_n
    topic_list = list(topics)

    with _obs.span("landmarks.refresh") as _sp:
        if _sp:
            _sp.set(landmarks=len(todo), engine=resolved)
        if resolved == "sparse":
            sparse = SparseEngine(graph, similarity, index.params,
                                  authority=shared_authority)
            block_size = batch_size if batch_size is not None \
                else EngineParams().batch_size
            for start in range(0, len(todo), block_size):
                block = todo[start:start + block_size]
                states = sparse.multi_source(block, topic_list,
                                             max_depth=max_depth)
                for landmark, state in zip(block, states):
                    per_topic = LandmarkIndex._entries_for(
                        state, landmark, topic_list, top_n)
                    for topic, entries in per_topic.items():
                        index.set_recommendations(landmark, topic, entries)
        else:
            sim_cache = _MaxSimCache(similarity)
            for landmark in todo:
                state = single_source_scores(
                    graph, landmark, topic_list, similarity,
                    authority=shared_authority, params=index.params,
                    max_depth=max_depth, sim_cache=sim_cache)
                per_topic = LandmarkIndex._entries_for(
                    state, landmark, topic_list, top_n)
                for topic, entries in per_topic.items():
                    index.set_recommendations(landmark, topic, entries)
    _obs.count("landmarks.refreshed_total", len(todo))
    return len(todo)
