"""Landmark-based approximate recommendation (Section 4)."""

from .selection import STRATEGIES, select_landmarks
from .index import LandmarkEntry, LandmarkIndex
from .approximate import ApproximateRecommender, explore_with_landmarks
from .query_engine import (
    LandmarkVectorCache,
    LandmarkVectors,
    QueryEngine,
    compose_landmark_contributions,
    resolve_query_engine,
    vectors_from_entries,
)
from .storage import load_index, save_index

__all__ = [
    "STRATEGIES",
    "select_landmarks",
    "LandmarkIndex",
    "LandmarkEntry",
    "ApproximateRecommender",
    "explore_with_landmarks",
    "LandmarkVectorCache",
    "LandmarkVectors",
    "QueryEngine",
    "compose_landmark_contributions",
    "resolve_query_engine",
    "vectors_from_entries",
    "save_index",
    "load_index",
]
