"""Landmark-based approximate recommendation (Section 4)."""

from .selection import STRATEGIES, select_landmarks
from .index import LandmarkEntry, LandmarkIndex
from .approximate import ApproximateRecommender, explore_with_landmarks
from .storage import load_index, save_index

__all__ = [
    "STRATEGIES",
    "select_landmarks",
    "LandmarkIndex",
    "LandmarkEntry",
    "ApproximateRecommender",
    "explore_with_landmarks",
    "save_index",
    "load_index",
]
