"""Vectorized Algorithm-2 query path (explore + compose) over CSR arrays.

The paper's query-time promise is that Algorithm 2 answers in
milliseconds: a depth-k exploration absorbed at landmarks, then the
Proposition-4 composition of each encountered landmark's precomputed
vectors. The dict-based reference path (:func:`single_source_scores`
plus the entry-by-entry loop in
:class:`~repro.landmarks.approximate.ApproximateRecommender`) is
readable but walks Python dicts per edge and per stored entry. This
module is the batched counterpart, mirroring what
:class:`~repro.core.fast.SparseEngine` did for preprocessing:

- :class:`QueryEngine` runs the depth-k frontier expansion directly
  over the shared :class:`~repro.graph.snapshot.GraphSnapshot` CSR
  arrays (``out_indptr`` / ``out_indices`` / ``out_label_ids``) with
  one gather + ``np.add.at`` scatter per round;
- :class:`LandmarkVectors` materialises a landmark's per-topic top-n
  list once as dense numpy arrays (positions, node ids, ``σ``,
  ``topo_β``, ``topo_{αβ}``), and
  :func:`compose_landmark_contributions` evaluates
  ``σ(u,λ,t)·topo_β(λ,v) + topo_{αβ}(u,λ)·σ(λ,v,t)`` for every stored
  entry of every encountered landmark with one concatenated
  scatter-add;
- :class:`LandmarkVectorCache` keeps those arrays keyed on
  ``(snapshot.epoch, landmark, topic)`` in a bounded LRU, invalidated
  by epoch bumps (new key) and by
  :meth:`~repro.landmarks.index.LandmarkIndex.set_recommendations`
  (per-list version counters), so maintainers and live graphs stay
  correct.

Bitwise parity with the dict path is a hard invariant, not a
best-effort: every float operation here replays the reference
engine's accumulation order exactly —

- walkers are expanded in ascending dense position (= ascending node
  id, the snapshot sorts ``node_ids``), matching ``sorted(touched)``;
- ``np.add.at`` is an *unbuffered* scatter-add that applies updates in
  index order, so per-target accumulation order equals the dict loop's
  walker-then-edge order;
- the per-edge increment keeps the reference expression's
  left-to-right association
  ``β·r + ((tab·(βα))·maxsim)·auth`` with maxsim and auth gathered as
  separate arrays (never pre-multiplied);
- residual mass uses :func:`math.fsum` over the accumulated frontier
  (exact, so including zeros changes nothing);
- zero-valued contributions the dict path skips behind truthiness
  guards are *added* here — ``x + 0.0`` is a bitwise no-op for the
  non-negative masses this engine propagates.

``engine="auto" | "dict" | "sparse"`` selection mirrors the
preprocessing knob, except that this engine needs only numpy (which the
core already requires), so ``"auto"`` always resolves to ``"sparse"``.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import (Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple, Union)

import numpy as np

from ..config import ENGINE_CHOICES, ScoreParams
from ..core.exact import ScoreState, _MaxSimCache
from ..core.scores import AuthorityIndex
from ..errors import ConfigurationError
from ..graph.snapshot import GraphSnapshot
from ..obs import runtime as _obs
from ..semantics.matrix import SimilarityMatrix
from .index import LandmarkEntry

__all__ = [
    "resolve_query_engine",
    "LandmarkVectors",
    "LandmarkVectorCache",
    "StackedLandmarkLists",
    "QueryEngine",
    "compose_landmark_contributions",
    "compose_stacked",
    "dense_scores_to_dict",
    "stack_landmark_vectors",
    "vectors_from_entries",
]


def resolve_query_engine(name: str) -> str:
    """Resolve a query-path ``engine=`` knob to a concrete engine.

    Mirrors :func:`repro.core.fast.resolve_engine` but for the
    query-time path, which is pure numpy: ``"auto"`` always resolves to
    ``"sparse"`` (no scipy needed), ``"dict"`` keeps the reference
    path, and both resolve to answers that are bitwise-identical.

    Raises:
        ConfigurationError: on a name outside
            :data:`~repro.config.ENGINE_CHOICES`.
    """
    if name not in ENGINE_CHOICES:
        raise ConfigurationError(
            f"query engine must be one of {ENGINE_CHOICES}, got {name!r}")
    return "sparse" if name == "auto" else name


# ----------------------------------------------------------------------
# Landmark vectors + epoch-keyed cache
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class LandmarkVectors:
    """One landmark's per-topic inverted list as aligned numpy arrays.

    Attributes:
        positions: Dense snapshot positions of the stored nodes, in
            list order (descending stored score) — the scatter index of
            the composition.
        nodes: The stored node ids, aligned with *positions*.
        score: ``σ(λ, v, t)`` per entry.
        topo: ``topo_β(λ, v)`` per entry.
        topo_ab: ``topo_{αβ}(λ, v)`` per entry.
        extras: Entries whose node is absent from the snapshot (an
            index rebuilt on a grown graph composed against an older
            pinned snapshot, ``allow_stale`` serving). Kept in list
            order as raw entries; composed through a dict side-channel.
        version: The index list version these arrays were built from
            (see :meth:`LandmarkIndex.version_of`); a mismatch at
            lookup time invalidates the cached vectors.
    """

    positions: np.ndarray
    nodes: np.ndarray
    score: np.ndarray
    topo: np.ndarray
    topo_ab: np.ndarray
    extras: Tuple[LandmarkEntry, ...]
    version: int

    def __len__(self) -> int:
        """Number of stored entries (dense + extras)."""
        return int(self.nodes.size) + len(self.extras)


def vectors_from_entries(snapshot: GraphSnapshot,
                         entries: Sequence[LandmarkEntry],
                         version: int = 0) -> LandmarkVectors:
    """Materialise an inverted list as :class:`LandmarkVectors`."""
    position = snapshot.position
    count = len(entries)
    positions = np.empty(count, dtype=np.int64)
    nodes = np.empty(count, dtype=np.int64)
    score = np.empty(count, dtype=np.float64)
    topo = np.empty(count, dtype=np.float64)
    topo_ab = np.empty(count, dtype=np.float64)
    extras: List[LandmarkEntry] = []
    kept = 0
    for entry in entries:
        pos = position.get(entry.node)
        if pos is None:
            extras.append(entry)
            continue
        positions[kept] = pos
        nodes[kept] = entry.node
        score[kept] = entry.score
        topo[kept] = entry.topo
        topo_ab[kept] = entry.topo_ab
        kept += 1
    return LandmarkVectors(
        positions=positions[:kept], nodes=nodes[:kept], score=score[:kept],
        topo=topo[:kept], topo_ab=topo_ab[:kept],
        extras=tuple(extras), version=version)


class LandmarkVectorCache:
    """Bounded LRU of :class:`LandmarkVectors`, epoch- and version-keyed.

    Keys are ``(snapshot.epoch, landmark, topic)``: an epoch bump (the
    graph mutated and the serving layer re-pinned) changes every key,
    so stale vectors are never served and age out of the LRU. Within an
    epoch, a maintainer refreshing a list via
    :meth:`~repro.landmarks.index.LandmarkIndex.set_recommendations`
    bumps that list's version; the cached vectors carry the version
    they were built from and a mismatch is treated as a miss.

    Hit/miss traffic is exported as the ``approx.cache_hits_total`` and
    ``approx.cache_misses_total`` counters (see docs/OBSERVABILITY.md).
    """

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._store: "OrderedDict[Tuple[int, int, str], LandmarkVectors]" = (
            OrderedDict())

    def __len__(self) -> int:
        return len(self._store)

    def get_or_build(
        self,
        epoch: int,
        landmark: int,
        topic: str,
        version: int,
        build: Callable[[], LandmarkVectors],
    ) -> LandmarkVectors:
        """Cached vectors for ``(epoch, landmark, topic)`` at *version*.

        A stored entry whose version differs from *version* (the list
        was replaced since it was vectorised) counts as a miss and is
        rebuilt in place.
        """
        key = (epoch, landmark, topic)
        cached = self._store.get(key)
        if cached is not None and cached.version == version:
            self._store.move_to_end(key)
            self.hits += 1
            _obs.count("approx.cache_hits_total")
            return cached
        self.misses += 1
        _obs.count("approx.cache_misses_total")
        vectors = build()
        self._store[key] = vectors
        self._store.move_to_end(key)
        while len(self._store) > self.max_entries:
            self._store.popitem(last=False)
        return vectors

    def clear(self) -> None:
        """Drop every cached vector (counters are kept)."""
        self._store.clear()


# ----------------------------------------------------------------------
# Stacked (whole-index) composition arrays
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class StackedLandmarkLists:
    """Every landmark's per-topic list, concatenated once per topic.

    The per-query composition then touches numpy exactly once per
    array op instead of once per landmark: gather each hit landmark's
    ``σ(u,λ,t)`` / ``topo_{αβ}(u,λ)`` from the dense exploration,
    ``np.repeat`` them across the landmark's slice, and scatter-add the
    whole concatenation. Slices are stored in **ascending landmark
    order**, so the single ``np.add.at`` replays the reference path's
    per-landmark accumulation sequence bit for bit.

    Attributes:
        landmark_ids: Landmarks present in the snapshot, ascending.
        landmark_positions: Their dense snapshot positions, aligned.
        lindptr: CSR-style slice boundaries into the entry arrays
            (slice *i* holds ``landmark_ids[i]``'s stored list).
        counts: ``np.diff(lindptr)`` — per-slice entry counts,
            precomputed once.
        positions / nodes / score / topo: The concatenated entry
            arrays (see :class:`LandmarkVectors`; ``topo_ab`` of the
            stored entries is not needed by Proposition 4).
        extras: ``(slice_index, entries)`` for landmarks whose list
            mentions nodes absent from the snapshot (stale serving).
        epoch: Snapshot epoch the positions were resolved against.
        mutations: :attr:`LandmarkIndex.mutation_count` at build time —
            any later ``set_recommendations`` invalidates the stack.
    """

    landmark_ids: np.ndarray
    landmark_positions: np.ndarray
    lindptr: np.ndarray
    counts: np.ndarray
    positions: np.ndarray
    nodes: np.ndarray
    score: np.ndarray
    topo: np.ndarray
    extras: Tuple[Tuple[int, Tuple[LandmarkEntry, ...]], ...]
    epoch: int
    mutations: int


def stack_landmark_vectors(
    snapshot: GraphSnapshot,
    landmarks_sorted: Sequence[int],
    vectors_of: Callable[[int], LandmarkVectors],
    mutations: int,
) -> StackedLandmarkLists:
    """Concatenate per-landmark vectors into one composition stack.

    Args:
        snapshot: The pinned serving snapshot.
        landmarks_sorted: All landmark ids, **ascending** (the
            reference composition order).
        vectors_of: Per-landmark vector supplier — normally a
            :class:`LandmarkVectorCache` lookup, so cache hit/miss
            accounting and version invalidation stay in effect.
        mutations: The index's current mutation count, recorded for
            freshness checks.
    """
    position = snapshot.position
    ids: List[int] = []
    lm_positions: List[int] = []
    per: List[LandmarkVectors] = []
    for landmark in landmarks_sorted:
        pos = position.get(landmark)
        if pos is None:
            continue
        ids.append(landmark)
        lm_positions.append(pos)
        per.append(vectors_of(landmark))
    lindptr = np.zeros(len(per) + 1, dtype=np.int64)
    for i, vectors in enumerate(per):
        lindptr[i + 1] = lindptr[i] + vectors.nodes.size
    empty_i = np.zeros(0, dtype=np.int64)
    empty_f = np.zeros(0, dtype=np.float64)
    return StackedLandmarkLists(
        landmark_ids=np.asarray(ids, dtype=np.int64),
        landmark_positions=np.asarray(lm_positions, dtype=np.int64),
        lindptr=lindptr,
        counts=np.diff(lindptr),
        positions=(np.concatenate([v.positions for v in per])
                   if per else empty_i),
        nodes=np.concatenate([v.nodes for v in per]) if per else empty_i,
        score=np.concatenate([v.score for v in per]) if per else empty_f,
        topo=np.concatenate([v.topo for v in per]) if per else empty_f,
        extras=tuple((i, v.extras) for i, v in enumerate(per) if v.extras),
        epoch=snapshot.epoch,
        mutations=mutations,
    )


def compose_stacked(
    stacked: StackedLandmarkLists,
    dense_scores: np.ndarray,
    dense_topo_alphabeta: np.ndarray,
    user: int,
    skip_user_landmark: bool,
) -> Tuple[np.ndarray, Dict[int, float], List[int]]:
    """Proposition-4 composition over the stacked arrays.

    Bitwise-identical to the reference loop (and to
    :func:`compose_landmark_contributions`): hit landmarks are the
    slices with ``topo_{αβ}(u,λ) > 0``, processed in ascending landmark
    order; the single ``np.add.at`` applies contributions in exactly
    the dict loop's per-landmark, per-entry sequence, and the user's
    own entries are masked to ``0.0`` (a bitwise no-op on these
    non-negative sums).

    Args:
        stacked: The cached composition stack for this topic.
        dense_scores: ``σ(u,·,t)`` per dense position (the exploration
            output); *copied*, never mutated.
        dense_topo_alphabeta: ``topo_{αβ}(u,·)`` per dense position.
        user: The query node.
        skip_user_landmark: ``True`` at exploration depth ≥ 1 — the
            user's own landmark list must not be composed (its mass was
            explored directly).

    Returns:
        ``(combined, extra_scores, encountered)``: the dense combined
        scores, the side-channel scores of off-snapshot nodes, and the
        hit landmark ids ascending.
    """
    lm_positions = stacked.landmark_positions
    topo_ab_lm = dense_topo_alphabeta[lm_positions]
    hit_mask = topo_ab_lm > 0.0
    if skip_user_landmark and stacked.landmark_ids.size:
        j = int(stacked.landmark_ids.searchsorted(user))
        if (j < stacked.landmark_ids.size
                and int(stacked.landmark_ids[j]) == user):
            hit_mask[j] = False

    combined = dense_scores.copy()
    extra_scores: Dict[int, float] = {}
    if not hit_mask.any():
        return combined, extra_scores, []

    sigma_lm = dense_scores[lm_positions]
    counts = stacked.counts
    if hit_mask.all():
        entry_positions = stacked.positions
        entry_nodes = stacked.nodes
        entry_score = stacked.score
        entry_topo = stacked.topo
        sigma_arr = sigma_lm.repeat(counts)
        topo_ab_arr = topo_ab_lm.repeat(counts)
    else:
        hit_idx = hit_mask.nonzero()[0]
        starts = stacked.lindptr[hit_idx]
        hit_counts = counts[hit_idx]
        total = int(hit_counts.sum())
        bases = np.empty_like(hit_counts)
        bases[0] = 0
        hit_counts[:-1].cumsum(out=bases[1:])
        select = (np.arange(total, dtype=np.int64)
                  + (starts - bases).repeat(hit_counts))
        entry_positions = stacked.positions[select]
        entry_nodes = stacked.nodes[select]
        entry_score = stacked.score[select]
        entry_topo = stacked.topo[select]
        sigma_arr = sigma_lm[hit_idx].repeat(hit_counts)
        topo_ab_arr = topo_ab_lm[hit_idx].repeat(hit_counts)

    if entry_nodes.size:
        contribution = sigma_arr * entry_topo + topo_ab_arr * entry_score
        contribution = np.where(entry_nodes == user, 0.0, contribution)
        np.add.at(combined, entry_positions, contribution)

    for slice_index, entries in stacked.extras:
        if not hit_mask[slice_index]:
            continue
        sigma = float(sigma_lm[slice_index])
        topo_ab = float(topo_ab_lm[slice_index])
        for entry in entries:
            if entry.node == user:
                continue
            extra = sigma * entry.topo + topo_ab * entry.score
            if extra:
                extra_scores[entry.node] = (
                    extra_scores.get(entry.node, 0.0) + extra)

    encountered = [int(x) for x in stacked.landmark_ids[hit_mask]]
    return combined, extra_scores, encountered


# ----------------------------------------------------------------------
# Vectorized Proposition-4 composition
# ----------------------------------------------------------------------

def compose_landmark_contributions(
    snapshot: GraphSnapshot,
    base: Union[Mapping[int, float], np.ndarray],
    hits: Sequence[Tuple[float, float, LandmarkVectors]],
    user: int,
) -> Dict[int, float]:
    """Proposition-4 composition as one concatenated scatter-add.

    Args:
        snapshot: The serving snapshot (supplies the dense index).
        base: The directly-explored scores — a node → score mapping or
            a dense per-position array. A dense array is copied, never
            mutated.
        hits: ``(σ(u,λ,t), topo_{αβ}(u,λ), vectors)`` per encountered
            landmark, **in ascending landmark order** — the reference
            path's accumulation order, which this function preserves:
            the chunks are concatenated in hit order and ``np.add.at``
            applies updates in index order, so every node receives its
            contributions in exactly the dict loop's sequence.
        user: The query node; its own stored entries contribute nothing
            (masked to ``0.0``, a bitwise no-op on these non-negative
            sums, where the dict path skips them).

    Returns:
        Node → combined score, positive entries only — the same mapping
        the dict compose loop builds.
    """
    dense: np.ndarray
    if isinstance(base, np.ndarray):
        dense = base.copy()
    else:
        dense = np.zeros(len(snapshot))
        position = snapshot.position
        for node, value in base.items():
            dense[position[node]] = value

    position_chunks: List[np.ndarray] = []
    value_chunks: List[np.ndarray] = []
    extra_scores: Dict[int, float] = {}
    for sigma, topo_ab, vectors in hits:
        contribution = sigma * vectors.topo + topo_ab * vectors.score
        if vectors.nodes.size:
            contribution = np.where(vectors.nodes == user, 0.0, contribution)
            position_chunks.append(vectors.positions)
            value_chunks.append(contribution)
        for entry in vectors.extras:
            if entry.node == user:
                continue
            extra = sigma * entry.topo + topo_ab * entry.score
            if extra:
                extra_scores[entry.node] = (
                    extra_scores.get(entry.node, 0.0) + extra)
    if position_chunks:
        np.add.at(dense, np.concatenate(position_chunks),
                  np.concatenate(value_chunks))

    combined = dense_scores_to_dict(snapshot, dense)
    for node, value in extra_scores.items():
        combined[node] = value
    return combined


def dense_scores_to_dict(snapshot: GraphSnapshot,
                         dense: np.ndarray) -> Dict[int, float]:
    """Sparse node → score mapping of a dense per-position array."""
    node_ids = snapshot.node_ids
    return {node_ids[i]: float(dense[i])
            for i in np.nonzero(dense)[0].tolist()}


# ----------------------------------------------------------------------
# Batched depth-k exploration
# ----------------------------------------------------------------------

@dataclass
class DenseExploration:
    """Dense-array twin of :class:`~repro.core.exact.ScoreState`.

    Arrays are indexed by dense snapshot position; values are
    bitwise-identical to the reference engine's dicts (missing dict
    entries ↔ zeros).
    """

    source: int
    scores: np.ndarray
    topo_beta: np.ndarray
    topo_alphabeta: np.ndarray
    iterations: int
    converged: bool

    def to_state(self, snapshot: GraphSnapshot, topic: str) -> ScoreState:
        """Convert to the dict-based :class:`ScoreState` API shape."""
        node_ids = snapshot.node_ids

        def sparse(dense: np.ndarray) -> Dict[int, float]:
            return {node_ids[i]: float(dense[i])
                    for i in np.nonzero(dense)[0].tolist()}

        return ScoreState(
            source=self.source,
            scores={topic: sparse(self.scores)},
            topo_beta=sparse(self.topo_beta),
            topo_alphabeta=sparse(self.topo_alphabeta),
            iterations=self.iterations,
            converged=self.converged,
        )


class QueryEngine:
    """Batched query-side frontier expansion over one pinned snapshot.

    One instance per (snapshot, similarity, params) triple; per-topic
    label-similarity and authority arrays are built lazily on first use
    and shared across queries, mirroring how
    :class:`~repro.core.fast.SparseEngine` amortises its per-topic
    matrices. All reads go through the snapshot's shared CSR arrays —
    nothing is copied.
    """

    def __init__(
        self,
        snapshot: GraphSnapshot,
        similarity: SimilarityMatrix,
        params: ScoreParams,
        authority: Optional[AuthorityIndex] = None,
        sim_cache: Optional[_MaxSimCache] = None,
    ) -> None:
        self.snapshot = snapshot
        self.params = params
        #: Dense-position → node id, for array-side ranking.
        self.node_ids_array = np.asarray(snapshot.node_ids, dtype=np.int64)
        self._similarity = similarity
        self._authority = (authority if authority is not None
                           else snapshot.authority())
        self._sim_cache = (sim_cache if sim_cache is not None
                           else _MaxSimCache(similarity))
        self._label_sims: Dict[str, np.ndarray] = {}
        self._sims_edge: Dict[str, np.ndarray] = {}
        self._auth: Dict[str, np.ndarray] = {}
        self._keep_masks: Dict[frozenset, np.ndarray] = {}

    # ------------------------------------------------------------------
    def _label_similarities(self, topic: str) -> np.ndarray:
        """``maxsim(label, topic)`` per interned label id."""
        sims = self._label_sims.get(topic)
        if sims is None:
            cache = self._sim_cache
            sims = np.empty(len(self.snapshot.labels))
            for i, label in enumerate(self.snapshot.labels):
                sims[i] = cache.max_similarity(label, topic) if label else 0.0
            self._label_sims[topic] = sims
        return sims

    def _edge_similarities(self, topic: str) -> np.ndarray:
        """``maxsim(label(e), topic)`` per CSR edge slot (pre-gathered)."""
        sims_edge = self._sims_edge.get(topic)
        if sims_edge is None:
            sims_edge = self._label_similarities(topic)[
                self.snapshot.out_label_ids]
            self._sims_edge[topic] = sims_edge
        return sims_edge

    def _auth_values(self, topic: str) -> np.ndarray:
        """``auth(v, topic)`` per dense position."""
        auth = self._auth.get(topic)
        if auth is None:
            authority = self._authority
            auth = np.empty(len(self.snapshot))
            for i, node in enumerate(self.snapshot.node_ids):
                auth[i] = authority.auth(node, topic)
            self._auth[topic] = auth
        return auth

    def _keep_mask(self,
                   absorbing: Optional[frozenset]) -> Optional[np.ndarray]:
        """``True`` where mass keeps walking (i.e. *not* absorbing)."""
        if not absorbing:
            return None
        mask = self._keep_masks.get(absorbing)
        if mask is None:
            mask = np.ones(len(self.snapshot), dtype=bool)
            position = self.snapshot.position
            for node in absorbing:
                pos = position.get(node)
                if pos is not None:
                    mask[pos] = False
            self._keep_masks[absorbing] = mask
        return mask

    # ------------------------------------------------------------------
    def explore(self, source: int, topic: str, depth: int,
                absorbing: Optional[frozenset] = None) -> DenseExploration:
        """Depth-limited propagation from *source*, absorbed at landmarks.

        Replays :func:`~repro.core.exact.single_source_scores` (one
        topic, ``max_depth=depth``) with batched array rounds; see the
        module docstring for why the result is bitwise-identical.
        """
        snapshot = self.snapshot
        n = len(snapshot)
        src = snapshot.index_of(source)
        params = self.params
        beta = params.beta
        alphabeta = params.edge_decay
        edge_factor = params.beta * params.alpha
        sims_edge = self._edge_similarities(topic)
        auth = self._auth_values(topic)
        keep = self._keep_mask(absorbing)
        indptr = snapshot.out_indptr
        indices = snapshot.out_indices

        cum_r = np.zeros(n)
        cum_tb = np.zeros(n)
        cum_tab = np.zeros(n)
        cum_tb[src] = 1.0
        cum_tab[src] = 1.0
        front_r = np.zeros(n)
        front_tb = np.zeros(n)
        front_tab = np.zeros(n)
        front_tb[src] = 1.0
        front_tab[src] = 1.0

        iterations = 0
        converged = False
        for _ in range(depth):
            # The reference engine's `touched` set: frontier mass in
            # either the topo_beta or the recommendation channel
            # (topo_alphabeta keys are always a subset of topo_beta's).
            active = (front_tb != 0.0) | (front_r != 0.0)
            if keep is not None:
                source_active = bool(active[src])
                active &= keep
                active[src] = source_active
            walkers = active.nonzero()[0]
            if walkers.size == 0:
                converged = True
                break

            starts = indptr[walkers]
            counts = indptr[walkers + 1] - starts
            total = int(counts.sum())
            # Gathered edges are ordered (walker asc, neighbour asc) —
            # exactly the dict loop's `sorted(touched)` + CSR-row order,
            # which is what makes the scatter-adds below replay its
            # per-target accumulation sequence.
            bases = np.empty_like(counts)
            bases[0] = 0
            counts[:-1].cumsum(out=bases[1:])
            edge_index = (np.arange(total, dtype=np.int64)
                          + (starts - bases).repeat(counts))
            walker_per_edge = walkers.repeat(counts)
            neighbor = indices[edge_index]

            tb_edge = front_tb[walker_per_edge]
            tab_edge = front_tab[walker_per_edge]
            r_edge = front_r[walker_per_edge]

            next_tb = np.zeros(n)
            np.add.at(next_tb, neighbor, beta * tb_edge)
            next_tab = np.zeros(n)
            np.add.at(next_tab, neighbor, alphabeta * tab_edge)
            # Left-to-right association matches the reference
            # expression ((tab·edge_factor)·maxsim)·auth; maxsim and
            # auth stay separate factors, never pre-multiplied.
            semantic = (tab_edge * edge_factor * sims_edge[edge_index]
                        * auth[neighbor])
            increment = beta * r_edge + semantic
            next_r = np.zeros(n)
            np.add.at(next_r, neighbor, increment)

            iterations += 1
            new_mass = (math.fsum(next_r[next_r != 0.0])
                        + math.fsum(next_tb[next_tb != 0.0]))
            cum_tb += next_tb
            cum_tab += next_tab
            cum_r += next_r
            front_r, front_tb, front_tab = next_r, next_tb, next_tab
            if new_mass < params.tolerance:
                converged = True
                break

        return DenseExploration(
            source=source,
            scores=cum_r,
            topo_beta=cum_tb,
            topo_alphabeta=cum_tab,
            iterations=iterations,
            converged=converged,
        )
