"""Query-time approximate recommendation — Algorithm 2 / Section 4.2.

The query node explores its k-vicinity (k small, 2 in the paper),
pruning the propagation at every landmark it meets; the pruned mass is
reinstated by composing the landmark's precomputed vectors with the
query-side scores via Proposition 4:

``σ̃_λ(u,v,t) = σ(u,λ,t)·topo_β(λ,v) + topo_{βα}(u,λ)·σ(λ,v,t)``

and ``σ̃_Λ = Σ_λ σ̃_λ`` plus the scores of nodes reached directly
during the exploration (node ``r2`` of the paper's Figure 2).

Because only paths through landmarks (plus the short directly-explored
ones) are counted, the approximation is a *lower bound* of the exact
score — the opposite of classical landmark distance oracles, as the
paper notes after Proposition 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..api import (RecommendationRequest, RecommendationResponse,
                   response_from_pairs, warn_legacy)
from ..config import LandmarkParams, ScoreParams
from ..core.exact import ScoreState, _MaxSimCache, single_source_scores
from ..core.scores import AuthorityIndex
from ..graph.snapshot import GraphLike, GraphSnapshot, as_snapshot
from ..obs import runtime as _obs
from ..semantics.matrix import SimilarityMatrix
from .index import LandmarkIndex


def explore_with_landmarks(
    graph: GraphLike,
    source: int,
    topics: Sequence[str],
    similarity: SimilarityMatrix,
    landmarks: frozenset,
    params: ScoreParams = ScoreParams(),
    depth: int = 2,
    authority: Optional[AuthorityIndex] = None,
    sim_cache: Optional[_MaxSimCache] = None,
    allow_stale: bool = False,
) -> ScoreState:
    """Depth-limited exploration from *source*, absorbed at landmarks."""
    return single_source_scores(
        graph, source, list(topics), similarity, authority=authority,
        params=params, max_depth=depth, sim_cache=sim_cache,
        absorbing=landmarks, allow_stale=allow_stale)


@dataclass
class ApproximateResult:
    """Outcome of one approximate query.

    Attributes:
        scores: Node → approximate recommendation score ``σ̃``.
        landmarks_encountered: Landmarks met during the exploration —
            the ``#lnd`` column of Table 6.
        exploration: The raw query-side :class:`ScoreState`.
    """

    scores: Dict[int, float]
    landmarks_encountered: Tuple[int, ...]
    exploration: ScoreState

    def ranked(self, top_n: Optional[int] = None,
               exclude: Iterable[int] = ()) -> List[Tuple[int, float]]:
        """Descending-score ranking, ties broken by node id."""
        excluded = set(exclude)
        entries = [(node, value) for node, value in self.scores.items()
                   if node not in excluded and value > 0.0]
        entries.sort(key=lambda kv: (-kv[1], kv[0]))
        return entries[:top_n] if top_n is not None else entries


class ApproximateRecommender:
    """Landmark-accelerated Tr recommender (Algorithm 2).

    Example::

        landmarks = select_landmarks(graph, "In-Deg", 100, rng=7)
        index = LandmarkIndex.build(graph, landmarks, topics, sim)
        fast = ApproximateRecommender(graph, sim, index)
        fast.recommend(user, "technology", top_n=10)
    """

    def __init__(
        self,
        graph: GraphLike,
        similarity: SimilarityMatrix,
        index: LandmarkIndex,
        params: Optional[ScoreParams] = None,
        landmark_params: Optional[LandmarkParams] = None,
        authority: Optional[AuthorityIndex] = None,
        allow_stale: bool = False,
    ) -> None:
        self.graph = graph
        self.index = index
        self.params = params if params is not None else index.params
        self.landmark_params = (landmark_params if landmark_params is not None
                                else index.landmark_params)
        self.allow_stale = allow_stale
        self._similarity = similarity
        self._authority_supplied = authority
        self._view = as_snapshot(graph, allow_stale)
        self._authority = (authority if authority is not None
                           else self._view.authority())
        self._sim_cache = _MaxSimCache(similarity)
        self._landmark_set = frozenset(index.landmarks)
        # Sorted composition order: float accumulation order — and
        # therefore tie-sensitive rankings — stays deterministic across
        # processes (frozenset iteration order depends on the hash seed).
        self._sorted_landmarks = sorted(self._landmark_set)

    def _resolve(self) -> GraphSnapshot:
        """Current serving snapshot — re-pinned when a live graph moved."""
        view = as_snapshot(self.graph, self.allow_stale)
        if view is not self._view:
            self._view = view
            if self._authority_supplied is None:
                self._authority = view.authority()
        return view

    def query(self, user: int, topic: str,
              depth: Optional[int] = None,
              allow_stale: Optional[bool] = None) -> ApproximateResult:
        """Compute approximate scores of every candidate for *user*.

        Args:
            user: Query node.
            topic: Single query topic (Algorithm 2 is per-topic; the
                public :meth:`recommend` also accepts only one topic to
                mirror the paper).
            depth: Exploration depth override (default: the index's
                ``query_depth``). An explicit ``depth=0`` runs *zero*
                exploration rounds — landmark-list composition only.
                With no exploration there is no directly-explored mass
                to double count, so when *user* is itself a landmark
                its own stored list is composed (``topo_{αβ}(u,u)=1``
                makes that exactly the precomputed recommendations);
                at ``depth>=1`` the user's own landmark is skipped as
                always.
            allow_stale: Per-call staleness override (``None`` defers
                to the constructor flag).
        """
        exploration_depth = (depth if depth is not None
                             else self.landmark_params.query_depth)
        effective_stale = bool(allow_stale) or self.allow_stale
        view = as_snapshot(self.graph, effective_stale)
        if view is not self._view:
            self._view = view
            if self._authority_supplied is None:
                self._authority = view.authority()
        with _obs.span("approx.query") as _sp:
            if _sp:
                _sp.set(user=user, topic=topic, depth=exploration_depth)
            with _obs.span("approx.explore") as _explore:
                state = explore_with_landmarks(
                    view, user, [topic], self._similarity,
                    landmarks=self._landmark_set, params=self.params,
                    depth=exploration_depth, authority=self._authority,
                    sim_cache=self._sim_cache, allow_stale=effective_stale)
                if _explore:
                    _explore.set(depth=exploration_depth,
                                 frontier_size=len(state.topo_alphabeta))

            with _obs.span("approx.compose") as _compose:
                # Directly-reached nodes keep their exploration score.
                combined: Dict[int, float] = dict(state.scores.get(topic, {}))

                encountered: List[int] = []
                for landmark in self._sorted_landmarks:
                    if landmark == user and exploration_depth > 0:
                        continue
                    topo_ab = state.topo_alphabeta.get(landmark, 0.0)
                    if topo_ab <= 0.0:
                        continue
                    encountered.append(landmark)
                    sigma_to_landmark = state.score(landmark, topic)
                    for entry in self.index.recommendations(landmark, topic):
                        if entry.node == user:
                            continue
                        contribution = (sigma_to_landmark * entry.topo
                                        + topo_ab * entry.score)
                        if contribution:
                            combined[entry.node] = (
                                combined.get(entry.node, 0.0) + contribution)
                if _compose:
                    _compose.set(landmarks_hit=len(encountered),
                                 candidates=len(combined))

            _obs.count("approx.queries_total")
            _obs.count("approx.landmarks_encountered_total",
                       len(encountered))
            if _sp:
                _sp.set(landmarks_hit=len(encountered))
        return ApproximateResult(
            scores=combined,
            landmarks_encountered=tuple(encountered),
            exploration=state,
        )

    def recommend(self, user: int, topic: str, top_n: int = 10, *,
                  allow_stale: bool = False,
                  depth: Optional[int] = None,
                  exclude_followed: bool = True) -> RecommendationResponse:
        """Top-n approximate recommendations for *user* on *topic*.

        Implements the :class:`repro.api.Recommender` protocol; the old
        tuple-list shape survives on :meth:`recommend_pairs` (deprecated).
        """
        with _obs.span("approx.recommend") as _sp:
            if _sp:
                _sp.set(user=user, topic=topic, top_n=top_n)
            result = self.query(user, topic, depth=depth,
                                allow_stale=allow_stale)
            with _obs.span("approx.rank") as _rank:
                excluded = {user}
                if exclude_followed:
                    excluded.update(self._view.out_neighbors(user))
                ranked = result.ranked(top_n=top_n, exclude=excluded)
                if _rank:
                    _rank.set(candidates=len(result.scores),
                              returned=len(ranked))
        request = RecommendationRequest(
            user=user, topic=topic, top_n=top_n, allow_stale=allow_stale,
            depth=depth)
        return response_from_pairs(
            request, ranked, engine="approximate",
            snapshot_epoch=self._view.epoch)

    def recommend_pairs(self, user: int, topic: str, top_n: int = 10,  # repro: ignore[R9] -- sanctioned deprecation shim for the pre-repro.api tuple shape
                        depth: Optional[int] = None,
                        exclude_followed: bool = True
                        ) -> List[Tuple[int, float]]:
        """Deprecated tuple-returning shim for the pre-``repro.api`` shape."""
        warn_legacy("ApproximateRecommender.recommend_pairs",
                    "ApproximateRecommender.recommend")
        response = self.recommend(user, topic, top_n=top_n, depth=depth,
                                  exclude_followed=exclude_followed)
        return response.pairs()
