"""Query-time approximate recommendation — Algorithm 2 / Section 4.2.

The query node explores its k-vicinity (k small, 2 in the paper),
pruning the propagation at every landmark it meets; the pruned mass is
reinstated by composing the landmark's precomputed vectors with the
query-side scores via Proposition 4:

``σ̃_λ(u,v,t) = σ(u,λ,t)·topo_β(λ,v) + topo_{βα}(u,λ)·σ(λ,v,t)``

and ``σ̃_Λ = Σ_λ σ̃_λ`` plus the scores of nodes reached directly
during the exploration (node ``r2`` of the paper's Figure 2).

Because only paths through landmarks (plus the short directly-explored
ones) are counted, the approximation is a *lower bound* of the exact
score — the opposite of classical landmark distance oracles, as the
paper notes after Proposition 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..api import (RecommendationRequest, RecommendationResponse,
                   response_from_pairs)
from ..config import LandmarkParams, ScoreParams
from ..core.exact import ScoreState, _MaxSimCache, single_source_scores
from ..core.scores import AuthorityIndex
from ..graph.snapshot import GraphLike, GraphSnapshot, as_snapshot
from ..obs import runtime as _obs
from ..semantics.matrix import SimilarityMatrix
from .index import LandmarkIndex
from .query_engine import (DenseExploration, LandmarkVectorCache,
                           LandmarkVectors, QueryEngine,
                           StackedLandmarkLists, compose_stacked,
                           dense_scores_to_dict, resolve_query_engine,
                           stack_landmark_vectors, vectors_from_entries)


def explore_with_landmarks(  # repro: ignore[W4] -- paper Algorithm 2's exploration primitive, exported standalone via repro.landmarks for notebooks and ablations
    graph: GraphLike,
    source: int,
    topics: Sequence[str],
    similarity: SimilarityMatrix,
    landmarks: frozenset,
    params: ScoreParams = ScoreParams(),
    depth: int = 2,
    authority: Optional[AuthorityIndex] = None,
    sim_cache: Optional[_MaxSimCache] = None,
    allow_stale: bool = False,
) -> ScoreState:
    """Depth-limited exploration from *source*, absorbed at landmarks."""
    return single_source_scores(
        graph, source, list(topics), similarity, authority=authority,
        params=params, max_depth=depth, sim_cache=sim_cache,
        absorbing=landmarks, allow_stale=allow_stale)


@dataclass
class ApproximateResult:
    """Outcome of one approximate query.

    Attributes:
        scores: Node → approximate recommendation score ``σ̃``.
        landmarks_encountered: Landmarks met during the exploration —
            the ``#lnd`` column of Table 6.
        exploration: The raw query-side :class:`ScoreState`.
    """

    scores: Dict[int, float]
    landmarks_encountered: Tuple[int, ...]
    exploration: ScoreState

    def ranked(self, top_n: Optional[int] = None,
               exclude: Iterable[int] = ()) -> List[Tuple[int, float]]:
        """Descending-score ranking, ties broken by node id."""
        excluded = set(exclude)
        entries = [(node, value) for node, value in self.scores.items()
                   if node not in excluded and value > 0.0]
        entries.sort(key=lambda kv: (-kv[1], kv[0]))
        return entries[:top_n] if top_n is not None else entries


class ApproximateRecommender:
    """Landmark-accelerated Tr recommender (Algorithm 2).

    Example::

        landmarks = select_landmarks(graph, "In-Deg", 100, rng=7)
        index = LandmarkIndex.build(graph, landmarks, topics, sim)
        fast = ApproximateRecommender(graph, sim, index)
        fast.recommend(user, "technology", top_n=10)
    """

    def __init__(
        self,
        graph: GraphLike,
        similarity: SimilarityMatrix,
        index: LandmarkIndex,
        params: Optional[ScoreParams] = None,
        landmark_params: Optional[LandmarkParams] = None,
        authority: Optional[AuthorityIndex] = None,
        allow_stale: bool = False,
        query_engine: str = "auto",
        vector_cache: Optional[LandmarkVectorCache] = None,
    ) -> None:
        self.graph = graph
        self.index = index
        self.params = params if params is not None else index.params
        self.landmark_params = (landmark_params if landmark_params is not None
                                else index.landmark_params)
        self.allow_stale = allow_stale
        #: Concrete query engine: ``"sparse"`` (the vectorised
        #: :class:`~repro.landmarks.query_engine.QueryEngine`) or
        #: ``"dict"`` (the reference path). Both answer bitwise
        #: identically; ``"auto"`` resolves to ``"sparse"``.
        self.query_engine = resolve_query_engine(query_engine)
        self._similarity = similarity
        self._authority_supplied = authority
        self._view = as_snapshot(graph, allow_stale)
        self._authority = (authority if authority is not None
                           else self._view.authority())
        self._sim_cache = _MaxSimCache(similarity)
        self._landmark_set = frozenset(index.landmarks)
        # Sorted composition order: float accumulation order — and
        # therefore tie-sensitive rankings — stays deterministic across
        # processes (frozenset iteration order depends on the hash seed).
        self._sorted_landmarks = sorted(self._landmark_set)
        self._vector_cache = (vector_cache if vector_cache is not None
                              else LandmarkVectorCache())
        self._engine_impl: Optional[QueryEngine] = None
        # topic -> stacked composition arrays; validated per query
        # against (snapshot epoch, index mutation count).
        self._stacked: Dict[str, StackedLandmarkLists] = {}

    def _resolve(self, allow_stale: Optional[bool] = None) -> GraphSnapshot:
        """Current serving snapshot — re-pinned when a live graph moved.

        Args:
            allow_stale: Per-call staleness override; ``None`` defers
                to the constructor flag.
        """
        effective = (self.allow_stale if allow_stale is None
                     else bool(allow_stale))
        view = as_snapshot(self.graph, allow_stale=effective)
        if view is not self._view:
            self._view = view
            if self._authority_supplied is None:
                self._authority = view.authority()
        return view

    def _engine_for(self, view: GraphSnapshot) -> QueryEngine:
        """The vectorised engine pinned to *view* (rebuilt on re-pin)."""
        impl = self._engine_impl
        if impl is None or impl.snapshot is not view:
            impl = QueryEngine(view, self._similarity, self.params,
                               authority=self._authority,
                               sim_cache=self._sim_cache)
            self._engine_impl = impl
        return impl

    def _vectors_for(self, view: GraphSnapshot, landmark: int,
                     topic: str) -> LandmarkVectors:
        """Cached vectorised view of one inverted list."""
        version = self.index.version_of(landmark, topic)
        return self._vector_cache.get_or_build(
            view.epoch, landmark, topic, version,
            lambda: vectors_from_entries(
                view, self.index.recommendations(landmark, topic), version))

    def query(self, user: int, topic: str,
              depth: Optional[int] = None,
              allow_stale: Optional[bool] = None) -> ApproximateResult:
        """Compute approximate scores of every candidate for *user*.

        Args:
            user: Query node.
            topic: Single query topic (Algorithm 2 is per-topic; the
                public :meth:`recommend` also accepts only one topic to
                mirror the paper).
            depth: Exploration depth override (default: the index's
                ``query_depth``). An explicit ``depth=0`` runs *zero*
                exploration rounds — landmark-list composition only.
                With no exploration there is no directly-explored mass
                to double count, so when *user* is itself a landmark
                its own stored list is composed (``topo_{αβ}(u,u)=1``
                makes that exactly the precomputed recommendations);
                at ``depth>=1`` the user's own landmark is skipped as
                always.
            allow_stale: Per-call staleness override (``None`` defers
                to the constructor flag).
        """
        exploration_depth = (depth if depth is not None
                             else self.landmark_params.query_depth)
        effective_stale = (self.allow_stale if allow_stale is None
                           else bool(allow_stale))
        view = self._resolve(allow_stale=effective_stale)
        if self.query_engine == "sparse":
            dense, combined_dense, extra_scores, encountered = (
                self._query_core(view, user, topic, exploration_depth))
            combined = dense_scores_to_dict(view, combined_dense)
            for node, value in extra_scores.items():
                combined[node] = value
            state = dense.to_state(view, topic)
        else:
            with _obs.span("approx.query") as _sp:
                if _sp:
                    _sp.set(user=user, topic=topic, depth=exploration_depth,
                            engine=self.query_engine)
                combined, encountered, state = self._query_dict(
                    view, user, topic, exploration_depth, effective_stale)
                _obs.count("approx.queries_total")
                _obs.count("approx.landmarks_encountered_total",
                           len(encountered))
                if _sp:
                    _sp.set(landmarks_hit=len(encountered))
            if _sp:
                _obs.observe("approx.query_seconds", _sp.elapsed)
        return ApproximateResult(
            scores=combined,
            landmarks_encountered=tuple(encountered),
            exploration=state,
        )

    def _query_dict(
        self, view: GraphSnapshot, user: int, topic: str,
        exploration_depth: int, effective_stale: bool,
    ) -> Tuple[Dict[int, float], List[int], ScoreState]:
        """Reference query path: dict explore + entry-by-entry compose."""
        with _obs.span("approx.explore") as _explore:
            state = explore_with_landmarks(
                view, user, [topic], self._similarity,
                landmarks=self._landmark_set, params=self.params,
                depth=exploration_depth, authority=self._authority,
                sim_cache=self._sim_cache, allow_stale=effective_stale)
            if _explore:
                _explore.set(depth=exploration_depth,
                             frontier_size=len(state.topo_alphabeta))
        if _explore:
            _obs.observe("approx.explore_seconds", _explore.elapsed)

        with _obs.span("approx.compose") as _compose:
            # Directly-reached nodes keep their exploration score.
            combined: Dict[int, float] = dict(state.scores.get(topic, {}))

            encountered: List[int] = []
            for landmark in self._sorted_landmarks:
                if landmark == user and exploration_depth > 0:
                    continue
                topo_ab = state.topo_alphabeta.get(landmark, 0.0)
                if topo_ab <= 0.0:
                    continue
                encountered.append(landmark)
                sigma_to_landmark = state.score(landmark, topic)
                for entry in self.index.recommendations(landmark, topic):
                    if entry.node == user:
                        continue
                    contribution = (sigma_to_landmark * entry.topo
                                    + topo_ab * entry.score)
                    if contribution:
                        combined[entry.node] = (
                            combined.get(entry.node, 0.0) + contribution)
            if _compose:
                _compose.set(landmarks_hit=len(encountered),
                             candidates=len(combined))
        if _compose:
            _obs.observe("approx.compose_seconds", _compose.elapsed)
        return combined, encountered, state

    def _stacked_for(self, view: GraphSnapshot,
                     topic: str) -> StackedLandmarkLists:
        """Cached whole-index composition stack for *topic*.

        Invalidated by epoch bumps (the graph mutated and the serving
        layer re-pinned) and by any ``set_recommendations`` on the
        index (tracked through its O(1) mutation counter); rebuilt
        through the per-landmark :class:`LandmarkVectorCache` so the
        hit/miss counters and per-list version checks stay live.
        """
        mutations = self.index.mutation_count
        stacked = self._stacked.get(topic)
        if (stacked is not None and stacked.epoch == view.epoch
                and stacked.mutations == mutations):
            return stacked
        stacked = stack_landmark_vectors(
            view, self._sorted_landmarks,
            lambda landmark: self._vectors_for(view, landmark, topic),
            mutations)
        self._stacked[topic] = stacked
        return stacked

    def _query_core(
        self, view: GraphSnapshot, user: int, topic: str,
        exploration_depth: int,
    ) -> Tuple[DenseExploration, np.ndarray, Dict[int, float], List[int]]:
        """Batched query path — bitwise-identical to :meth:`_query_dict`.

        The exploration runs as array rounds over the snapshot's CSR
        arrays, and the Proposition-4 composition is one concatenated
        scatter-add over the cached stacked landmark vectors (see
        :mod:`repro.landmarks.query_engine` for the parity argument).
        Returns the dense exploration, the dense combined scores, the
        off-snapshot side-channel scores, and the hit landmarks —
        without materialising any per-node dict.
        """
        engine = self._engine_for(view)
        with _obs.span("approx.query") as _sp:
            if _sp:
                _sp.set(user=user, topic=topic, depth=exploration_depth,
                        engine=self.query_engine)
            with _obs.span("approx.explore") as _explore:
                dense = engine.explore(user, topic, exploration_depth,
                                       absorbing=self._landmark_set)
                if _explore:
                    _explore.set(
                        depth=exploration_depth,
                        frontier_size=int(
                            np.count_nonzero(dense.topo_alphabeta)))
            if _explore:
                _obs.observe("approx.explore_seconds", _explore.elapsed)

            with _obs.span("approx.compose") as _compose:
                stacked = self._stacked_for(view, topic)
                combined_dense, extra_scores, encountered = compose_stacked(
                    stacked, dense.scores, dense.topo_alphabeta, user,
                    skip_user_landmark=exploration_depth > 0)
                if _compose:
                    _compose.set(
                        landmarks_hit=len(encountered),
                        candidates=(int(np.count_nonzero(combined_dense))
                                    + len(extra_scores)))
            if _compose:
                _obs.observe("approx.compose_seconds", _compose.elapsed)
            _obs.count("approx.queries_total")
            _obs.count("approx.landmarks_encountered_total",
                       len(encountered))
            if _sp:
                _sp.set(landmarks_hit=len(encountered))
        if _sp:
            _obs.observe("approx.query_seconds", _sp.elapsed)
        return dense, combined_dense, extra_scores, encountered

    def _rank_dense(
        self, view: GraphSnapshot, engine: QueryEngine,
        combined_dense: np.ndarray, extra_scores: Dict[int, float],
        user: int, top_n: Optional[int], exclude_followed: bool,
    ) -> List[Tuple[int, float]]:
        """Array-side ranking, identical to :meth:`ApproximateResult.ranked`.

        ``np.lexsort`` with keys ``(node, -score)`` sorts by descending
        score with ties broken by ascending node id — the reference
        sort key ``(-score, node)`` exactly (float negation is exact).
        """
        mask = combined_dense > 0.0
        position = view.position
        pos = position.get(user)
        if pos is not None:
            mask[pos] = False
        if exclude_followed:
            for neighbor in view.out_neighbors(user):
                npos = position.get(neighbor)
                if npos is not None:
                    mask[npos] = False
        candidate_positions = np.nonzero(mask)[0]
        nodes = engine.node_ids_array[candidate_positions]
        scores = combined_dense[candidate_positions]
        if extra_scores:
            # Off-snapshot nodes can never be the user or a followee
            # (both live in the snapshot), so only the >0 filter —
            # already guaranteed by the compose side-channel — applies.
            nodes = np.concatenate(
                (nodes, np.fromiter(extra_scores.keys(), dtype=np.int64,
                                    count=len(extra_scores))))
            scores = np.concatenate(
                (scores, np.fromiter(extra_scores.values(), dtype=np.float64,
                                     count=len(extra_scores))))
        order = np.lexsort((nodes, -scores))
        if top_n is not None:
            order = order[:top_n]
        return [(int(nodes[i]), float(scores[i])) for i in order]

    def recommend(self, user: int, topic: str, top_n: int = 10, *,
                  allow_stale: Optional[bool] = None,
                  depth: Optional[int] = None,
                  exclude_followed: bool = True) -> RecommendationResponse:
        """Top-n approximate recommendations for *user* on *topic*.

        Implements the :class:`repro.api.Recommender` protocol.
        ``allow_stale=None`` defers to the constructor flag, matching
        :meth:`query`.
        """
        effective_stale = (self.allow_stale if allow_stale is None
                           else bool(allow_stale))
        with _obs.span("approx.recommend") as _sp:
            if _sp:
                _sp.set(user=user, topic=topic, top_n=top_n)
            if self.query_engine == "sparse":
                # Dense fast path: explore + compose + rank stay in
                # arrays end to end; no per-node dict is built.
                exploration_depth = (
                    depth if depth is not None
                    else self.landmark_params.query_depth)
                view = self._resolve(allow_stale=effective_stale)
                _, combined_dense, extra_scores, _ = self._query_core(
                    view, user, topic, exploration_depth)
                with _obs.span("approx.rank") as _rank:
                    ranked = self._rank_dense(
                        view, self._engine_for(view), combined_dense,
                        extra_scores, user, top_n, exclude_followed)
                    if _rank:
                        _rank.set(
                            candidates=(int(np.count_nonzero(combined_dense))
                                        + len(extra_scores)),
                            returned=len(ranked))
            else:
                result = self.query(user, topic, depth=depth,
                                    allow_stale=effective_stale)
                with _obs.span("approx.rank") as _rank:
                    excluded = {user}
                    if exclude_followed:
                        excluded.update(self._view.out_neighbors(user))
                    ranked = result.ranked(top_n=top_n, exclude=excluded)
                    if _rank:
                        _rank.set(candidates=len(result.scores),
                                  returned=len(ranked))
        request = RecommendationRequest(
            user=user, topic=topic, top_n=top_n,
            allow_stale=effective_stale, depth=depth)
        return response_from_pairs(
            request, ranked, engine="approximate",
            snapshot_epoch=self._view.epoch)

