"""File-backed landmark inverted-list store.

Binary layout (little-endian):

- header: magic ``RPLM``, format version, ``β``/``α`` as doubles,
  ``top_n`` and landmark count as varints;
- one record per landmark: varint record length, CRC32 of the payload,
  then the payload — landmark id, topic count, and per topic the topic
  string plus the entries (node id varints, score/topo/topo_ab
  doubles), in stored rank order.

The per-record CRC turns silent corruption into
:class:`~repro.errors.CorruptRecordError` at load time instead of
garbage recommendations at query time.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path
from typing import Union

from ..config import LandmarkParams, ScoreParams
from ..errors import CorruptRecordError, StorageError
from ..utils.varint import decode_uvarint, encode_uvarint
from .index import LandmarkEntry, LandmarkIndex

PathLike = Union[str, Path]

_MAGIC = b"RPLM"
_VERSION = 2
_DOUBLE = struct.Struct("<d")
_CRC = struct.Struct("<I")


def _encode_landmark(index: LandmarkIndex, landmark: int) -> bytes:
    payload = bytearray()
    payload += encode_uvarint(landmark)
    topics = index.topics_of(landmark)
    payload += encode_uvarint(len(topics))
    for topic in topics:
        encoded_topic = topic.encode("utf-8")
        payload += encode_uvarint(len(encoded_topic))
        payload += encoded_topic
        entries = index.recommendations(landmark, topic)
        payload += encode_uvarint(len(entries))
        for entry in entries:
            payload += encode_uvarint(entry.node)
            payload += _DOUBLE.pack(entry.score)
            payload += _DOUBLE.pack(entry.topo)
            payload += _DOUBLE.pack(entry.topo_ab)
    return bytes(payload)


def save_index(index: LandmarkIndex, path: PathLike) -> int:
    """Write *index* to *path*; returns the number of bytes written."""
    target = Path(path)
    blob = bytearray()
    blob += _MAGIC
    blob += bytes([_VERSION])
    blob += _DOUBLE.pack(index.params.beta)
    blob += _DOUBLE.pack(index.params.alpha)
    blob += encode_uvarint(index.landmark_params.top_n)
    blob += encode_uvarint(len(index.landmarks))
    for landmark in index.landmarks:
        payload = _encode_landmark(index, landmark)
        blob += encode_uvarint(len(payload))
        blob += _CRC.pack(zlib.crc32(payload))
        blob += payload
    target.write_bytes(bytes(blob))
    return len(blob)


def load_index(path: PathLike,
               params: ScoreParams | None = None) -> LandmarkIndex:
    """Load an index written by :func:`save_index`.

    Args:
        path: Source file.
        params: Override for non-persisted :class:`ScoreParams` fields
            (tolerance, max_iter); ``β``/``α`` always come from the
            file.

    Raises:
        StorageError: on a wrong magic/version.
        CorruptRecordError: on a CRC mismatch or truncated record.
    """
    source = Path(path)
    blob = source.read_bytes()
    if blob[:4] != _MAGIC:
        raise StorageError(f"{source} is not a landmark index (bad magic)")
    if blob[4] != _VERSION:
        raise StorageError(
            f"{source}: unsupported index version {blob[4]}")
    offset = 5
    beta = _DOUBLE.unpack_from(blob, offset)[0]
    offset += _DOUBLE.size
    alpha = _DOUBLE.unpack_from(blob, offset)[0]
    offset += _DOUBLE.size
    top_n, offset = decode_uvarint(blob, offset)
    landmark_count, offset = decode_uvarint(blob, offset)

    base = params if params is not None else ScoreParams()
    score_params = base.with_(beta=beta, alpha=alpha)
    index = LandmarkIndex(
        score_params,
        LandmarkParams(num_landmarks=max(1, landmark_count), top_n=top_n))

    for _ in range(landmark_count):
        length, offset = decode_uvarint(blob, offset)
        expected_crc = _CRC.unpack_from(blob, offset)[0]
        offset += _CRC.size
        payload = blob[offset:offset + length]
        if len(payload) != length:
            raise CorruptRecordError(f"{source}: truncated landmark record")
        if zlib.crc32(payload) != expected_crc:
            raise CorruptRecordError(f"{source}: CRC mismatch in record")
        offset += length
        _decode_landmark(index, payload)
    return index


def _decode_landmark(index: LandmarkIndex, payload: bytes) -> None:
    cursor = 0
    landmark, cursor = decode_uvarint(payload, cursor)
    topic_count, cursor = decode_uvarint(payload, cursor)
    for _ in range(topic_count):
        name_length, cursor = decode_uvarint(payload, cursor)
        topic = payload[cursor:cursor + name_length].decode("utf-8")
        cursor += name_length
        entry_count, cursor = decode_uvarint(payload, cursor)
        entries = []
        for _ in range(entry_count):
            node, cursor = decode_uvarint(payload, cursor)
            score = _DOUBLE.unpack_from(payload, cursor)[0]
            cursor += _DOUBLE.size
            topo = _DOUBLE.unpack_from(payload, cursor)[0]
            cursor += _DOUBLE.size
            topo_ab = _DOUBLE.unpack_from(payload, cursor)[0]
            cursor += _DOUBLE.size
            entries.append(LandmarkEntry(node=node, score=score, topo=topo,
                                         topo_ab=topo_ab))
        index.set_recommendations(landmark, topic, entries)
