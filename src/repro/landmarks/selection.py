"""The eleven landmark-selection strategies of Table 4.

Each strategy is a function ``(graph, count, rng, **options) -> list``
registered in :data:`STRATEGIES` under the exact name the paper's
tables use. All are deterministic for a fixed seed.

The coverage-based strategies (``Central``, ``Out-Cen``, ``Combine``)
follow Potamias et al.'s seed-coverage idea the paper cites: sample
seed nodes, explore to a fixed depth, and prefer nodes that many seeds
can reach (Central) or that reach many seeds (Out-Cen).
"""

from __future__ import annotations

import math
import random
from typing import Any, Callable, Dict, List, Sequence

from ..errors import ConfigurationError
from ..graph.labeled_graph import LabeledSocialGraph
from ..graph.traversal import bfs_levels
from ..utils.rng import SeedLike, rng_from_seed

SelectionFn = Callable[..., List[int]]


def _check_count(graph: LabeledSocialGraph, count: int) -> None:
    if count < 1:
        raise ConfigurationError(f"landmark count must be >= 1, got {count}")
    if count > graph.num_nodes:
        raise ConfigurationError(
            f"cannot select {count} landmarks from {graph.num_nodes} nodes")


def _weighted_sample(rng: random.Random,
                     weighted: Sequence[tuple[int, float]],
                     count: int) -> List[int]:
    """Efraimidis–Spirakis weighted sampling without replacement.

    Items with zero weight are only used to pad when fewer than *count*
    positive-weight items exist.
    """
    keyed = []
    zero_weight = []
    for node, weight in weighted:
        if weight > 0.0:
            keyed.append((rng.random() ** (1.0 / weight), node))
        else:
            zero_weight.append(node)
    keyed.sort(reverse=True)
    chosen = [node for _, node in keyed[:count]]
    if len(chosen) < count:
        rng.shuffle(zero_weight)
        chosen.extend(zero_weight[: count - len(chosen)])
    return chosen


# ----------------------------------------------------------------------
# Simple random / degree strategies
# ----------------------------------------------------------------------

def select_random(graph: LabeledSocialGraph, count: int,
                  rng: SeedLike = None) -> List[int]:
    """``Random``: uniform draw without replacement."""
    _check_count(graph, count)
    return rng_from_seed(rng).sample(sorted(graph.nodes()), count)


def select_follow(graph: LabeledSocialGraph, count: int,  # repro: ignore[W4] -- dispatched by paper-strategy name through the STRATEGIES registry below
                  rng: SeedLike = None) -> List[int]:
    """``Follow``: draw with probability proportional to #followers."""
    _check_count(graph, count)
    weighted = [(node, float(graph.in_degree(node)))
                for node in sorted(graph.nodes())]
    return _weighted_sample(rng_from_seed(rng), weighted, count)


def select_publish(graph: LabeledSocialGraph, count: int,  # repro: ignore[W4] -- dispatched by paper-strategy name through the STRATEGIES registry below
                   rng: SeedLike = None) -> List[int]:
    """``Publish``: draw with probability proportional to #accounts followed."""
    _check_count(graph, count)
    weighted = [(node, float(graph.out_degree(node)))
                for node in sorted(graph.nodes())]
    return _weighted_sample(rng_from_seed(rng), weighted, count)


def select_in_degree(graph: LabeledSocialGraph, count: int,
                     rng: SeedLike = None) -> List[int]:
    """``In-Deg``: the *count* most-followed accounts."""
    _check_count(graph, count)
    ranked = sorted(graph.nodes(), key=lambda n: (-graph.in_degree(n), n))
    return ranked[:count]


def select_out_degree(graph: LabeledSocialGraph, count: int,
                      rng: SeedLike = None) -> List[int]:
    """``Out-Deg``: the *count* most-active readers."""
    _check_count(graph, count)
    ranked = sorted(graph.nodes(), key=lambda n: (-graph.out_degree(n), n))
    return ranked[:count]


def _percentile_band(values: List[int], low: float, high: float) -> tuple[int, int]:
    ordered = sorted(values)
    low_index = min(len(ordered) - 1, int(low * len(ordered)))
    high_index = min(len(ordered) - 1, int(high * len(ordered)))
    return ordered[low_index], ordered[high_index]


def select_between_followers(graph: LabeledSocialGraph, count: int,
                             rng: SeedLike = None,
                             low: float = 0.5, high: float = 0.95,
                             ) -> List[int]:
    """``Btw-Fol``: uniform among nodes with #followers in a band.

    The paper leaves ``[min_follow, max_follow]`` unspecified; we take a
    percentile band (default: the 50th–95th percentile of in-degree),
    i.e. moderately-popular accounts, excluding both celebrities and
    near-orphans.
    """
    _check_count(graph, count)
    degrees = [graph.in_degree(node) for node in graph.nodes()]
    minimum, maximum = _percentile_band(degrees, low, high)
    eligible = sorted(
        node for node in graph.nodes()
        if minimum <= graph.in_degree(node) <= maximum)
    generator = rng_from_seed(rng)
    if len(eligible) <= count:
        filler = [node for node in sorted(graph.nodes()) if node not in set(eligible)]
        generator.shuffle(filler)
        return eligible + filler[: count - len(eligible)]
    return generator.sample(eligible, count)


def select_between_publishers(graph: LabeledSocialGraph, count: int,  # repro: ignore[W4] -- dispatched by paper-strategy name through the STRATEGIES registry below
                              rng: SeedLike = None,
                              low: float = 0.5, high: float = 0.95,
                              ) -> List[int]:
    """``Btw-Pub``: uniform among nodes with out-degree in a band."""
    _check_count(graph, count)
    degrees = [graph.out_degree(node) for node in graph.nodes()]
    minimum, maximum = _percentile_band(degrees, low, high)
    eligible = sorted(
        node for node in graph.nodes()
        if minimum <= graph.out_degree(node) <= maximum)
    generator = rng_from_seed(rng)
    if len(eligible) <= count:
        filler = [node for node in sorted(graph.nodes()) if node not in set(eligible)]
        generator.shuffle(filler)
        return eligible + filler[: count - len(eligible)]
    return generator.sample(eligible, count)


# ----------------------------------------------------------------------
# Coverage (centrality-flavoured) strategies
# ----------------------------------------------------------------------

def _coverage_scores(graph: LabeledSocialGraph, seeds: List[int],
                     depth: int, direction: str) -> Dict[int, int]:
    """How many seeds can reach each node within *depth* hops.

    ``direction="out"`` explores along follow edges from each seed, so
    a node's score counts seeds it is *reachable from* (Central).
    ``direction="in"`` explores reverse edges, so the score counts
    seeds the node *can reach* (Out-Cen).
    """
    scores: Dict[int, int] = {}
    for seed in seeds:
        for node, hop in bfs_levels(graph, seed, max_depth=depth,  # repro: ignore[R2] -- coverage counts are integers; addition is exact in any order
                                    direction=direction).items():
            if hop > 0:
                scores[node] = scores.get(node, 0) + 1
    return scores


def select_central(graph: LabeledSocialGraph, count: int,
                   rng: SeedLike = None, num_seeds: int = 50,
                   depth: int = 2) -> List[int]:
    """``Central``: nodes reachable at distance ≤ *depth* from most seeds."""
    _check_count(graph, count)
    generator = rng_from_seed(rng)
    nodes = sorted(graph.nodes())
    seeds = generator.sample(nodes, min(num_seeds, len(nodes)))
    coverage = _coverage_scores(graph, seeds, depth, direction="out")
    ranked = sorted(nodes, key=lambda n: (-coverage.get(n, 0), n))
    return ranked[:count]


def select_out_central(graph: LabeledSocialGraph, count: int,  # repro: ignore[W4] -- dispatched by paper-strategy name through the STRATEGIES registry below
                       rng: SeedLike = None, num_seeds: int = 50,
                       depth: int = 2) -> List[int]:
    """``Out-Cen``: nodes that can reach the most distinct seeds."""
    _check_count(graph, count)
    generator = rng_from_seed(rng)
    nodes = sorted(graph.nodes())
    seeds = generator.sample(nodes, min(num_seeds, len(nodes)))
    coverage = _coverage_scores(graph, seeds, depth, direction="in")
    ranked = sorted(nodes, key=lambda n: (-coverage.get(n, 0), n))
    return ranked[:count]


def select_combine(graph: LabeledSocialGraph, count: int,
                   rng: SeedLike = None, num_seeds: int = 50,
                   depth: int = 2, weight: float = 0.5) -> List[int]:
    """``Combine``: weighted combination of Central and Out-Cen coverage."""
    _check_count(graph, count)
    if not 0.0 <= weight <= 1.0:
        raise ConfigurationError(f"weight must be in [0, 1], got {weight}")
    generator = rng_from_seed(rng)
    nodes = sorted(graph.nodes())
    seeds = generator.sample(nodes, min(num_seeds, len(nodes)))
    inbound = _coverage_scores(graph, seeds, depth, direction="out")
    outbound = _coverage_scores(graph, seeds, depth, direction="in")
    in_max = max(inbound.values(), default=1) or 1
    out_max = max(outbound.values(), default=1) or 1

    def combined(node: int) -> float:
        return (weight * inbound.get(node, 0) / in_max
                + (1.0 - weight) * outbound.get(node, 0) / out_max)

    ranked = sorted(nodes, key=lambda n: (-combined(n), n))
    return ranked[:count]


def select_combine2(graph: LabeledSocialGraph, count: int,  # repro: ignore[W4] -- dispatched by paper-strategy name through the STRATEGIES registry below
                    rng: SeedLike = None, weight: float = 0.5,
                    low: float = 0.5, high: float = 0.95) -> List[int]:
    """``Combine2``: mixture of Btw-Fol and Btw-Pub draws."""
    _check_count(graph, count)
    if not 0.0 <= weight <= 1.0:
        raise ConfigurationError(f"weight must be in [0, 1], got {weight}")
    generator = rng_from_seed(rng)
    follower_quota = int(math.floor(weight * count))
    from_followers = select_between_followers(
        graph, max(1, follower_quota) if follower_quota else 1,
        rng=generator, low=low, high=high) if follower_quota else []
    chosen = list(dict.fromkeys(from_followers))[:follower_quota]
    remaining = count - len(chosen)
    taken = set(chosen)
    publishers = select_between_publishers(
        graph, min(graph.num_nodes, count * 2), rng=generator,
        low=low, high=high)
    for node in publishers:
        if remaining == 0:
            break
        if node not in taken:
            chosen.append(node)
            taken.add(node)
            remaining -= 1
    if remaining:
        filler = [n for n in sorted(graph.nodes()) if n not in taken]
        generator.shuffle(filler)
        chosen.extend(filler[:remaining])
    return chosen


#: Strategy registry keyed by the paper's Table 4/5/6 names.
STRATEGIES: Dict[str, SelectionFn] = {
    "Random": select_random,
    "Follow": select_follow,
    "Publish": select_publish,
    "In-Deg": select_in_degree,
    "Btw-Fol": select_between_followers,
    "Out-Deg": select_out_degree,
    "Btw-Pub": select_between_publishers,
    "Central": select_central,
    "Out-Cen": select_out_central,
    "Combine": select_combine,
    "Combine2": select_combine2,
}


def select_landmarks(graph: LabeledSocialGraph, strategy: str, count: int,
                     rng: SeedLike = None, **options: Any) -> List[int]:
    """Select *count* landmarks with the named Table-4 strategy.

    Raises:
        ConfigurationError: on an unknown strategy name.
    """
    try:
        function = STRATEGIES[strategy]
    except KeyError:
        known = ", ".join(sorted(STRATEGIES))
        raise ConfigurationError(
            f"unknown landmark strategy {strategy!r}; known: {known}") from None
    return function(graph, count, rng=rng, **options)
