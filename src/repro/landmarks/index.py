"""Per-landmark precomputation — Algorithm 1 / Section 4.1.

For each landmark λ the index stores, per topic, the top-n reachable
accounts ``v`` with both halves of Proposition 4's composition:
``σ(λ, v, t)`` and ``topo_β(λ, v)``. The lists are the "inverted lists"
of Section 5.2; their in-memory layout (and the file layout in
:mod:`repro.landmarks.storage`) follows that description.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..config import LandmarkParams, ScoreParams
from ..core.exact import _MaxSimCache, single_source_scores
from ..core.scores import AuthorityIndex
from ..graph.labeled_graph import LabeledSocialGraph
from ..semantics.matrix import SimilarityMatrix
from ..utils.timers import Stopwatch


@dataclass(frozen=True)
class LandmarkEntry:
    """One stored recommendation of a landmark.

    Attributes:
        node: The recommended account ``v``.
        score: ``σ(λ, v, t)`` — the landmark's Tr score for ``v``.
        topo: ``topo_β(λ, v)`` — the landmark's Katz score for ``v``.
        topo_ab: ``topo_{αβ}(λ, v)`` — the combined-decay topological
            score, needed by the incremental (first-order delta) update
            strategy of :mod:`repro.dynamics.incremental`.
    """

    node: int
    score: float
    topo: float
    topo_ab: float = 0.0


class LandmarkIndex:
    """Inverted-list store of per-landmark recommendations.

    Build with :meth:`build`; query with :meth:`recommendations`.
    """

    def __init__(self, params: ScoreParams,
                 landmark_params: LandmarkParams) -> None:
        self.params = params
        self.landmark_params = landmark_params
        # λ -> topic -> entries sorted by descending score
        self._lists: Dict[int, Dict[str, List[LandmarkEntry]]] = {}
        #: Per-landmark wall-clock spent in Algorithm 1, for Table 5.
        self.build_seconds: Dict[int, float] = {}

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: LabeledSocialGraph,
        landmarks: Sequence[int],
        topics: Sequence[str],
        similarity: SimilarityMatrix,
        params: ScoreParams = ScoreParams(),
        landmark_params: LandmarkParams = LandmarkParams(),
        authority: Optional[AuthorityIndex] = None,
    ) -> "LandmarkIndex":
        """Run Algorithm 1 to convergence for every landmark.

        Args:
            graph: The labeled follow graph.
            landmarks: Landmark node ids (from a Table-4 strategy).
            topics: The full topic vocabulary T — preprocessing stores
                recommendations for *every* topic.
            similarity: Topic-similarity matrix.
            params: Score decay/convergence parameters.
            landmark_params: Supplies ``top_n`` and the precompute
                depth cap.
            authority: Shared authority cache (created if omitted).
        """
        index = cls(params, landmark_params)
        shared_authority = authority or AuthorityIndex(graph)
        sim_cache = _MaxSimCache(similarity)
        precompute_params = params.with_(
            max_iter=max(params.max_iter, landmark_params.precompute_depth))
        for landmark in landmarks:
            watch = Stopwatch()
            with watch:
                state = single_source_scores(
                    graph, landmark, list(topics), similarity,
                    authority=shared_authority, params=precompute_params,
                    sim_cache=sim_cache)
                per_topic: Dict[str, List[LandmarkEntry]] = {}
                for topic in topics:
                    ranked = state.ranked(
                        topic, top_n=landmark_params.top_n,
                        exclude=(landmark,))
                    per_topic[topic] = [
                        LandmarkEntry(
                            node=node,
                            score=score,
                            topo=state.topo_beta.get(node, 0.0),
                            topo_ab=state.topo_alphabeta.get(node, 0.0),
                        )
                        for node, score in ranked
                    ]
            index._lists[landmark] = per_topic
            index.build_seconds[landmark] = watch.elapsed
        return index

    # ------------------------------------------------------------------
    @property
    def landmarks(self) -> Tuple[int, ...]:
        """Landmark ids in build order."""
        return tuple(self._lists)

    def __contains__(self, node: int) -> bool:
        return node in self._lists

    def __len__(self) -> int:
        return len(self._lists)

    def topics_of(self, landmark: int) -> Tuple[str, ...]:
        """Topics a landmark stores lists for."""
        return tuple(self._lists[landmark])

    def recommendations(self, landmark: int,
                        topic: str) -> List[LandmarkEntry]:
        """Stored top-n entries of *landmark* for *topic* ([] if none)."""
        return self._lists.get(landmark, {}).get(topic, [])

    def set_recommendations(self, landmark: int, topic: str,
                            entries: Iterable[LandmarkEntry]) -> None:
        """Install entries directly (used by the storage loader)."""
        self._lists.setdefault(landmark, {})[topic] = list(entries)

    @property
    def storage_bytes(self) -> int:
        """Approximate in-memory footprint of the inverted lists.

        Counts 8 bytes per stored number (node, score, topo, topo_ab) —
        the figure comparable with the paper's "1.4MB per landmark at
        top-1000 for all topics".
        """
        total = 0
        for per_topic in self._lists.values():
            for entries in per_topic.values():
                total += 32 * len(entries)
        return total

    def stats(self) -> Dict[str, float]:
        """Summary for benchmark reports."""
        entry_counts = [
            len(entries)
            for per_topic in self._lists.values()
            for entries in per_topic.values()
        ]
        mean_build = (sum(self.build_seconds.values()) / len(self.build_seconds)
                      if self.build_seconds else 0.0)
        return {
            "landmarks": float(len(self._lists)),
            "mean_entries_per_list": (
                sum(entry_counts) / len(entry_counts) if entry_counts else 0.0),
            "storage_bytes": float(self.storage_bytes),
            "mean_build_seconds": mean_build,
        }

    def __repr__(self) -> str:
        return (f"LandmarkIndex(landmarks={len(self._lists)}, "
                f"top_n={self.landmark_params.top_n})")

    def __sizeof__(self) -> int:
        return sys.getsizeof(self._lists)
