"""Per-landmark precomputation — Algorithm 1 / Section 4.1.

For each landmark λ the index stores, per topic, the top-n reachable
accounts ``v`` with both halves of Proposition 4's composition:
``σ(λ, v, t)`` and ``topo_β(λ, v)``. The lists are the "inverted lists"
of Section 5.2; their in-memory layout (and the file layout in
:mod:`repro.landmarks.storage`) follows that description.

Preprocessing runs on one of two interchangeable engines (selected via
``engine=`` on :meth:`LandmarkIndex.build`): the dict-based reference
engine, optionally fanned out over a thread pool, or the batched CSR
engine of :mod:`repro.core.fast`, which propagates whole blocks of
landmarks as sparse mat–mat products. Both honour the same stopping
rule and the ``precompute_depth`` cap, so the stored lists are
identical up to floating-point accumulation order.
"""

from __future__ import annotations

import math
import sys
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..config import EngineParams, LandmarkParams, ScoreParams
from ..core.exact import ScoreState, _MaxSimCache, single_source_scores
from ..core.fast import SparseEngine, resolve_engine
from ..core.scores import AuthorityIndex
from ..graph.snapshot import GraphLike, GraphSnapshot, as_snapshot
from ..obs import runtime as _obs
from ..semantics.matrix import SimilarityMatrix


@dataclass(frozen=True)
class LandmarkEntry:
    """One stored recommendation of a landmark.

    Attributes:
        node: The recommended account ``v``.
        score: ``σ(λ, v, t)`` — the landmark's Tr score for ``v``.
        topo: ``topo_β(λ, v)`` — the landmark's Katz score for ``v``.
        topo_ab: ``topo_{αβ}(λ, v)`` — the combined-decay topological
            score, needed by the incremental (first-order delta) update
            strategy of :mod:`repro.dynamics.incremental`.
    """

    node: int
    score: float
    topo: float
    topo_ab: float = 0.0


class LandmarkIndex:
    """Inverted-list store of per-landmark recommendations.

    Build with :meth:`build`; query with :meth:`recommendations`.
    """

    def __init__(self, params: ScoreParams,
                 landmark_params: LandmarkParams) -> None:
        self.params = params
        self.landmark_params = landmark_params
        # λ -> topic -> entries sorted by descending score
        self._lists: Dict[int, Dict[str, List[LandmarkEntry]]] = {}
        # (λ, topic) -> replacement count; bumped by every
        # set_recommendations so vectorised views of a list (the
        # query-path LandmarkVectorCache) can detect in-place refreshes
        # that happen without an epoch change.
        self._versions: Dict[Tuple[int, str], int] = {}
        # Total set_recommendations calls across all lists — an O(1)
        # freshness check for whole-index derived structures (the
        # query path's stacked composition arrays).
        self._mutations = 0
        #: Per-landmark wall-clock spent in Algorithm 1, for Table 5.
        #: Batched engines attribute each batch's elapsed time evenly
        #: across its landmarks.
        self.build_seconds: Dict[int, float] = {}
        #: Concrete engine that ran Algorithm 1 ("dict" or "sparse");
        #: ``None`` for indexes assembled via :meth:`set_recommendations`.
        self.engine_used: Optional[str] = None

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: GraphLike,
        landmarks: Sequence[int],
        topics: Sequence[str],
        similarity: SimilarityMatrix,
        params: ScoreParams = ScoreParams(),
        landmark_params: LandmarkParams = LandmarkParams(),
        authority: Optional[AuthorityIndex] = None,
        engine: Union[str, EngineParams] = "auto",
        workers: Optional[int] = None,
        batch_size: Optional[int] = None,
    ) -> "LandmarkIndex":
        """Run Algorithm 1 for every landmark.

        Each landmark is propagated until its frontier mass converges
        below ``params.tolerance`` or, if
        ``landmark_params.precompute_depth`` is set, until that many
        rounds have run — whichever comes first. The cap makes
        preprocessing total on any graph: a deep or cyclic graph
        truncates at the cap instead of raising
        :class:`~repro.errors.ConvergenceError`.

        Args:
            graph: The labeled follow graph, or a prebuilt
                :class:`~repro.graph.snapshot.GraphSnapshot` — the
                whole build reads one frozen snapshot either way.
            landmarks: Landmark node ids (from a Table-4 strategy).
            topics: The full topic vocabulary T — preprocessing stores
                recommendations for *every* topic.
            similarity: Topic-similarity matrix.
            params: Score decay/convergence parameters.
            landmark_params: Supplies ``top_n`` and the precompute
                depth cap.
            authority: Shared authority cache (created if omitted).
            engine: ``"auto"`` / ``"dict"`` / ``"sparse"``, or a full
                :class:`~repro.config.EngineParams`. ``"auto"`` uses
                the batched CSR engine when scipy is available and the
                dict engine otherwise.
            workers: Thread-pool width for the dict engine (overrides
                ``engine.workers`` when given).
            batch_size: Sources per mat–mat block for the sparse
                engine (overrides ``engine.batch_size`` when given).
        """
        if isinstance(engine, EngineParams):
            engine_params = engine
        else:
            engine_params = EngineParams(engine=engine)
        if workers is not None or batch_size is not None:
            engine_params = EngineParams(
                engine=engine_params.engine,
                workers=workers if workers is not None
                else engine_params.workers,
                batch_size=batch_size if batch_size is not None
                else engine_params.batch_size)
        resolved = resolve_engine(engine_params.engine)

        index = cls(params, landmark_params)
        index.engine_used = resolved
        snapshot = as_snapshot(graph)
        shared_authority = (authority if authority is not None
                            else snapshot.authority())
        max_depth = landmark_params.precompute_depth
        topic_list = list(topics)

        with _obs.span("landmarks.build") as _sp:
            if _sp:
                _sp.set(landmarks=len(landmarks), topics=len(topic_list),
                        engine=resolved, top_n=landmark_params.top_n)
            if resolved == "sparse":
                cls._build_sparse(index, snapshot, list(landmarks),
                                  topic_list, similarity, shared_authority,
                                  engine_params.batch_size, max_depth)
            else:
                cls._build_dict(index, snapshot, list(landmarks), topic_list,
                                similarity, shared_authority,
                                engine_params.workers, max_depth)
            _obs.count("landmarks.builds_total")
            _obs.count("landmarks.built_total", len(landmarks))
        return index

    @staticmethod
    def _entries_for(state: ScoreState, landmark: int, topics: Sequence[str],
                     top_n: int) -> Dict[str, List[LandmarkEntry]]:
        """Turn one propagation state into per-topic inverted lists."""
        per_topic: Dict[str, List[LandmarkEntry]] = {}
        for topic in topics:
            ranked = state.ranked(topic, top_n=top_n, exclude=(landmark,))
            per_topic[topic] = [
                LandmarkEntry(
                    node=node,
                    score=score,
                    topo=state.topo_beta.get(node, 0.0),
                    topo_ab=state.topo_alphabeta.get(node, 0.0),
                )
                for node, score in ranked
            ]
        return per_topic

    @classmethod
    def _build_dict(cls, index: "LandmarkIndex", snapshot: GraphSnapshot,
                    landmarks: List[int], topics: List[str],
                    similarity: SimilarityMatrix,
                    authority: AuthorityIndex, workers: int,
                    max_depth: Optional[int]) -> None:
        """Reference-engine build, optionally fanned out over threads."""
        sim_cache = _MaxSimCache(similarity)
        top_n = index.landmark_params.top_n

        def run_one(landmark: int) -> Tuple[Dict[str, List[LandmarkEntry]],
                                            float]:
            watch = _obs.timed_span("landmarks.build_one")
            with watch:
                if watch:
                    watch.set(landmark=landmark)
                state = single_source_scores(
                    snapshot, landmark, topics, similarity,
                    authority=authority, params=index.params,
                    max_depth=max_depth, sim_cache=sim_cache)
                per_topic = cls._entries_for(state, landmark, topics, top_n)
            return per_topic, watch.elapsed

        if workers > 1 and len(landmarks) > 1:
            # Warm the shared caches serially once so the concurrent
            # propagations only read them.
            authority.warm(topics)
            with ThreadPoolExecutor(max_workers=workers) as pool:
                results = list(pool.map(run_one, landmarks))
        else:
            results = [run_one(landmark) for landmark in landmarks]
        for landmark, (per_topic, elapsed) in zip(landmarks, results):
            index._lists[landmark] = per_topic
            index.build_seconds[landmark] = elapsed

    @classmethod
    def _build_sparse(cls, index: "LandmarkIndex", snapshot: GraphSnapshot,
                      landmarks: List[int], topics: List[str],
                      similarity: SimilarityMatrix,
                      authority: AuthorityIndex, batch_size: int,
                      max_depth: Optional[int]) -> None:
        """Batched CSR build: one mat–mat propagation per block."""
        engine = SparseEngine(snapshot, similarity, index.params,
                              authority=authority)
        top_n = index.landmark_params.top_n
        for start in range(0, len(landmarks), batch_size):
            block = landmarks[start:start + batch_size]
            watch = _obs.timed_span("landmarks.build_batch")
            with watch:
                if watch:
                    watch.set(batch=len(block))
                states = engine.multi_source(block, topics,
                                             max_depth=max_depth)
                for landmark, state in zip(block, states):
                    index._lists[landmark] = cls._entries_for(
                        state, landmark, topics, top_n)
            share = watch.elapsed / len(block)
            for landmark in block:
                index.build_seconds[landmark] = share

    # ------------------------------------------------------------------
    @property
    def landmarks(self) -> Tuple[int, ...]:
        """Landmark ids in build order."""
        return tuple(self._lists)

    def __contains__(self, node: int) -> bool:
        return node in self._lists

    def __len__(self) -> int:
        return len(self._lists)

    def topics_of(self, landmark: int) -> Tuple[str, ...]:
        """Topics a landmark stores lists for."""
        return tuple(self._lists[landmark])

    def recommendations(self, landmark: int,
                        topic: str) -> List[LandmarkEntry]:
        """Stored top-n entries of *landmark* for *topic* ([] if none)."""
        return self._lists.get(landmark, {}).get(topic, [])

    def set_recommendations(self, landmark: int, topic: str,
                            entries: Iterable[LandmarkEntry]) -> None:
        """Install entries directly (storage loader, maintainers).

        Every call bumps the list's version (:meth:`version_of`), which
        invalidates any cached vectorised view of the previous list.
        """
        self._lists.setdefault(landmark, {})[topic] = list(entries)
        key = (landmark, topic)
        self._versions[key] = self._versions.get(key, 0) + 1
        self._mutations += 1

    def version_of(self, landmark: int, topic: str) -> int:
        """Replacement count of one list (0 until first refreshed).

        Engine builds write lists in place without touching versions;
        only :meth:`set_recommendations` bumps them. The pair
        ``(snapshot.epoch, version_of(λ, t))`` therefore uniquely
        identifies a list's content for caching purposes.
        """
        return self._versions.get((landmark, topic), 0)

    @property
    def mutation_count(self) -> int:
        """Total :meth:`set_recommendations` calls, across all lists.

        A single integer that changes whenever *any* list changes —
        derived whole-index structures compare it (together with the
        snapshot epoch) instead of re-checking every per-list version.
        """
        return self._mutations

    @property
    def storage_bytes(self) -> int:
        """Approximate in-memory footprint of the inverted lists.

        Counts 8 bytes per stored number (node, score, topo, topo_ab) —
        the figure comparable with the paper's "1.4MB per landmark at
        top-1000 for all topics".
        """
        total = 0
        for per_topic in self._lists.values():  # repro: ignore[R2] -- byte counts are integers; addition is exact in any order
            for entries in per_topic.values():  # repro: ignore[R2] -- byte counts are integers; addition is exact in any order
                total += 32 * len(entries)
        return total

    def stats(self) -> Dict[str, object]:
        """Summary for benchmark reports."""
        entry_counts = [
            len(entries)
            for per_topic in self._lists.values()
            for entries in per_topic.values()
        ]
        mean_build = (
            math.fsum(self.build_seconds.values()) / len(self.build_seconds)
            if self.build_seconds else 0.0)
        return {
            "landmarks": float(len(self._lists)),
            "mean_entries_per_list": (
                sum(entry_counts) / len(entry_counts) if entry_counts else 0.0),
            "storage_bytes": float(self.storage_bytes),
            "mean_build_seconds": mean_build,
            "engine": self.engine_used,
        }

    def __repr__(self) -> str:
        return (f"LandmarkIndex(landmarks={len(self._lists)}, "
                f"top_n={self.landmark_params.top_n})")

    def __sizeof__(self) -> int:
        return sys.getsizeof(self._lists)
