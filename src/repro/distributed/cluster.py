"""Pregel-style distributed Tr propagation with message accounting.

The frontier propagation of Proposition 1 maps directly onto the
superstep model: at step ``k`` every active node sends its length-k
walk mass along its out-edges. When the sender and the receiver live on
different partitions, that value transfer is a network message; values
to the *same* remote neighbour within one superstep are combined before
shipping (Pregel's combiner optimisation), and per-topic payloads ride
in the same message as the topological mass.

The engine produces scores *bit-identical* to
:func:`repro.core.exact.single_source_scores` — asserted by the test
suite — while counting the messages a real deployment would pay, which
is exactly the cost model the paper's future-work paragraph says a
distributed design must minimise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Protocol, Sequence, Tuple

from ..config import ScoreParams
from ..core.exact import ScoreState, _MaxSimCache
from ..core.scores import AuthorityIndex
from ..errors import ConfigurationError
from ..graph.labeled_graph import TopicSet
from ..semantics.matrix import SimilarityMatrix
from .partition import Assignment


class SupportsOutNeighbors(Protocol):  # repro: ignore[W4] -- typing protocol: names the graph capability distributed_single_source_scores requires, so sharded's replica-routing view type-checks as a valid host
    """The one graph capability the superstep engine actually reads.

    Satisfied by :class:`~repro.graph.labeled_graph.LabeledSocialGraph`
    and :class:`~repro.graph.snapshot.GraphSnapshot` directly, and by
    the sharded tier's replica-routing view — the engine never needs
    more than each walker's labelled out-row, so any facade that can
    produce rows (from local storage or from the owning replica) can
    host a propagation.
    """

    def out_neighbors(self, node: int) -> Mapping[int, TopicSet]:
        """Labelled out-edges of *node*."""
        ...  # pragma: no cover - protocol body


@dataclass
class MessageStats:
    """Network accounting of one distributed propagation.

    Attributes:
        supersteps: Propagation rounds executed.
        local_transfers: Value transfers between co-located nodes.
        remote_messages: Combined messages that crossed partitions
            (one per (superstep, receiving node) with a remote sender
            aggregate — the Pregel combiner model).
        remote_values: Raw values that crossed partitions before
            combining (what a combiner-less system would send).
        per_link: messages per directed partition pair.
    """

    supersteps: int = 0
    local_transfers: int = 0
    remote_messages: int = 0
    remote_values: int = 0
    per_link: Dict[Tuple[int, int], int] = field(default_factory=dict)

    @property
    def remote_fraction(self) -> float:
        """Share of value transfers that crossed partitions."""
        total = self.local_transfers + self.remote_values
        if total == 0:
            return 0.0
        return self.remote_values / total


def distributed_single_source_scores(
    graph: SupportsOutNeighbors,
    assignment: Assignment,
    source: int,
    topics: Sequence[str],
    similarity: SimilarityMatrix,
    authority: Optional[AuthorityIndex] = None,
    params: ScoreParams = ScoreParams(),
    max_depth: Optional[int] = None,
    absorbing: Optional[frozenset] = None,
) -> Tuple[ScoreState, MessageStats]:
    """Prop.-1 propagation with per-partition message accounting.

    Args:
        graph: The (logically partitioned) follow graph.
        assignment: node → partition id. Every node must be assigned.
        source: Query node.
        topics: Topics to score (empty = pure topology).
        similarity: Topic-similarity matrix.
        authority: Shared authority cache.
        params: Decay/convergence parameters.
        max_depth: Walk-length cap (``None`` = to convergence).
        absorbing: Nodes whose mass is not propagated further (the
            landmark pruning of Algorithm 2), as in the single-machine
            engine.

    Returns:
        ``(state, stats)`` where *state* matches the single-machine
        engine exactly and *stats* records the message traffic.

    Raises:
        ConfigurationError: if the source node is unassigned.
    """
    if source not in assignment:
        raise ConfigurationError(f"node {source} has no partition")
    if authority is None:
        authority = AuthorityIndex(graph)
    cache = _MaxSimCache(similarity)
    beta = params.beta
    alphabeta = params.edge_decay
    edge_factor = params.beta * params.alpha

    cumulative_scores = {topic: {} for topic in topics}
    cumulative_tb: Dict[int, float] = {source: 1.0}
    cumulative_tab: Dict[int, float] = {source: 1.0}
    frontier_r: Dict[str, Dict[int, float]] = {topic: {} for topic in topics}
    frontier_tb: Dict[int, float] = {source: 1.0}
    frontier_tab: Dict[int, float] = {source: 1.0}

    stats = MessageStats()
    limit = params.max_iter if max_depth is None else max_depth
    converged = False

    for _ in range(limit):
        next_r: Dict[str, Dict[int, float]] = {topic: {} for topic in topics}
        next_tb: Dict[int, float] = {}
        next_tab: Dict[int, float] = {}
        # (receiver, sender_partition) pairs that crossed partitions
        # this superstep — one combined message each.
        combined_remote: set = set()
        touched = set(frontier_tb)
        for topic in topics:
            touched.update(frontier_r[topic])
        if absorbing:
            touched = {
                walker for walker in touched
                if walker == source or walker not in absorbing
            }
        if not touched:
            converged = True
            break
        for walker in sorted(touched):
            walker_part = assignment[walker]
            tb_mass = frontier_tb.get(walker, 0.0)
            tab_mass = frontier_tab.get(walker, 0.0)
            r_masses = [frontier_r[topic].get(walker, 0.0)
                        for topic in topics]
            for neighbor, label in sorted(graph.out_neighbors(walker).items()):
                neighbor_part = assignment[neighbor]
                if neighbor_part == walker_part:
                    stats.local_transfers += 1
                else:
                    stats.remote_values += 1
                    combined_remote.add(
                        (neighbor, walker_part, neighbor_part))
                if tb_mass:
                    next_tb[neighbor] = (
                        next_tb.get(neighbor, 0.0) + beta * tb_mass)
                if tab_mass:
                    next_tab[neighbor] = (
                        next_tab.get(neighbor, 0.0) + alphabeta * tab_mass)
                for topic, r_mass in zip(topics, r_masses):
                    increment = beta * r_mass
                    if tab_mass and label:
                        best = cache.max_similarity(label, topic)
                        if best:
                            auth_value = authority.auth(neighbor, topic)
                            if auth_value:
                                increment += (tab_mass * edge_factor
                                              * best * auth_value)
                    if increment:
                        bucket = next_r[topic]
                        bucket[neighbor] = (
                            bucket.get(neighbor, 0.0) + increment)
        stats.supersteps += 1
        stats.remote_messages += len(combined_remote)
        for _, sender_part, receiver_part in sorted(combined_remote):
            link = (sender_part, receiver_part)
            stats.per_link[link] = stats.per_link.get(link, 0) + 1

        new_mass = math.fsum(
            math.fsum(bucket.values()) for bucket in next_r.values())
        new_mass += math.fsum(next_tb.values())
        for node, value in sorted(next_tb.items()):
            cumulative_tb[node] = cumulative_tb.get(node, 0.0) + value
        for node, value in sorted(next_tab.items()):
            cumulative_tab[node] = cumulative_tab.get(node, 0.0) + value
        for topic in topics:
            bucket = cumulative_scores[topic]
            for node, value in sorted(next_r[topic].items()):
                bucket[node] = bucket.get(node, 0.0) + value
        frontier_r, frontier_tb, frontier_tab = next_r, next_tb, next_tab
        if new_mass < params.tolerance:
            converged = True
            break

    state = ScoreState(
        source=source,
        scores=cumulative_scores,
        topo_beta=cumulative_tb,
        topo_alphabeta=cumulative_tab,
        iterations=stats.supersteps,
        converged=converged,
    )
    return state, stats
