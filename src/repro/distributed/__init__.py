"""Distributed recommendation over a partitioned social graph.

The paper's conclusion sketches this as future work: "distribution
implies to split the graph by taking into account connectivity, but
also to perform landmark selections and distributions that allow a node
to evaluate the recommendation scores 'locally' minimizing network
transfer costs." This subpackage implements that simulation:

- graph partitioners — hash, connectivity-aware greedy (LDG), and
  topic-based — with edge-cut and balance metrics (:mod:`partition`);
- a Pregel-style superstep engine that computes *bit-identical* Tr
  scores while accounting for every cross-partition message
  (:mod:`cluster`);
- a distributed landmark service where remote landmark lookups cost
  transfer units, so landmark placement strategies can be compared
  (:mod:`recommend`);
- a sharded serving tier on contiguous range partitions — integer-
  division routing, R-way replica sets with deterministic failover and
  hedged fetches, zero-downtime epoch rollover, scatter-gather
  execution, simulated failures and deadlines, results
  bitwise-identical to the single-machine recommender (:mod:`sharded`).
"""

from .partition import (
    PartitionMetrics,
    balance,
    edge_cut_fraction,
    greedy_partition,
    hash_partition,
    partition_metrics,
    range_partition,
    topic_partition,
)
from .cluster import MessageStats, distributed_single_source_scores
from .recommend import DistributedLandmarkService, QueryCost
from .sharded import (
    EpochRollover,
    ReplicaSet,
    ShardChannel,
    ShardedPlatform,
    ShardRouter,
    ShardSpec,
    ShardWorker,
    shard_bounds,
)

__all__ = [
    "hash_partition",
    "range_partition",
    "greedy_partition",
    "topic_partition",
    "edge_cut_fraction",
    "balance",
    "partition_metrics",
    "PartitionMetrics",
    "distributed_single_source_scores",
    "MessageStats",
    "DistributedLandmarkService",
    "QueryCost",
    "shard_bounds",
    "ShardSpec",
    "ShardRouter",
    "ShardChannel",
    "ShardWorker",
    "ReplicaSet",
    "EpochRollover",
    "ShardedPlatform",
]
