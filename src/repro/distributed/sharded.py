"""Sharded serving tier over contiguous range partitions.

The paper's future-work paragraph says scaling ``Tr`` means splitting
the graph and keeping recommendation traffic local. This module is that
serving tier, built on the pieces earlier PRs laid down:

- the frozen :class:`~repro.graph.snapshot.GraphSnapshot` pins one
  epoch of CSR arrays that every shard slices;
- :func:`~repro.distributed.partition.range_partition` defines the
  shard scheme — node at dense position ``i`` of ``n`` lives on shard
  ``min(i * P // n, P − 1)``, so :class:`ShardRouter` resolves any
  account with **one integer division and no lookup table**;
- :func:`~repro.distributed.cluster.distributed_single_source_scores`
  runs the Pregel-style depth-k exploration (bit-identical to the
  single-machine engine) with cross-shard message accounting;
- landmark inverted lists are *homed*: each
  :class:`ShardWorker` owns the lists of the landmarks in its range,
  and remote lists travel through an accounted, deadline-checked,
  retry-bounded :class:`ShardChannel`.

Query execution is scatter-gather (:class:`ShardedPlatform.serve`):
route the request to its home shard, explore the k-vicinity locally,
fetch the lists of encountered remote landmarks over the channel,
compose Proposition 4 exactly as the single-machine
:class:`~repro.landmarks.ApproximateRecommender`, and merge per-shard
top-n partial rankings with :class:`~repro.utils.topk.TopK`. With all
shards healthy the ranking is **bitwise-identical** to the
single-machine recommender (parity-tested for 1, 2, and 7 shards):
each shard's local top-n provably contains every one of its members of
the global top-n, so the merged top-n equals the global top-n.

Failure semantics (all simulated and deterministic — the channel uses
a seeded RNG and a virtual millisecond clock, never the wall clock):

- home shard down → :class:`~repro.errors.ShardDownError` (there is
  nothing to degrade to);
- remote shard down, or unreachable after the retry budget, or the
  request's simulated deadline exhausted mid-gather → the response
  degrades to what the healthy shards can answer and is flagged
  ``degraded=True`` (exploration treats the lost shard's nodes as
  absorbing, its homed landmark lists are skipped, and its candidates
  drop out of the merge);
- epoch mismatch — the pinned snapshot lagging its live graph, or any
  worker pinned to a different epoch than the router — raises
  :class:`~repro.errors.StaleSnapshotError` unless the request sets
  ``allow_stale=True``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import (Dict, Iterator, List, Mapping, Optional, Sequence,
                    Set, Tuple)

from ..api import (RecommendationRequest, RecommendationResponse,
                   response_from_pairs)
from ..config import LandmarkParams, ScoreParams
from ..core.scores import AuthorityIndex
from ..errors import (ChannelError, ConfigurationError, DeadlineExceededError,
                      ShardDownError, StaleSnapshotError)
from ..graph.labeled_graph import TopicSet
from ..graph.snapshot import GraphLike, GraphSnapshot, as_snapshot
from ..landmarks.index import LandmarkEntry, LandmarkIndex
from ..landmarks.query_engine import (LandmarkVectorCache, LandmarkVectors,
                                      compose_landmark_contributions,
                                      resolve_query_engine,
                                      vectors_from_entries)
from ..obs import runtime as _obs
from ..semantics.matrix import SimilarityMatrix
from ..utils.topk import TopK
from .cluster import distributed_single_source_scores
from .recommend import QueryCost

__all__ = [
    "ShardSpec",
    "shard_bounds",
    "ShardRouter",
    "ShardChannel",
    "ShardWorker",
    "ShardedPlatform",
]


# ----------------------------------------------------------------------
# Router
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ShardSpec:
    """One shard's contiguous slice of the dense node index.

    Attributes:
        shard_id: Shard number in ``0..num_shards-1``.
        lo: First owned dense position (inclusive).
        hi: One past the last owned dense position (exclusive).
    """

    shard_id: int
    lo: int
    hi: int

    @property
    def num_nodes(self) -> int:
        """Number of accounts this shard owns."""
        return self.hi - self.lo

    @property
    def is_empty(self) -> bool:
        """True when the shard owns no nodes (``num_shards > num_nodes``)."""
        return self.hi <= self.lo


def shard_bounds(num_nodes: int, num_shards: int) -> List[ShardSpec]:
    """Contiguous position ranges matching :func:`range_partition`.

    Shard ``s`` owns positions ``[⌈s·n/P⌉, ⌈(s+1)·n/P⌉)`` — exactly the
    preimage of ``i ↦ min(i·P // n, P−1)``, so a worker built from
    these bounds agrees with the router's division on every node. When
    ``num_shards > num_nodes``, ``num_shards − num_nodes`` of the
    shards are empty (see the :func:`range_partition` docstring); they
    are constructed but not routable.
    """
    if num_shards < 1:
        raise ConfigurationError(
            f"num_shards must be >= 1, got {num_shards}")
    if num_nodes < 1:
        raise ConfigurationError("cannot shard an empty graph")
    return [
        ShardSpec(
            shard_id=shard,
            lo=(shard * num_nodes + num_shards - 1) // num_shards,
            hi=((shard + 1) * num_nodes + num_shards - 1) // num_shards,
        )
        for shard in range(num_shards)
    ]


class ShardRouter:
    """Resolve accounts to shards with one integer division.

    The snapshot's dense index is the routing function: account →
    position (one dict lookup the snapshot already maintains) →
    ``min(position * num_shards // num_nodes, num_shards − 1)``. No
    routing table exists anywhere in the tier.
    """

    def __init__(self, snapshot: GraphSnapshot, num_shards: int) -> None:
        self.specs = shard_bounds(snapshot.num_nodes, num_shards)
        self.num_shards = num_shards
        self.num_nodes = snapshot.num_nodes
        self._snapshot = snapshot

    def shard_of(self, node: int) -> int:
        """Home shard of *node* (raises ``NodeNotFoundError`` on unknown)."""
        position = self._snapshot.index_of(node)
        return min(position * self.num_shards // self.num_nodes,
                   self.num_shards - 1)

    def route(self, shard_id: int) -> ShardSpec:
        """The spec of *shard_id*, refusing unroutable shards.

        Raises:
            ConfigurationError: *shard_id* is out of range, or the
                shard is empty (``num_shards > num_nodes`` leaves some
                shards with no nodes — no request can ever
                legitimately land there).
        """
        if not 0 <= shard_id < self.num_shards:
            raise ConfigurationError(
                f"shard {shard_id} does not exist "
                f"(num_shards={self.num_shards})")
        spec = self.specs[shard_id]
        if spec.is_empty:
            raise ConfigurationError(
                f"shard {shard_id} is empty: num_shards={self.num_shards} "
                f"exceeds num_nodes={self.num_nodes}, so trailing shards "
                f"own no nodes and are not routable")
        return spec

    def assignment(self) -> Mapping[int, int]:
        """Node → shard mapping computed on demand — still no table."""
        return _RouterAssignment(self)


class _RouterAssignment(Mapping[int, int]):
    """Lazy ``Assignment`` view over the router's division.

    The propagation engine wants a ``node → partition`` mapping; this
    satisfies the ``Mapping`` contract by *computing* each lookup from
    the dense position, preserving the tier's no-lookup-table property.
    """

    def __init__(self, router: ShardRouter) -> None:
        self._router = router

    def __getitem__(self, node: int) -> int:
        return self._router.shard_of(node)

    def __contains__(self, node: object) -> bool:
        return node in self._router._snapshot.position

    def __iter__(self) -> Iterator[int]:
        return iter(self._router._snapshot.node_ids)

    def __len__(self) -> int:
        return self._router.num_nodes


# ----------------------------------------------------------------------
# Simulated channel + per-request clock
# ----------------------------------------------------------------------

class _RequestClock:
    """Virtual per-request millisecond clock.

    All latency in this tier is *simulated* (charged per channel hop),
    so runs are deterministic and the obs layer's no-wall-clock rule
    (R7) holds. ``charge`` raises once the request's deadline budget is
    exhausted.
    """

    def __init__(self, deadline_ms: Optional[float]) -> None:
        self.deadline_ms = deadline_ms
        self.elapsed_ms = 0.0

    def charge(self, ms: float) -> None:
        self.elapsed_ms += ms
        if self.deadline_ms is not None and self.elapsed_ms > self.deadline_ms:
            raise DeadlineExceededError(self.deadline_ms, self.elapsed_ms)


class ShardChannel:
    """Simulated cross-shard link with injectable flakiness.

    Every fetch charges ``latency_ms`` of virtual time to the request
    clock and fails with probability ``failure_rate`` (seeded RNG, so a
    given request sequence is reproducible). The platform retries
    failed fetches up to its retry budget.
    """

    def __init__(self, latency_ms: float = 1.0, failure_rate: float = 0.0,
                 seed: int = 0) -> None:
        if latency_ms < 0.0:
            raise ConfigurationError(
                f"latency_ms must be >= 0, got {latency_ms}")
        if not 0.0 <= failure_rate <= 1.0:
            raise ConfigurationError(
                f"failure_rate must be in [0, 1], got {failure_rate}")
        self.latency_ms = latency_ms
        self.failure_rate = failure_rate
        self.fetches_total = 0
        self.failures_total = 0
        self._rng = random.Random(seed)

    def fetch(self, worker: "ShardWorker", landmark: int, topic: str,
              clock: _RequestClock, attempt: int) -> List[LandmarkEntry]:
        """One fetch attempt of a landmark's inverted list.

        Raises:
            DeadlineExceededError: the request budget ran out.
            ShardDownError: the target worker is marked down.
            ChannelError: the simulated link dropped this attempt.
        """
        clock.charge(self.latency_ms)
        self.fetches_total += 1
        if worker.down:
            raise ShardDownError(worker.spec.shard_id)
        if self.failure_rate and self._rng.random() < self.failure_rate:
            self.failures_total += 1
            raise ChannelError(worker.spec.shard_id, attempt)
        return worker.landmark_entries(landmark, topic)

    def fetch_vectors(self, worker: "ShardWorker", landmark: int, topic: str,
                      clock: _RequestClock, attempt: int) -> LandmarkVectors:
        """Vectorised twin of :meth:`fetch` — same cost and failure model.

        The charge → down-check → flakiness sequence is identical (one
        RNG draw per attempt either way), so a request pays the same
        simulated latency and sees the same simulated failures no
        matter which query engine composes it.
        """
        clock.charge(self.latency_ms)
        self.fetches_total += 1
        if worker.down:
            raise ShardDownError(worker.spec.shard_id)
        if self.failure_rate and self._rng.random() < self.failure_rate:
            self.failures_total += 1
            raise ChannelError(worker.spec.shard_id, attempt)
        return worker.landmark_vectors(landmark, topic)


# ----------------------------------------------------------------------
# Worker
# ----------------------------------------------------------------------

class ShardWorker:  # repro: ignore[W4] -- instantiated by ShardedPlatform.build; exported as the per-shard component type (docs/ARCHITECTURE.md)
    """One shard: a contiguous slice of the snapshot plus homed lists.

    The worker owns rebased copies of its CSR rows (``out_indptr``
    starts at 0, ``out_indices`` still hold global dense positions —
    edges may point anywhere), its own :class:`AuthorityIndex`
    instance, and the inverted lists of every landmark whose home
    position falls in its range. Adjacency reads for non-owned nodes
    are refused — cross-shard data moves only through the platform's
    channel.
    """

    def __init__(self, snapshot: GraphSnapshot, spec: ShardSpec,
                 index: LandmarkIndex, router: ShardRouter,
                 authority: Optional[AuthorityIndex] = None) -> None:
        self.spec = spec
        self.epoch = snapshot.epoch
        self._snapshot = snapshot
        lo, hi = spec.lo, spec.hi
        self.node_ids: Tuple[int, ...] = snapshot.node_ids[lo:hi]
        edge_lo = int(snapshot.out_indptr[lo])
        edge_hi = int(snapshot.out_indptr[hi])
        #: This shard's CSR rows, rebased so row ``i`` is local node ``i``.
        self.out_indptr = snapshot.out_indptr[lo:hi + 1] - edge_lo
        self.out_indices = snapshot.out_indices[edge_lo:edge_hi]
        self.out_label_ids = snapshot.out_label_ids[edge_lo:edge_hi]
        #: Per-shard authority cache (scores are snapshot-global, the
        #: memo is shard-private).
        self.authority = (authority if authority is not None
                          else AuthorityIndex(snapshot))
        #: Landmarks homed here, with their inverted lists.
        self.landmarks: Tuple[int, ...] = tuple(
            landmark for landmark in sorted(index.landmarks)
            if router.shard_of(landmark) == spec.shard_id)
        self._lists: Dict[int, Dict[str, List[LandmarkEntry]]] = {
            landmark: {
                topic: list(index.recommendations(landmark, topic))
                for topic in index.topics_of(landmark)
            }
            for landmark in self.landmarks
        }
        self.down = False
        self.requests_total = 0
        self.queue_depth = 0
        self._row_cache: Dict[int, Dict[int, TopicSet]] = {}
        # Vectorised views of the homed lists. The worker's list copies
        # are frozen at construction (epoch-pinned), so the version
        # component is always 0 — only the epoch key matters here.
        self._vector_cache = LandmarkVectorCache()

    @property
    def num_nodes(self) -> int:
        """Number of accounts this worker owns."""
        return len(self.node_ids)

    def owns(self, node: int) -> bool:
        """Whether *node*'s home position falls in this shard's range."""
        position = self._snapshot.position.get(node)
        return (position is not None
                and self.spec.lo <= position < self.spec.hi)

    def out_neighbors(self, node: int) -> Mapping[int, TopicSet]:
        """Adjacency of an *owned* node, read from the shard's own rows.

        Identical content to the full snapshot's row (same ids, same
        interned labels), which is what makes shard-side exploration
        bit-exact. Raises :class:`ConfigurationError` for non-owned
        nodes — the worker has no rows for them.
        """
        cached = self._row_cache.get(node)
        if cached is not None:
            return cached
        position = self._snapshot.index_of(node)
        if not self.spec.lo <= position < self.spec.hi:
            raise ConfigurationError(
                f"shard {self.spec.shard_id} does not own node {node} "
                f"(position {position} outside [{self.spec.lo}, "
                f"{self.spec.hi}))")
        local = position - self.spec.lo
        start = int(self.out_indptr[local])
        stop = int(self.out_indptr[local + 1])
        node_ids = self._snapshot.node_ids
        labels = self._snapshot.labels
        row = {
            node_ids[j]: labels[l]
            for j, l in zip(self.out_indices[start:stop].tolist(),
                            self.out_label_ids[start:stop].tolist())
        }
        self._row_cache[node] = row
        return row

    def landmark_entries(self, landmark: int,
                         topic: str) -> List[LandmarkEntry]:
        """Inverted list of a landmark homed on this shard.

        Raises :class:`ConfigurationError` when asked for a landmark
        homed elsewhere — list reads never silently cross shards.
        """
        lists = self._lists.get(landmark)
        if lists is None:
            raise ConfigurationError(
                f"landmark {landmark} is not homed on shard "
                f"{self.spec.shard_id}")
        return lists.get(topic, [])

    def landmark_vectors(self, landmark: int, topic: str) -> LandmarkVectors:
        """Vectorised view of a homed landmark's inverted list.

        Same homing contract as :meth:`landmark_entries`; the arrays
        are built once per ``(landmark, topic)`` and cached (the
        worker's list copies never change within its pinned epoch).
        """
        lists = self._lists.get(landmark)
        if lists is None:
            raise ConfigurationError(
                f"landmark {landmark} is not homed on shard "
                f"{self.spec.shard_id}")
        return self._vector_cache.get_or_build(
            self.epoch, landmark, topic, 0,
            lambda: vectors_from_entries(
                self._snapshot, lists.get(topic, []), 0))


class _ShardedGraphView:
    """Graph facade routing adjacency reads to the owning worker.

    The propagation engine only ever calls ``out_neighbors``; each call
    lands on exactly one worker's sliced rows, so a traversal that
    crosses a shard boundary reads the *target* shard's rows for the
    next hop — matching how a real deployment walks a partitioned
    graph. Down shards are made absorbing by the platform before the
    engine runs, so their rows are never read.
    """

    def __init__(self, workers: Sequence[ShardWorker],
                 router: ShardRouter) -> None:
        self._workers = workers
        self._router = router

    def out_neighbors(self, node: int) -> Mapping[int, TopicSet]:
        worker = self._workers[self._router.shard_of(node)]
        if worker.down:
            raise ShardDownError(worker.spec.shard_id)
        return worker.out_neighbors(node)


# ----------------------------------------------------------------------
# Platform
# ----------------------------------------------------------------------

class ShardedPlatform:
    """Scatter-gather recommendation serving over range shards.

    Implements the :class:`repro.api.Recommender` protocol. Build with
    :meth:`build`::

        platform = ShardedPlatform.build(graph, sim, index, num_shards=4)
        response = platform.recommend(user, "technology", top_n=10)

    With every shard healthy the response ranking is bitwise-identical
    to :class:`~repro.landmarks.ApproximateRecommender` over the same
    index; ``response.cost`` carries the cross-shard traffic the same
    request paid (a :class:`~repro.distributed.QueryCost`).
    """

    def __init__(
        self,
        snapshot: GraphSnapshot,
        router: ShardRouter,
        workers: Sequence[ShardWorker],
        similarity: SimilarityMatrix,
        index: LandmarkIndex,
        params: Optional[ScoreParams] = None,
        landmark_params: Optional[LandmarkParams] = None,
        channel: Optional[ShardChannel] = None,
        deadline_ms: float = 50.0,
        max_retries: int = 2,
        query_engine: str = "auto",
    ) -> None:
        if deadline_ms <= 0.0:
            raise ConfigurationError(
                f"deadline_ms must be > 0, got {deadline_ms}")
        if max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {max_retries}")
        self.router = router
        self.workers = list(workers)
        self.index = index
        self.params = params if params is not None else index.params
        self.landmark_params = (landmark_params if landmark_params is not None
                                else index.landmark_params)
        self.channel = channel if channel is not None else ShardChannel()
        self.deadline_ms = deadline_ms
        self.max_retries = max_retries
        #: Composition engine: ``"sparse"`` gathers vectorised lists
        #: (:meth:`ShardChannel.fetch_vectors`) and composes with one
        #: scatter-add; ``"dict"`` keeps the reference entry loop.
        #: Identical answers, identical simulated channel traffic.
        self.query_engine = resolve_query_engine(query_engine)
        self._snapshot = snapshot
        self._similarity = similarity
        self._view = _ShardedGraphView(self.workers, router)
        self._assignment = router.assignment()
        self._landmark_set = frozenset(index.landmarks)
        # Globally sorted composition order — the same float
        # accumulation order as ApproximateRecommender, which is what
        # keeps the sharded ranking bitwise-identical to it.
        self._sorted_landmarks = sorted(self._landmark_set)

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: GraphLike,
        similarity: SimilarityMatrix,
        index: LandmarkIndex,
        num_shards: int,
        *,
        params: Optional[ScoreParams] = None,
        landmark_params: Optional[LandmarkParams] = None,
        authority: Optional[AuthorityIndex] = None,
        channel: Optional[ShardChannel] = None,
        deadline_ms: float = 50.0,
        max_retries: int = 2,
        allow_stale: bool = False,
        query_engine: str = "auto",
    ) -> "ShardedPlatform":
        """Pin a snapshot, cut it into *num_shards* ranges, start workers.

        Args:
            graph: Live graph or prebuilt snapshot to serve from.
            similarity: Topic-similarity matrix shared by all shards.
            index: Landmark index whose lists get homed per shard.
            num_shards: Number of contiguous range shards.
            params: Propagation knobs (default: the index's).
            landmark_params: Exploration knobs (default: the index's).
            authority: Share one authority cache across workers instead
                of one instance per shard.
            channel: Cross-shard link simulation (default: reliable,
                1 ms per fetch).
            deadline_ms: Default per-request simulated latency budget.
            max_retries: Re-attempts per failed remote fetch.
            allow_stale: Accept a snapshot whose graph already moved on.
            query_engine: ``"auto"`` / ``"dict"`` / ``"sparse"`` —
                which Proposition-4 composition path serves requests
                (answers are bitwise-identical either way).
        """
        snapshot = as_snapshot(graph, allow_stale)
        router = ShardRouter(snapshot, num_shards)
        workers = [
            ShardWorker(snapshot, spec, index, router, authority=authority)
            for spec in router.specs
        ]
        return cls(snapshot, router, workers, similarity, index,
                   params=params, landmark_params=landmark_params,
                   channel=channel, deadline_ms=deadline_ms,
                   max_retries=max_retries, query_engine=query_engine)

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        """Number of shards (including empty, unroutable ones)."""
        return self.router.num_shards

    @property
    def epoch(self) -> int:
        """The pinned snapshot epoch every shard serves."""
        return self._snapshot.epoch

    def mark_down(self, shard_id: int) -> None:
        """Simulate an outage of *shard_id*."""
        self.workers[self.router.route(shard_id).shard_id].down = True

    def mark_up(self, shard_id: int) -> None:
        """Bring a downed shard back."""
        self.workers[self.router.route(shard_id).shard_id].down = False

    def _check_epochs(self, allow_stale: bool) -> None:
        self._snapshot.ensure_fresh(allow_stale)
        for worker in self.workers:
            if worker.epoch != self._snapshot.epoch and not allow_stale:
                raise StaleSnapshotError(worker.epoch, self._snapshot.epoch)

    def _down_shards(self) -> Set[int]:
        return {worker.spec.shard_id for worker in self.workers
                if worker.down}

    def _fetch_remote(self, worker: ShardWorker, landmark: int, topic: str,
                      clock: _RequestClock) -> Optional[List[LandmarkEntry]]:
        """Fetch with bounded retry; ``None`` = shard unreachable."""
        for attempt in range(1, self.max_retries + 2):
            try:
                return self.channel.fetch(worker, landmark, topic,
                                          clock, attempt)
            except ChannelError:
                _obs.count("shard.retries_total")
            except ShardDownError:
                return None
        return None

    def _fetch_remote_vectors(
            self, worker: ShardWorker, landmark: int, topic: str,
            clock: _RequestClock) -> Optional[LandmarkVectors]:
        """Vectorised :meth:`_fetch_remote` — same retry budget and
        accounting, so both engines pay identical simulated traffic."""
        for attempt in range(1, self.max_retries + 2):
            try:
                return self.channel.fetch_vectors(worker, landmark, topic,
                                                  clock, attempt)
            except ChannelError:
                _obs.count("shard.retries_total")
            except ShardDownError:
                return None
        return None

    # ------------------------------------------------------------------
    def recommend(self, user: int, topic: str, top_n: int = 10, *,
                  allow_stale: bool = False,
                  depth: Optional[int] = None,
                  deadline_ms: Optional[float] = None,
                  ) -> RecommendationResponse:
        """Top-n suggestions via scatter-gather over the shards."""
        request = RecommendationRequest(
            user=user, topic=topic, top_n=top_n, allow_stale=allow_stale,
            depth=depth, deadline_ms=deadline_ms)
        return self.serve(request)

    def serve(self, request: RecommendationRequest) -> RecommendationResponse:
        """Execute one :class:`RecommendationRequest` end to end.

        Raises:
            StaleSnapshotError: epoch mismatch and ``allow_stale`` unset.
            ShardDownError: the *home* shard is down.
            NodeNotFoundError: unknown user.
        """
        self._check_epochs(request.allow_stale)
        home_id = self.router.route(self.router.shard_of(request.user)).shard_id
        home = self.workers[home_id]
        if home.down:
            raise ShardDownError(home_id)

        exploration_depth = (request.depth if request.depth is not None
                             else self.landmark_params.query_depth)
        budget = (request.deadline_ms if request.deadline_ms is not None
                  else self.deadline_ms)
        clock = _RequestClock(budget)
        down = self._down_shards()
        degraded = bool(down)
        unreachable: Set[int] = set()

        home.requests_total += 1
        home.queue_depth += 1
        _obs.count("shard.requests_total")
        _obs.gauge(f"shard.{home_id}.queue_depth", float(home.queue_depth))
        try:
            with _obs.span("shard.serve") as _sp:
                if _sp:
                    _sp.set(user=request.user, topic=request.topic,
                            home=home_id, shards=self.num_shards)
                state, stats = self._explore(
                    request, home, exploration_depth, down)
                if self.query_engine == "sparse":
                    combined, cost_parts, degraded = self._compose_vectorized(
                        request, state, home_id, exploration_depth,
                        clock, down, unreachable, degraded)
                else:
                    combined, cost_parts, degraded = self._compose(
                        request, state, home_id, exploration_depth,
                        clock, down, unreachable, degraded)
                ranked = self._merge(request, home, combined,
                                     down | unreachable)
                if _sp:
                    _sp.set(degraded=degraded, returned=len(ranked),
                            elapsed_ms=clock.elapsed_ms)
        finally:
            home.queue_depth -= 1
            _obs.gauge(f"shard.{home_id}.queue_depth",
                       float(home.queue_depth))

        if degraded:
            _obs.count("shard.degraded_total")
        local, remote, shipped = cost_parts
        cost = QueryCost(propagation=stats, remote_landmarks=remote,
                         local_landmarks=local, entries_transferred=shipped)
        return response_from_pairs(
            request, ranked, engine="sharded",
            snapshot_epoch=self._snapshot.epoch, degraded=degraded,
            cost=cost)

    # ------------------------------------------------------------------
    def _explore(self, request: RecommendationRequest, home: ShardWorker,
                 exploration_depth: int, down: Set[int]):
        """Depth-k exploration from the home shard, landmark-absorbed.

        Down shards' nodes are added to the absorbing set: mass still
        *reaches* them (computing an edge only reads the sender's row)
        but the walk never expands from them, so no down-shard row is
        ever read.
        """
        absorbing = self._landmark_set
        if down:
            lost: Set[int] = set()
            for shard_id in down:
                lost.update(self.workers[shard_id].node_ids)
            absorbing = frozenset(absorbing | lost)
        with _obs.span("shard.explore") as _sp:
            state, stats = distributed_single_source_scores(
                self._view, self._assignment, request.user, [request.topic],
                self._similarity, authority=home.authority,
                params=self.params, max_depth=exploration_depth,
                absorbing=absorbing)
            if _sp:
                _sp.set(depth=exploration_depth,
                        supersteps=stats.supersteps,
                        remote_messages=stats.remote_messages)
        return state, stats

    def _compose(self, request: RecommendationRequest, state, home_id: int,
                 exploration_depth: int, clock: _RequestClock,
                 down: Set[int], unreachable: Set[int], degraded: bool):
        """Proposition-4 composition, fetching remote lists as needed.

        Iterates landmarks in global sorted order — the exact float
        accumulation order of the single-machine recommender.
        """
        user, topic = request.user, request.topic
        combined: Dict[int, float] = dict(state.scores.get(topic, {}))
        local = remote = shipped = 0
        deadline_hit = False
        with _obs.span("shard.compose") as _sp:
            for landmark in self._sorted_landmarks:
                if landmark == user and exploration_depth > 0:
                    continue
                topo_ab = state.topo_alphabeta.get(landmark, 0.0)
                if topo_ab <= 0.0:
                    continue
                owner = self.router.shard_of(landmark)
                if owner == home_id:
                    entries = self.workers[home_id].landmark_entries(
                        landmark, topic)
                    local += 1
                else:
                    if owner in down or owner in unreachable or deadline_hit:
                        degraded = True
                        continue
                    try:
                        entries = self._fetch_remote(
                            self.workers[owner], landmark, topic, clock)
                    except DeadlineExceededError:
                        _obs.count("shard.deadline_exceeded_total")
                        deadline_hit = True
                        degraded = True
                        continue
                    if entries is None:
                        unreachable.add(owner)
                        degraded = True
                        continue
                    remote += 1
                    shipped += len(entries)
                    _obs.count("shard.remote_fetches_total")
                sigma_to_landmark = state.score(landmark, topic)
                for entry in entries:
                    if entry.node == user:
                        continue
                    contribution = (sigma_to_landmark * entry.topo
                                    + topo_ab * entry.score)
                    if contribution:
                        combined[entry.node] = (
                            combined.get(entry.node, 0.0) + contribution)
            if _sp:
                _sp.set(local_landmarks=local, remote_landmarks=remote,
                        entries=shipped, candidates=len(combined))
        return combined, (local, remote, shipped), degraded

    def _compose_vectorized(self, request: RecommendationRequest, state,
                            home_id: int, exploration_depth: int,
                            clock: _RequestClock, down: Set[int],
                            unreachable: Set[int], degraded: bool):
        """Vectorised :meth:`_compose` — bitwise-identical answers.

        The control flow (sorted-landmark order, down / unreachable /
        deadline handling, retry accounting) is exactly the reference
        loop's; only the per-entry arithmetic moves into one
        concatenated scatter-add over the gathered landmark vectors.
        """
        user, topic = request.user, request.topic
        local = remote = shipped = 0
        deadline_hit = False
        with _obs.span("shard.compose") as _sp:
            hits: List[Tuple[float, float, LandmarkVectors]] = []
            for landmark in self._sorted_landmarks:
                if landmark == user and exploration_depth > 0:
                    continue
                topo_ab = state.topo_alphabeta.get(landmark, 0.0)
                if topo_ab <= 0.0:
                    continue
                owner = self.router.shard_of(landmark)
                if owner == home_id:
                    vectors = self.workers[home_id].landmark_vectors(
                        landmark, topic)
                    local += 1
                else:
                    if owner in down or owner in unreachable or deadline_hit:
                        degraded = True
                        continue
                    try:
                        vectors = self._fetch_remote_vectors(
                            self.workers[owner], landmark, topic, clock)
                    except DeadlineExceededError:
                        _obs.count("shard.deadline_exceeded_total")
                        deadline_hit = True
                        degraded = True
                        continue
                    if vectors is None:
                        unreachable.add(owner)
                        degraded = True
                        continue
                    remote += 1
                    shipped += len(vectors)
                    _obs.count("shard.remote_fetches_total")
                hits.append((state.score(landmark, topic), topo_ab, vectors))
            combined = compose_landmark_contributions(
                self._snapshot, state.scores.get(topic, {}), hits, user)
            if _sp:
                _sp.set(local_landmarks=local, remote_landmarks=remote,
                        entries=shipped, candidates=len(combined))
        return combined, (local, remote, shipped), degraded

    def _merge(self, request: RecommendationRequest, home: ShardWorker,
               combined: Dict[int, float],
               lost: Set[int]) -> List[Tuple[int, float]]:
        """Merge per-shard top-n partial rankings into the final top-n.

        Each healthy shard reduces its owned candidates to a local
        top-n; the gather side merges the partials. A candidate in the
        global top-n ranks at least as high among its own shard's
        candidates, so every global winner survives its shard's cut —
        the merged result equals the unsharded ranking bitwise.
        Candidates owned by down or unreachable shards have no shard to
        answer for them and drop out (the degraded path).
        """
        excluded = {request.user}
        excluded.update(home.out_neighbors(request.user))
        with _obs.span("shard.merge") as _sp:
            partials: Dict[int, TopK] = {}
            for node, value in combined.items():
                if node in excluded or value <= 0.0:
                    continue
                owner = self.router.shard_of(node)
                if owner in lost:
                    continue
                per_shard = partials.get(owner)
                if per_shard is None:
                    per_shard = partials[owner] = TopK(request.top_n)
                per_shard.set(node, value)
            gathered: TopK = TopK(request.top_n)
            for owner in sorted(partials):
                for node, value in partials[owner].best():
                    gathered.set(node, value)
            ranked = gathered.best()
            if _sp:
                _sp.set(shards_answering=len(partials),
                        returned=len(ranked))
        return ranked
