"""Sharded serving tier over contiguous range partitions.

The paper's future-work paragraph says scaling ``Tr`` means splitting
the graph and keeping recommendation traffic local. This module is that
serving tier, built on the pieces earlier PRs laid down:

- the frozen :class:`~repro.graph.snapshot.GraphSnapshot` pins one
  epoch of CSR arrays that every shard slices;
- :func:`~repro.distributed.partition.range_partition` defines the
  shard scheme — node at dense position ``i`` of ``n`` lives on shard
  ``min(i * P // n, P − 1)``, so :class:`ShardRouter` resolves any
  account with **one integer division and no lookup table**;
- :func:`~repro.distributed.cluster.distributed_single_source_scores`
  runs the Pregel-style depth-k exploration (bit-identical to the
  single-machine engine) with cross-shard message accounting;
- landmark inverted lists are *homed*: each
  :class:`ShardWorker` owns the lists of the landmarks in its range,
  and remote lists travel through an accounted, deadline-checked,
  retry-bounded :class:`ShardChannel`.

Query execution is scatter-gather (:class:`ShardedPlatform.serve`):
route the request to its home shard, explore the k-vicinity locally,
fetch the lists of encountered remote landmarks over the channel,
compose Proposition 4 exactly as the single-machine
:class:`~repro.landmarks.ApproximateRecommender`, and merge per-shard
top-n partial rankings with :class:`~repro.utils.topk.TopK`. With all
shards healthy the ranking is **bitwise-identical** to the
single-machine recommender (parity-tested for 1, 2, and 7 shards):
each shard's local top-n provably contains every one of its members of
the global top-n, so the merged top-n equals the global top-n.

Replication (:class:`ReplicaSet`) puts ``R`` identical
:class:`ShardWorker` replicas behind every shard range. Replicas are
built from the same pinned snapshot slice, so any replica answers any
request for its range bitwise-identically; which replica answers is
pure routing:

- the **primary** is the live replica with the lowest replica id — a
  deterministic choice, so a fixed seed replays the same replica
  schedule;
- a down or unreachable primary **fails over** to the next live
  replica in id order (``shard.replica.failover_total``); the shard
  degrades only when *every* replica is gone;
- remote landmark fetches are **hedged**: the channel tracks observed
  per-replica latency, and when a fetch's simulated latency exceeds
  the replica's latency quantile (:attr:`ShardChannel.hedge_quantile`
  over its recorded history), the same fetch is re-issued to the next
  live replica and the first answer wins
  (``shard.hedge.sent_total`` / ``shard.hedge.won_total``).

Epoch rollover (:class:`EpochRollover`) makes graph updates
zero-downtime: :meth:`ShardedPlatform.begin_rollover` builds a full
next-epoch generation of replica workers *beside* the serving one and
warms their landmark-vector caches
(:class:`~repro.landmarks.query_engine.LandmarkVectorCache`); the
router flips atomically — one reference assignment — only once every
replica reports ready, and requests that captured the old generation
drain against it. Clients therefore never see
:class:`~repro.errors.StaleSnapshotError` during a rollover driven by
:mod:`repro.dynamics` events; the old epoch simply keeps serving until
the flip (``shard.rollover.*`` metrics).

Failure semantics (all simulated and deterministic — the channel uses
a seeded RNG and a virtual millisecond clock, never the wall clock):

- every replica of the home shard down →
  :class:`~repro.errors.ShardDownError` (there is nothing to degrade
  to);
- every replica of a remote shard down, or unreachable after the retry
  budget across the failover chain, or the request's simulated
  deadline exhausted mid-gather → the response degrades to what the
  healthy shards can answer and is flagged ``degraded=True``
  (exploration treats the lost shard's nodes as absorbing, its homed
  landmark lists are skipped, and its candidates drop out of the
  merge);
- epoch mismatch — the pinned snapshot lagging its live graph with no
  rollover in progress, or any worker pinned to a different epoch than
  its generation — raises :class:`~repro.errors.StaleSnapshotError`
  unless the request sets ``allow_stale=True``.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import (Deque, Dict, Iterator, List, Mapping, Optional, Sequence,
                    Set, Tuple)

from ..api import (RecommendationRequest, RecommendationResponse,
                   response_from_pairs)
from ..config import LandmarkParams, ScoreParams
from ..core.scores import AuthorityIndex
from ..errors import (ChannelError, ConfigurationError, DeadlineExceededError,
                      ShardDownError, StaleSnapshotError)
from ..graph.labeled_graph import TopicSet
from ..graph.snapshot import GraphLike, GraphSnapshot, as_snapshot
from ..landmarks.index import LandmarkEntry, LandmarkIndex
from ..landmarks.query_engine import (LandmarkVectorCache, LandmarkVectors,
                                      compose_landmark_contributions,
                                      resolve_query_engine,
                                      vectors_from_entries)
from ..obs import runtime as _obs
from ..semantics.matrix import SimilarityMatrix
from ..utils.topk import TopK
from .cluster import distributed_single_source_scores
from .recommend import QueryCost

__all__ = [
    "ShardSpec",
    "shard_bounds",
    "ShardRouter",
    "ShardChannel",
    "ShardWorker",
    "ReplicaSet",
    "EpochRollover",
    "ShardedPlatform",
]


# ----------------------------------------------------------------------
# Router
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ShardSpec:
    """One shard's contiguous slice of the dense node index.

    Attributes:
        shard_id: Shard number in ``0..num_shards-1``.
        lo: First owned dense position (inclusive).
        hi: One past the last owned dense position (exclusive).
    """

    shard_id: int
    lo: int
    hi: int

    @property
    def num_nodes(self) -> int:
        """Number of accounts this shard owns."""
        return self.hi - self.lo

    @property
    def is_empty(self) -> bool:
        """True when the shard owns no nodes (``num_shards > num_nodes``)."""
        return self.hi <= self.lo


def shard_bounds(num_nodes: int, num_shards: int) -> List[ShardSpec]:
    """Contiguous position ranges matching :func:`range_partition`.

    Shard ``s`` owns positions ``[⌈s·n/P⌉, ⌈(s+1)·n/P⌉)`` — exactly the
    preimage of ``i ↦ min(i·P // n, P−1)``, so a worker built from
    these bounds agrees with the router's division on every node. When
    ``num_shards > num_nodes``, ``num_shards − num_nodes`` of the
    shards are empty (see the :func:`range_partition` docstring); they
    are constructed but not routable.
    """
    if num_shards < 1:
        raise ConfigurationError(
            f"num_shards must be >= 1, got {num_shards}")
    if num_nodes < 1:
        raise ConfigurationError("cannot shard an empty graph")
    return [
        ShardSpec(
            shard_id=shard,
            lo=(shard * num_nodes + num_shards - 1) // num_shards,
            hi=((shard + 1) * num_nodes + num_shards - 1) // num_shards,
        )
        for shard in range(num_shards)
    ]


class ShardRouter:
    """Resolve accounts to shards with one integer division.

    The snapshot's dense index is the routing function: account →
    position (one dict lookup the snapshot already maintains) →
    ``min(position * num_shards // num_nodes, num_shards − 1)``. No
    routing table exists anywhere in the tier.
    """

    def __init__(self, snapshot: GraphSnapshot, num_shards: int) -> None:
        self.specs = shard_bounds(snapshot.num_nodes, num_shards)
        self.num_shards = num_shards
        self.num_nodes = snapshot.num_nodes
        self._snapshot = snapshot

    def shard_of(self, node: int) -> int:
        """Home shard of *node* (raises ``NodeNotFoundError`` on unknown)."""
        position = self._snapshot.index_of(node)
        return min(position * self.num_shards // self.num_nodes,
                   self.num_shards - 1)

    def route(self, shard_id: int) -> ShardSpec:
        """The spec of *shard_id*, refusing unroutable shards.

        Raises:
            ConfigurationError: *shard_id* is out of range, or the
                shard is empty (``num_shards > num_nodes`` leaves some
                shards with no nodes — no request can ever
                legitimately land there).
        """
        if not 0 <= shard_id < self.num_shards:
            raise ConfigurationError(
                f"shard {shard_id} does not exist "
                f"(num_shards={self.num_shards})")
        spec = self.specs[shard_id]
        if spec.is_empty:
            raise ConfigurationError(
                f"shard {shard_id} is empty: num_shards={self.num_shards} "
                f"exceeds num_nodes={self.num_nodes}, so trailing shards "
                f"own no nodes and are not routable")
        return spec

    def assignment(self) -> Mapping[int, int]:
        """Node → shard mapping computed on demand — still no table."""
        return _RouterAssignment(self)


class _RouterAssignment(Mapping[int, int]):
    """Lazy ``Assignment`` view over the router's division.

    The propagation engine wants a ``node → partition`` mapping; this
    satisfies the ``Mapping`` contract by *computing* each lookup from
    the dense position, preserving the tier's no-lookup-table property.
    """

    def __init__(self, router: ShardRouter) -> None:
        self._router = router

    def __getitem__(self, node: int) -> int:
        return self._router.shard_of(node)

    def __contains__(self, node: object) -> bool:
        return node in self._router._snapshot.position

    def __iter__(self) -> Iterator[int]:
        return iter(self._router._snapshot.node_ids)

    def __len__(self) -> int:
        return self._router.num_nodes


# ----------------------------------------------------------------------
# Simulated channel + per-request clock
# ----------------------------------------------------------------------

class _RequestClock:
    """Virtual per-request millisecond clock.

    All latency in this tier is *simulated* (charged per channel hop),
    so runs are deterministic and the obs layer's no-wall-clock rule
    (R7) holds. ``charge`` raises once the request's deadline budget is
    exhausted.
    """

    def __init__(self, deadline_ms: Optional[float]) -> None:
        self.deadline_ms = deadline_ms
        self.elapsed_ms = 0.0

    def charge(self, ms: float) -> None:
        self.elapsed_ms += ms
        if self.deadline_ms is not None and self.elapsed_ms > self.deadline_ms:
            raise DeadlineExceededError(self.deadline_ms, self.elapsed_ms)


class ShardChannel:
    """Simulated cross-shard link with injectable flakiness and skew.

    Every fetch charges its drawn latency of virtual time to the
    request clock and fails with probability ``failure_rate`` (seeded
    RNG, so a given request sequence is reproducible). The platform
    retries failed fetches up to its retry budget, failing over down
    the replica chain.

    Latency model: a fetch to replica ``r`` of shard ``s`` costs the
    per-replica override set via :meth:`set_replica_latency` (else
    ``latency_ms``) plus a uniform ``[0, jitter_ms)`` draw. The channel
    records every draw in a bounded per-replica history; the
    ``hedge_quantile`` nearest-rank percentile of that history is the
    replica's **hedge threshold** — a fetch drawn slower than its own
    replica's recent behaviour triggers a hedge to the backup replica
    (see :meth:`hedged_fetch`). With the default configuration (fixed
    latency, no jitter, no overrides) no fetch ever exceeds its
    history's quantile, so hedging is quiescent and the channel behaves
    exactly like the pre-replication link.
    """

    def __init__(self, latency_ms: float = 1.0, failure_rate: float = 0.0,
                 seed: int = 0, jitter_ms: float = 0.0,
                 hedge_quantile: float = 0.95, hedge_min_samples: int = 8,
                 history_window: int = 64) -> None:
        if latency_ms < 0.0:
            raise ConfigurationError(
                f"latency_ms must be >= 0, got {latency_ms}")
        if not 0.0 <= failure_rate <= 1.0:
            raise ConfigurationError(
                f"failure_rate must be in [0, 1], got {failure_rate}")
        if jitter_ms < 0.0:
            raise ConfigurationError(
                f"jitter_ms must be >= 0, got {jitter_ms}")
        if not 0.5 <= hedge_quantile <= 1.0:
            raise ConfigurationError(
                f"hedge_quantile must be in [0.5, 1], got {hedge_quantile}")
        if hedge_min_samples < 1:
            raise ConfigurationError(
                f"hedge_min_samples must be >= 1, got {hedge_min_samples}")
        if history_window < hedge_min_samples:
            raise ConfigurationError(
                f"history_window ({history_window}) must be >= "
                f"hedge_min_samples ({hedge_min_samples})")
        self.latency_ms = latency_ms
        self.failure_rate = failure_rate
        self.jitter_ms = jitter_ms
        self.hedge_quantile = hedge_quantile
        self.hedge_min_samples = hedge_min_samples
        self.history_window = history_window
        self.fetches_total = 0
        self.failures_total = 0
        self.hedges_sent = 0
        self.hedges_won = 0
        self._rng = random.Random(seed)
        self._replica_latency: Dict[Tuple[int, int], float] = {}
        self._history: Dict[Tuple[int, int], Deque[float]] = {}

    # -- latency model -------------------------------------------------
    def set_replica_latency(self, shard_id: int, replica_id: int,
                            latency_ms: float) -> None:
        """Override the base latency of one replica (slow-replica chaos)."""
        if latency_ms < 0.0:
            raise ConfigurationError(
                f"latency_ms must be >= 0, got {latency_ms}")
        self._replica_latency[(shard_id, replica_id)] = latency_ms

    def clear_replica_latency(self, shard_id: int, replica_id: int) -> None:
        """Drop a per-replica latency override (back to ``latency_ms``)."""
        self._replica_latency.pop((shard_id, replica_id), None)

    def _draw_latency(self, worker: "ShardWorker") -> float:
        key = (worker.spec.shard_id, worker.replica_id)
        base = self._replica_latency.get(key, self.latency_ms)
        if self.jitter_ms:
            base += self._rng.random() * self.jitter_ms
        return base

    def _record(self, worker: "ShardWorker", latency: float) -> None:
        key = (worker.spec.shard_id, worker.replica_id)
        history = self._history.get(key)
        if history is None:
            history = self._history[key] = deque(maxlen=self.history_window)
        history.append(latency)

    def hedge_threshold(self, worker: "ShardWorker") -> Optional[float]:
        """Observed latency quantile of *worker*'s replica, or ``None``.

        ``None`` means "not enough history to judge" (fewer than
        ``hedge_min_samples`` recorded fetches) — hedging never fires
        on a cold replica. The percentile is nearest-rank over the
        bounded recent-history window, so a replica that *degrades*
        (its draws start landing above its own recent quantile)
        triggers hedges until the window re-learns the new normal.
        """
        history = self._history.get((worker.spec.shard_id, worker.replica_id))
        if history is None or len(history) < self.hedge_min_samples:
            return None
        ordered = sorted(history)
        rank = min(max(int(self.hedge_quantile * len(ordered) + 0.999999) - 1,
                       0), len(ordered) - 1)
        return ordered[rank]

    # -- fetch primitives ----------------------------------------------
    def _payload(self, worker: "ShardWorker", landmark: int, topic: str,
                 vectors: bool):
        if vectors:
            return worker.landmark_vectors(landmark, topic)
        return worker.landmark_entries(landmark, topic)

    def _resolve(self, worker: "ShardWorker", landmark: int, topic: str,
                 vectors: bool) -> Tuple[str, object]:
        """Outcome of one leg: ``("ok", payload) | ("down"|"drop", None)``.

        Draws the failure RNG exactly once per leg (when flakiness is
        configured), so the dict and sparse engines — which issue the
        same leg sequence — replay identical simulated failures.
        """
        if worker.down:
            return "down", None
        if self.failure_rate and self._rng.random() < self.failure_rate:
            self.failures_total += 1
            return "drop", None
        return "ok", self._payload(worker, landmark, topic, vectors)

    def _single(self, worker: "ShardWorker", latency: float, landmark: int,
                topic: str, clock: _RequestClock, attempt: int,
                vectors: bool):
        clock.charge(latency)
        self._record(worker, latency)
        self.fetches_total += 1
        status, payload = self._resolve(worker, landmark, topic, vectors)
        if status == "down":
            raise ShardDownError(worker.spec.shard_id)
        if status == "drop":
            raise ChannelError(worker.spec.shard_id, attempt)
        return payload

    def fetch(self, worker: "ShardWorker", landmark: int, topic: str,
              clock: _RequestClock, attempt: int) -> List[LandmarkEntry]:
        """One un-hedged fetch attempt of a landmark's inverted list.

        Raises:
            DeadlineExceededError: the request budget ran out.
            ShardDownError: the target worker is marked down.
            ChannelError: the simulated link dropped this attempt.
        """
        return self._single(worker, self._draw_latency(worker), landmark,
                            topic, clock, attempt, vectors=False)

    def fetch_vectors(self, worker: "ShardWorker", landmark: int, topic: str,
                      clock: _RequestClock, attempt: int) -> LandmarkVectors:
        """Vectorised twin of :meth:`fetch` — same cost and failure model.

        The charge → down-check → flakiness sequence is identical (one
        RNG draw per attempt either way), so a request pays the same
        simulated latency and sees the same simulated failures no
        matter which query engine composes it.
        """
        return self._single(worker, self._draw_latency(worker), landmark,
                            topic, clock, attempt, vectors=True)

    def hedged_fetch(self, primary: "ShardWorker",
                     backup: Optional["ShardWorker"], landmark: int,
                     topic: str, clock: _RequestClock, attempt: int, *,
                     vectors: bool = False):
        """One fetch attempt against *primary*, hedged to *backup*.

        The hedge fires when the primary's drawn latency exceeds its
        own observed :meth:`hedge_threshold`: the identical fetch is
        issued to *backup* at the threshold mark (the moment a real
        hedging client would stop waiting), and whichever leg completes
        first — primary at its draw, backup at ``threshold + its
        draw`` — supplies the answer and the virtual time charged. The
        loser is discarded but still pays its fetch accounting; only
        the leg actually waited for feeds the latency history (an
        abandoned leg's completion is never observed — recording it
        would teach the threshold the outlier it just dodged). With no
        backup, no threshold (cold history), or a fast draw, this
        degenerates to exactly :meth:`fetch` / :meth:`fetch_vectors`.

        Raises:
            DeadlineExceededError: the request budget ran out.
            ShardDownError: every issued leg hit a down replica.
            ChannelError: every issued leg was dropped by the link.
        """
        draw_primary = self._draw_latency(primary)
        threshold = (self.hedge_threshold(primary)
                     if backup is not None else None)
        if threshold is None or draw_primary <= threshold:
            return self._single(primary, draw_primary, landmark, topic,
                                clock, attempt, vectors)

        status_p, payload_p = self._resolve(primary, landmark, topic, vectors)
        draw_backup = self._draw_latency(backup)
        status_b, payload_b = self._resolve(backup, landmark, topic, vectors)
        self.hedges_sent += 1
        self.fetches_total += 2
        _obs.count("shard.hedge.sent_total")
        done_primary = draw_primary
        done_backup = threshold + draw_backup
        legs = sorted([
            (done_primary, draw_primary, primary, 0, status_p, payload_p),
            (done_backup, draw_backup, backup, 1, status_b, payload_b),
        ], key=lambda leg: (leg[0], leg[3]))
        for done, draw, worker, leg, status, payload in legs:
            if status == "ok":
                clock.charge(done)
                self._record(worker, draw)
                if leg == 1:
                    self.hedges_won += 1
                    _obs.count("shard.hedge.won_total")
                return payload
        clock.charge(max(done_primary, done_backup))
        self._record(primary, draw_primary)
        self._record(backup, draw_backup)
        if status_p == "down" and status_b == "down":
            raise ShardDownError(primary.spec.shard_id)
        raise ChannelError(primary.spec.shard_id, attempt)


# ----------------------------------------------------------------------
# Worker + replica set
# ----------------------------------------------------------------------

class ShardWorker:  # repro: ignore[W4] -- instantiated by ShardedPlatform.build; exported as the per-shard component type (docs/ARCHITECTURE.md)
    """One shard replica: a contiguous snapshot slice plus homed lists.

    The worker owns rebased copies of its CSR rows (``out_indptr``
    starts at 0, ``out_indices`` still hold global dense positions —
    edges may point anywhere), a shared :class:`AuthorityIndex`, and
    the inverted lists of every landmark whose home position falls in
    its range. Adjacency reads for non-owned nodes are refused —
    cross-shard data moves only through the platform's channel.

    Replicas of one shard range are interchangeable: they slice the
    same pinned snapshot, so any replica answers bitwise-identically.
    A worker's lifecycle (``state``) is ``warming`` → ``ready`` (after
    :meth:`warm` prebuilds its landmark-vector cache) with ``down``
    reachable from either — see the replica state machine in
    ``docs/ARCHITECTURE.md``. Generation-0 workers are born ready
    (cold-start serving fills caches on demand); rollover generations
    are born warming and must report ready before the router flips.
    """

    def __init__(self, snapshot: GraphSnapshot, spec: ShardSpec,
                 index: LandmarkIndex, router: ShardRouter,
                 authority: Optional[AuthorityIndex] = None,
                 replica_id: int = 0, ready: bool = True) -> None:
        self.spec = spec
        self.replica_id = replica_id
        self.epoch = snapshot.epoch
        self.ready = ready
        self._snapshot = snapshot
        lo, hi = spec.lo, spec.hi
        #: This worker's slice of the node-id table. A slice, not a
        #: copy: for store-loaded snapshots ``node_ids`` is a ``range``
        #: and the slice stays a ``range`` — no per-node heap cost.
        self.node_ids: Tuple[int, ...] = snapshot.node_ids[lo:hi]
        #: This shard's CSR rows, rebased so row ``i`` is local node
        #: ``i``. ``out_slice`` returns *views* of the snapshot arrays
        #: (only the small rebased indptr is copied), so replica
        #: warm-up and rollover ``_Generation`` builds on an
        #: mmap-backed snapshot open file-backed slices and page in
        #: rows on first read instead of deep-copying the adjacency.
        (self.out_indptr, self.out_indices,
         self.out_label_ids) = snapshot.out_slice(lo, hi)
        #: Per-shard authority cache (scores are snapshot-global, the
        #: memo is shard-private unless a shared cache is passed in).
        self.authority = (authority if authority is not None
                          else AuthorityIndex(snapshot))
        #: Landmarks homed here, with their inverted lists.
        self.landmarks: Tuple[int, ...] = tuple(
            landmark for landmark in sorted(index.landmarks)
            if router.shard_of(landmark) == spec.shard_id)
        self._lists: Dict[int, Dict[str, List[LandmarkEntry]]] = {
            landmark: {
                topic: list(index.recommendations(landmark, topic))
                for topic in index.topics_of(landmark)
            }
            for landmark in self.landmarks
        }
        self.down = False
        self.requests_total = 0
        self.queue_depth = 0
        self._row_cache: Dict[int, Dict[int, TopicSet]] = {}
        # Vectorised views of the homed lists. The worker's list copies
        # are frozen at construction (epoch-pinned), so the version
        # component is always 0 — only the epoch key matters here.
        self._vector_cache = LandmarkVectorCache()

    @property
    def num_nodes(self) -> int:
        """Number of accounts this worker owns."""
        return len(self.node_ids)

    @property
    def state(self) -> str:
        """Replica lifecycle state: ``down``, ``warming``, or ``ready``."""
        if self.down:
            return "down"
        return "ready" if self.ready else "warming"

    def warm(self) -> int:
        """Prebuild the vectorised view of every homed list; mark ready.

        This is the rollover warmup: a next-epoch replica runs it
        beside the serving generation so the flip lands on hot
        :class:`~repro.landmarks.query_engine.LandmarkVectorCache`
        entries instead of cold misses. Returns the number of
        ``(landmark, topic)`` vector views built.
        """
        built = 0
        for landmark in self.landmarks:
            for topic in sorted(self._lists[landmark]):
                self.landmark_vectors(landmark, topic)
                built += 1
        self.ready = True
        _obs.count("shard.replica.warmups_total")
        return built

    def owns(self, node: int) -> bool:
        """Whether *node*'s home position falls in this shard's range."""
        position = self._snapshot.position.get(node)
        return (position is not None
                and self.spec.lo <= position < self.spec.hi)

    def out_neighbors(self, node: int) -> Mapping[int, TopicSet]:
        """Adjacency of an *owned* node, read from the shard's own rows.

        Identical content to the full snapshot's row (same ids, same
        interned labels), which is what makes shard-side exploration
        bit-exact. Raises :class:`ConfigurationError` for non-owned
        nodes — the worker has no rows for them.
        """
        cached = self._row_cache.get(node)
        if cached is not None:
            return cached
        position = self._snapshot.index_of(node)
        if not self.spec.lo <= position < self.spec.hi:
            raise ConfigurationError(
                f"shard {self.spec.shard_id} does not own node {node} "
                f"(position {position} outside [{self.spec.lo}, "
                f"{self.spec.hi}))")
        local = position - self.spec.lo
        start = int(self.out_indptr[local])
        stop = int(self.out_indptr[local + 1])
        node_ids = self._snapshot.node_ids
        labels = self._snapshot.labels
        row = {
            node_ids[j]: labels[l]
            for j, l in zip(self.out_indices[start:stop].tolist(),
                            self.out_label_ids[start:stop].tolist())
        }
        self._row_cache[node] = row
        return row

    def landmark_entries(self, landmark: int,
                         topic: str) -> List[LandmarkEntry]:
        """Inverted list of a landmark homed on this shard.

        Raises :class:`ConfigurationError` when asked for a landmark
        homed elsewhere — list reads never silently cross shards.
        """
        lists = self._lists.get(landmark)
        if lists is None:
            raise ConfigurationError(
                f"landmark {landmark} is not homed on shard "
                f"{self.spec.shard_id}")
        return lists.get(topic, [])

    def landmark_vectors(self, landmark: int, topic: str) -> LandmarkVectors:
        """Vectorised view of a homed landmark's inverted list.

        Same homing contract as :meth:`landmark_entries`; the arrays
        are built once per ``(landmark, topic)`` and cached (the
        worker's list copies never change within its pinned epoch).
        """
        lists = self._lists.get(landmark)
        if lists is None:
            raise ConfigurationError(
                f"landmark {landmark} is not homed on shard "
                f"{self.spec.shard_id}")
        return self._vector_cache.get_or_build(
            self.epoch, landmark, topic, 0,
            lambda: vectors_from_entries(
                self._snapshot, lists.get(topic, []), 0))


class ReplicaSet:
    """R interchangeable :class:`ShardWorker` replicas of one range.

    Primary selection is deterministic: the live replica with the
    lowest replica id serves reads, and failover simply advances down
    the id order. No election, no coordination state — a fixed seed
    replays the identical replica schedule, which is what lets the
    chaos suite assert bitwise-stable rankings under failure.
    """

    def __init__(self, spec: ShardSpec,
                 replicas: Sequence[ShardWorker]) -> None:
        if not replicas:
            raise ConfigurationError(
                f"shard {spec.shard_id} needs at least one replica")
        self.spec = spec
        self.replicas = list(replicas)

    @property
    def num_replicas(self) -> int:
        """Configured replication factor of this shard range."""
        return len(self.replicas)

    def live(self) -> List[ShardWorker]:
        """Live replicas in deterministic failover (replica-id) order."""
        return [worker for worker in self.replicas if not worker.down]

    def primary(self) -> Optional[ShardWorker]:
        """The serving replica — lowest live replica id, else ``None``."""
        for worker in self.replicas:
            if not worker.down:
                return worker
        return None

    @property
    def all_down(self) -> bool:
        """Whether every replica of this range is down (shard outage)."""
        return all(worker.down for worker in self.replicas)

    @property
    def all_ready(self) -> bool:
        """Whether every replica finished warming (rollover gate)."""
        return all(worker.ready for worker in self.replicas)


class _ShardedGraphView:
    """Graph facade routing adjacency reads to the owning replica set.

    The propagation engine only ever calls ``out_neighbors``; each call
    lands on the owning range's primary replica, so a traversal that
    crosses a shard boundary reads the *target* shard's rows for the
    next hop — matching how a real deployment walks a partitioned
    graph. Fully-down shards are made absorbing by the platform before
    the engine runs, so their rows are never read.
    """

    def __init__(self, replica_sets: Sequence[ReplicaSet],
                 router: ShardRouter) -> None:
        self._replica_sets = replica_sets
        self._router = router

    def out_neighbors(self, node: int) -> Mapping[int, TopicSet]:
        replica_set = self._replica_sets[self._router.shard_of(node)]
        worker = replica_set.primary()
        if worker is None:
            raise ShardDownError(replica_set.spec.shard_id)
        return worker.out_neighbors(node)


# ----------------------------------------------------------------------
# Generations + rollover
# ----------------------------------------------------------------------

@dataclass
class _Generation:
    """Everything pinned to one served epoch, swapped atomically.

    The platform holds exactly one reference (``_generation``); a
    rollover builds the next instance completely off to the side and
    the flip is a single attribute assignment, so a request that
    captured a generation at entry keeps a consistent epoch end to end
    no matter when the flip lands.
    """

    snapshot: GraphSnapshot
    router: ShardRouter
    replica_sets: List[ReplicaSet]
    view: _ShardedGraphView
    assignment: Mapping[int, int]
    index: LandmarkIndex
    landmark_set: frozenset
    sorted_landmarks: List[int]


class EpochRollover:
    """Coordinator of one zero-downtime epoch flip.

    Produced by :meth:`ShardedPlatform.begin_rollover`. While this
    object is pending, the platform keeps serving the *old* generation
    — including when the live graph has already moved past its pinned
    epoch (``shard.rollover.stale_served_total`` counts those
    requests; none of them raises
    :class:`~repro.errors.StaleSnapshotError`). :meth:`flip` refuses
    to switch until every next-generation replica reports ready.
    """

    def __init__(self, platform: "ShardedPlatform",
                 generation: _Generation) -> None:
        self._platform = platform
        self.next_generation = generation
        self.flipped = False

    @property
    def epoch(self) -> int:
        """The epoch the platform will serve after the flip."""
        return self.next_generation.snapshot.epoch

    @property
    def ready(self) -> bool:
        """Whether every next-generation replica finished warming."""
        return all(replica_set.all_ready
                   for replica_set in self.next_generation.replica_sets)

    def warm(self) -> int:
        """Warm every next-generation replica beside the serving tier.

        Returns the total number of landmark-vector views prebuilt
        across all replicas (the ``shard.rollover.warm`` span).
        """
        built = 0
        replicas = 0
        with _obs.span("shard.rollover.warm") as _sp:
            for replica_set in self.next_generation.replica_sets:
                for worker in replica_set.replicas:
                    built += worker.warm()
                    replicas += 1
            if _sp:
                _sp.set(epoch=self.epoch, replicas=replicas, vectors=built)
        return built

    def flip(self) -> int:
        """Atomically switch the platform to the new generation.

        One reference assignment: requests already in flight keep the
        generation they captured (and drain against it); every request
        admitted after this line serves the new epoch. Returns the new
        epoch.

        Raises:
            ConfigurationError: the rollover already flipped, or a
                replica has not reported ready yet.
        """
        if self.flipped:
            raise ConfigurationError("rollover already flipped")
        if not self.ready:
            warming = sorted(
                (replica_set.spec.shard_id, worker.replica_id)
                for replica_set in self.next_generation.replica_sets
                for worker in replica_set.replicas if not worker.ready)
            raise ConfigurationError(
                f"cannot flip to epoch {self.epoch}: replicas still "
                f"warming (shard, replica): {warming}")
        self._platform._generation = self.next_generation
        self._platform._rollover = None
        self.flipped = True
        _obs.count("shard.rollover.completed_total")
        _obs.gauge("shard.rollover.in_progress", 0.0)
        return self.epoch


# ----------------------------------------------------------------------
# Platform
# ----------------------------------------------------------------------

class ShardedPlatform:
    """Scatter-gather recommendation serving over replicated shards.

    Implements the :class:`repro.api.Recommender` protocol. Build with
    :meth:`build`::

        platform = ShardedPlatform.build(graph, sim, index,
                                         num_shards=4, replicas=2)
        response = platform.recommend(user, "technology", top_n=10)

    With every shard healthy the response ranking is bitwise-identical
    to :class:`~repro.landmarks.ApproximateRecommender` over the same
    index — replication and hedging change *which replica* answers,
    never *what* it answers; ``response.cost`` carries the cross-shard
    traffic the same request paid (a
    :class:`~repro.distributed.QueryCost`) and ``response.served_epoch``
    / ``response.hedged`` record the serving epoch and whether any
    fetch was hedged.
    """

    def __init__(
        self,
        snapshot: GraphSnapshot,
        router: ShardRouter,
        replica_sets: Sequence[ReplicaSet],
        similarity: SimilarityMatrix,
        index: LandmarkIndex,
        params: Optional[ScoreParams] = None,
        landmark_params: Optional[LandmarkParams] = None,
        channel: Optional[ShardChannel] = None,
        deadline_ms: float = 50.0,
        max_retries: int = 2,
        query_engine: str = "auto",
        hedge: bool = True,
        source: Optional[GraphLike] = None,
    ) -> None:
        if deadline_ms <= 0.0:
            raise ConfigurationError(
                f"deadline_ms must be > 0, got {deadline_ms}")
        if max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {max_retries}")
        replica_sets = list(replica_sets)
        if not replica_sets:
            raise ConfigurationError("platform needs at least one shard")
        self.params = params if params is not None else index.params
        self.landmark_params = (landmark_params if landmark_params is not None
                                else index.landmark_params)
        self.channel = channel if channel is not None else ShardChannel()
        self.deadline_ms = deadline_ms
        self.max_retries = max_retries
        #: Whether remote fetches may hedge to a backup replica. Only
        #: meaningful with ``replicas >= 2`` — with a single replica
        #: there is never a backup to hedge to.
        self.hedge = hedge
        #: Replication factor every generation is built with.
        self.replicas = replica_sets[0].num_replicas
        #: Composition engine: ``"sparse"`` gathers vectorised lists
        #: (:meth:`ShardChannel.fetch_vectors`) and composes with one
        #: scatter-add; ``"dict"`` keeps the reference entry loop.
        #: Identical answers, identical simulated channel traffic.
        self.query_engine = resolve_query_engine(query_engine)
        self._similarity = similarity
        self._num_shards = router.num_shards
        self._source = source
        self._rollover: Optional[EpochRollover] = None
        self._generation = self._assemble_generation(
            snapshot, router, replica_sets, index)

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: GraphLike,
        similarity: SimilarityMatrix,
        index: LandmarkIndex,
        num_shards: int,
        *,
        replicas: int = 1,
        params: Optional[ScoreParams] = None,
        landmark_params: Optional[LandmarkParams] = None,
        authority: Optional[AuthorityIndex] = None,
        channel: Optional[ShardChannel] = None,
        deadline_ms: float = 50.0,
        max_retries: int = 2,
        allow_stale: bool = False,
        query_engine: str = "auto",
        hedge: bool = True,
    ) -> "ShardedPlatform":
        """Pin a snapshot, cut it into *num_shards* ranges, start workers.

        Args:
            graph: Live graph or prebuilt snapshot to serve from.
                Passing the live graph lets :meth:`begin_rollover`
                re-snapshot it without arguments.
            similarity: Topic-similarity matrix shared by all shards.
            index: Landmark index whose lists get homed per shard.
            num_shards: Number of contiguous range shards.
            replicas: Replication factor R — identical workers per
                shard range with deterministic primary/failover order.
            params: Propagation knobs (default: the index's).
            landmark_params: Exploration knobs (default: the index's).
            authority: Share one authority cache across workers instead
                of the snapshot's own shared cache.
            channel: Cross-shard link simulation (default: reliable,
                1 ms per fetch, no jitter — hedging quiescent).
            deadline_ms: Default per-request simulated latency budget.
            max_retries: Re-attempts per failed remote fetch, per
                replica in the failover chain.
            allow_stale: Accept a snapshot whose graph already moved on.
            query_engine: ``"auto"`` / ``"dict"`` / ``"sparse"`` —
                which Proposition-4 composition path serves requests
                (answers are bitwise-identical either way).
            hedge: Allow hedged remote fetches when ``replicas >= 2``.
        """
        if replicas < 1:
            raise ConfigurationError(
                f"replicas must be >= 1, got {replicas}")
        snapshot = as_snapshot(graph, allow_stale)
        router = ShardRouter(snapshot, num_shards)
        replica_sets = cls._build_replica_sets(
            snapshot, router, index, replicas, authority=authority,
            ready=True)
        return cls(snapshot, router, replica_sets, similarity, index,
                   params=params, landmark_params=landmark_params,
                   channel=channel, deadline_ms=deadline_ms,
                   max_retries=max_retries, query_engine=query_engine,
                   hedge=hedge, source=graph)

    @staticmethod
    def _build_replica_sets(
            snapshot: GraphSnapshot, router: ShardRouter,
            index: LandmarkIndex, replicas: int, *,
            authority: Optional[AuthorityIndex] = None,
            ready: bool = True) -> List[ReplicaSet]:
        shared_authority = (authority if authority is not None
                            else snapshot.authority())
        return [
            ReplicaSet(spec, [
                ShardWorker(snapshot, spec, index, router,
                            authority=shared_authority, replica_id=replica,
                            ready=ready)
                for replica in range(replicas)
            ])
            for spec in router.specs
        ]

    def _assemble_generation(self, snapshot: GraphSnapshot,
                             router: ShardRouter,
                             replica_sets: List[ReplicaSet],
                             index: LandmarkIndex) -> _Generation:
        landmark_set = frozenset(index.landmarks)
        return _Generation(
            snapshot=snapshot,
            router=router,
            replica_sets=replica_sets,
            view=_ShardedGraphView(replica_sets, router),
            assignment=router.assignment(),
            index=index,
            landmark_set=landmark_set,
            # Globally sorted composition order — the same float
            # accumulation order as ApproximateRecommender, which is
            # what keeps the sharded ranking bitwise-identical to it.
            sorted_landmarks=sorted(landmark_set),
        )

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        """Number of shards (including empty, unroutable ones)."""
        return self._num_shards

    @property
    def epoch(self) -> int:
        """The pinned snapshot epoch the serving generation answers from."""
        return self._generation.snapshot.epoch

    @property
    def snapshot(self) -> GraphSnapshot:
        """The pinned snapshot the serving generation answers from.

        The ingest pipeline seeds its first delta overlay from this —
        writes accumulate against the served base, never behind it.
        """
        return self._generation.snapshot

    @property
    def router(self) -> ShardRouter:
        """The serving generation's router."""
        return self._generation.router

    @property
    def index(self) -> LandmarkIndex:
        """The serving generation's landmark index."""
        return self._generation.index

    @property
    def replica_sets(self) -> List[ReplicaSet]:
        """The serving generation's replica sets, one per shard."""
        return self._generation.replica_sets

    @property
    def workers(self) -> List[ShardWorker]:
        """Replica 0 of every shard — the primaries at build time.

        Kept for the pre-replication surface (``platform.workers[s]``);
        with ``replicas=1`` this is exactly the old worker list.
        """
        return [replica_set.replicas[0]
                for replica_set in self._generation.replica_sets]

    @property
    def pending_rollover(self) -> Optional[EpochRollover]:
        """The in-progress rollover, or ``None``."""
        return self._rollover

    def mark_down(self, shard_id: int,
                  replica: Optional[int] = None) -> None:
        """Simulate an outage of *shard_id*.

        With *replica* given, only that replica goes down (its peers
        fail over); with ``None`` the whole replica set goes down —
        the pre-replication whole-shard outage.
        """
        for worker in self._pick_replicas(shard_id, replica):
            if not worker.down:
                worker.down = True
                _obs.count("shard.replica.down_total")
        self._gauge_live(shard_id)

    def mark_up(self, shard_id: int,
                replica: Optional[int] = None) -> None:
        """Bring a downed shard (or one replica of it) back."""
        for worker in self._pick_replicas(shard_id, replica):
            if worker.down:
                worker.down = False
                _obs.count("shard.replica.recovered_total")
        self._gauge_live(shard_id)

    def _pick_replicas(self, shard_id: int,
                       replica: Optional[int]) -> List[ShardWorker]:
        spec = self.router.route(shard_id)
        replica_set = self._generation.replica_sets[spec.shard_id]
        if replica is None:
            return list(replica_set.replicas)
        if not 0 <= replica < replica_set.num_replicas:
            raise ConfigurationError(
                f"shard {shard_id} has no replica {replica} "
                f"(replicas={replica_set.num_replicas})")
        return [replica_set.replicas[replica]]

    def _gauge_live(self, shard_id: int) -> None:
        replica_set = self._generation.replica_sets[shard_id]
        _obs.gauge(f"shard.{shard_id}.replicas_live",
                   float(len(replica_set.live())))

    # ------------------------------------------------------------------
    # Epoch rollover
    # ------------------------------------------------------------------
    def begin_rollover(self, graph: Optional[GraphLike] = None,
                       index: Optional[LandmarkIndex] = None, *,
                       warm: bool = True) -> EpochRollover:
        """Prepare the next epoch's generation beside the serving one.

        Pins a fresh snapshot of *graph* (default: the graph this
        platform was built from), homes *index* (default: rebuild the
        current landmark set against the fresh snapshot with the same
        parameters), builds a full set of replica workers in the
        ``warming`` state, and — unless ``warm=False`` — warms them
        immediately. The serving generation is untouched: requests keep
        landing on the old epoch, and once the live graph has moved on
        they are counted in ``shard.rollover.stale_served_total``
        instead of raising :class:`~repro.errors.StaleSnapshotError`.
        Call :meth:`EpochRollover.flip` (or use :meth:`rollover`) to
        switch.

        Raises:
            ConfigurationError: a rollover is already in progress, or
                the platform was built from a bare snapshot and no
                *graph* was passed.
        """
        if self._rollover is not None:
            raise ConfigurationError(
                f"a rollover to epoch {self._rollover.epoch} is already "
                f"in progress; flip or abandon it first")
        source = graph if graph is not None else self._source
        if source is None:
            raise ConfigurationError(
                "no graph to roll over to: pass graph= explicitly")
        with _obs.span("shard.rollover.prepare") as _sp:
            snapshot = as_snapshot(source)
            if index is None:
                index = self._rebuild_index(snapshot)
            router = ShardRouter(snapshot, self._num_shards)
            replica_sets = self._build_replica_sets(
                snapshot, router, index, self.replicas, ready=False)
            generation = self._assemble_generation(
                snapshot, router, replica_sets, index)
            if _sp:
                _sp.set(from_epoch=self.epoch, to_epoch=snapshot.epoch,
                        replicas=self.replicas)
        self._rollover = EpochRollover(self, generation)
        _obs.count("shard.rollover.started_total")
        _obs.gauge("shard.rollover.in_progress", 1.0)
        if warm:
            self._rollover.warm()
        return self._rollover

    def rollover(self, graph: Optional[GraphLike] = None,
                 index: Optional[LandmarkIndex] = None) -> int:
        """Warm the next epoch beside the old one, then flip atomically.

        Convenience wrapper over :meth:`begin_rollover` +
        :meth:`EpochRollover.flip`; returns the new serving epoch.
        """
        return self.begin_rollover(graph, index).flip()

    def abandon_rollover(self) -> None:
        """Discard a pending rollover without flipping (chaos escape)."""
        if self._rollover is not None:
            self._rollover = None
            _obs.count("shard.rollover.abandoned_total")
            _obs.gauge("shard.rollover.in_progress", 0.0)

    def _rebuild_index(self, snapshot: GraphSnapshot) -> LandmarkIndex:
        current = self._generation.index
        landmarks = sorted(current.landmarks)
        topics = sorted({topic for landmark in landmarks
                         for topic in current.topics_of(landmark)})
        return LandmarkIndex.build(
            snapshot, landmarks, topics, self._similarity,
            params=self.params, landmark_params=self.landmark_params,
            authority=snapshot.authority())

    # ------------------------------------------------------------------
    def _check_epochs(self, generation: _Generation,
                      allow_stale: bool) -> None:
        draining = generation is not self._generation
        if draining:
            # An in-flight request finishing against a retired (or
            # still-warming) generation: the whole point of the flip
            # discipline is that it completes on the epoch it started.
            _obs.count("shard.rollover.drained_total")
        elif self._rollover is not None:
            # Zero-downtime window: the graph may already be ahead of
            # the pinned epoch, but the next generation is warming —
            # keep serving the old epoch instead of failing requests.
            if generation.snapshot.is_stale:
                _obs.count("shard.rollover.stale_served_total")
        else:
            generation.snapshot.ensure_fresh(allow_stale)
        for replica_set in generation.replica_sets:
            for worker in replica_set.replicas:
                if (worker.epoch != generation.snapshot.epoch
                        and not allow_stale):
                    raise StaleSnapshotError(worker.epoch,
                                             generation.snapshot.epoch)

    def _down_shards(self, generation: _Generation) -> Set[int]:
        return {replica_set.spec.shard_id
                for replica_set in generation.replica_sets
                if replica_set.all_down}

    def _fetch_replicated(self, replica_set: ReplicaSet, landmark: int,
                          topic: str, clock: _RequestClock, *,
                          vectors: bool):
        """Replica-aware fetch: retries, failover, hedging.

        Walks the live-replica chain in deterministic order; each
        replica gets the full retry budget, and each attempt may hedge
        to the next live replica. ``None`` means the whole replica set
        is unreachable for this request.
        """
        live = replica_set.live()
        for position, replica in enumerate(live):
            backup = (live[position + 1]
                      if self.hedge and position + 1 < len(live) else None)
            for attempt in range(1, self.max_retries + 2):
                try:
                    return self.channel.hedged_fetch(
                        replica, backup, landmark, topic, clock, attempt,
                        vectors=vectors)
                except ChannelError:
                    _obs.count("shard.retries_total")
                except ShardDownError:
                    break
            if position + 1 < len(live):
                _obs.count("shard.replica.failover_total")
        return None

    # ------------------------------------------------------------------
    def recommend(self, user: int, topic: str, top_n: int = 10, *,
                  allow_stale: bool = False,
                  depth: Optional[int] = None,
                  deadline_ms: Optional[float] = None,
                  ) -> RecommendationResponse:
        """Top-n suggestions via scatter-gather over the shards."""
        request = RecommendationRequest(
            user=user, topic=topic, top_n=top_n, allow_stale=allow_stale,
            depth=depth, deadline_ms=deadline_ms)
        return self.serve(request)

    def serve(self, request: RecommendationRequest) -> RecommendationResponse:
        """Execute one :class:`RecommendationRequest` end to end.

        The serving generation is captured once, here — everything the
        request touches (router, replicas, landmark lists) stays pinned
        to that epoch even if a rollover flips mid-request.

        Raises:
            StaleSnapshotError: epoch mismatch, no rollover in
                progress, and ``allow_stale`` unset.
            ShardDownError: every replica of the *home* shard is down.
            NodeNotFoundError: unknown user.
        """
        return self._serve_on(self._generation, request)

    def _serve_on(self, generation: _Generation,
                  request: RecommendationRequest) -> RecommendationResponse:
        self._check_epochs(generation, request.allow_stale)
        home_id = generation.router.route(
            generation.router.shard_of(request.user)).shard_id
        home_set = generation.replica_sets[home_id]
        home = home_set.primary()
        if home is None:
            raise ShardDownError(home_id)

        exploration_depth = (request.depth if request.depth is not None
                             else self.landmark_params.query_depth)
        budget = (request.deadline_ms if request.deadline_ms is not None
                  else self.deadline_ms)
        clock = _RequestClock(budget)
        down = self._down_shards(generation)
        degraded = bool(down)
        unreachable: Set[int] = set()
        hedges_before = self.channel.hedges_sent

        home.requests_total += 1
        home.queue_depth += 1
        _obs.count("shard.requests_total")
        _obs.gauge(f"shard.{home_id}.queue_depth", float(home.queue_depth))
        try:
            with _obs.span("shard.serve") as _sp:
                if _sp:
                    _sp.set(user=request.user, topic=request.topic,
                            home=home_id, shards=self.num_shards,
                            replica=home.replica_id,
                            epoch=generation.snapshot.epoch)
                state, stats = self._explore(
                    generation, request, home, exploration_depth, down)
                if self.query_engine == "sparse":
                    combined, cost_parts, degraded = self._compose_vectorized(
                        generation, request, state, home_id,
                        exploration_depth, clock, down, unreachable, degraded)
                else:
                    combined, cost_parts, degraded = self._compose(
                        generation, request, state, home_id,
                        exploration_depth, clock, down, unreachable, degraded)
                ranked = self._merge(generation, request, home, combined,
                                     down | unreachable)
                hedged = self.channel.hedges_sent > hedges_before
                if _sp:
                    _sp.set(degraded=degraded, returned=len(ranked),
                            elapsed_ms=clock.elapsed_ms, hedged=hedged)
        finally:
            home.queue_depth -= 1
            _obs.gauge(f"shard.{home_id}.queue_depth",
                       float(home.queue_depth))

        if degraded:
            _obs.count("shard.degraded_total")
        local, remote, shipped = cost_parts
        cost = QueryCost(propagation=stats, remote_landmarks=remote,
                         local_landmarks=local, entries_transferred=shipped)
        return response_from_pairs(
            request, ranked, engine="sharded",
            snapshot_epoch=generation.snapshot.epoch, degraded=degraded,
            cost=cost, served_epoch=generation.snapshot.epoch,
            hedged=hedged)

    # ------------------------------------------------------------------
    def _explore(self, generation: _Generation,
                 request: RecommendationRequest, home: ShardWorker,
                 exploration_depth: int, down: Set[int]):
        """Depth-k exploration from the home shard, landmark-absorbed.

        Down shards' nodes are added to the absorbing set: mass still
        *reaches* them (computing an edge only reads the sender's row)
        but the walk never expands from them, so no down-shard row is
        ever read.
        """
        absorbing = generation.landmark_set
        if down:
            lost: Set[int] = set()
            for shard_id in down:
                lost.update(
                    generation.replica_sets[shard_id].replicas[0].node_ids)
            absorbing = frozenset(absorbing | lost)
        with _obs.span("shard.explore") as _sp:
            state, stats = distributed_single_source_scores(
                generation.view, generation.assignment, request.user,
                [request.topic], self._similarity, authority=home.authority,
                params=self.params, max_depth=exploration_depth,
                absorbing=absorbing)
            if _sp:
                _sp.set(depth=exploration_depth,
                        supersteps=stats.supersteps,
                        remote_messages=stats.remote_messages)
        return state, stats

    def _compose(self, generation: _Generation,
                 request: RecommendationRequest, state, home_id: int,
                 exploration_depth: int, clock: _RequestClock,
                 down: Set[int], unreachable: Set[int], degraded: bool):
        """Proposition-4 composition, fetching remote lists as needed.

        Iterates landmarks in global sorted order — the exact float
        accumulation order of the single-machine recommender.
        """
        user, topic = request.user, request.topic
        combined: Dict[int, float] = dict(state.scores.get(topic, {}))
        local = remote = shipped = 0
        deadline_hit = False
        home_set = generation.replica_sets[home_id]
        with _obs.span("shard.compose") as _sp:
            for landmark in generation.sorted_landmarks:
                if landmark == user and exploration_depth > 0:
                    continue
                topo_ab = state.topo_alphabeta.get(landmark, 0.0)
                if topo_ab <= 0.0:
                    continue
                owner = generation.router.shard_of(landmark)
                if owner == home_id:
                    primary = home_set.primary()
                    assert primary is not None  # home checked in serve
                    entries = primary.landmark_entries(landmark, topic)
                    local += 1
                else:
                    if owner in down or owner in unreachable or deadline_hit:
                        degraded = True
                        continue
                    try:
                        entries = self._fetch_replicated(
                            generation.replica_sets[owner], landmark, topic,
                            clock, vectors=False)
                    except DeadlineExceededError:
                        _obs.count("shard.deadline_exceeded_total")
                        deadline_hit = True
                        degraded = True
                        continue
                    if entries is None:
                        unreachable.add(owner)
                        degraded = True
                        continue
                    remote += 1
                    shipped += len(entries)
                    _obs.count("shard.remote_fetches_total")
                sigma_to_landmark = state.score(landmark, topic)
                for entry in entries:
                    if entry.node == user:
                        continue
                    contribution = (sigma_to_landmark * entry.topo
                                    + topo_ab * entry.score)
                    if contribution:
                        combined[entry.node] = (
                            combined.get(entry.node, 0.0) + contribution)
            if _sp:
                _sp.set(local_landmarks=local, remote_landmarks=remote,
                        entries=shipped, candidates=len(combined))
        return combined, (local, remote, shipped), degraded

    def _compose_vectorized(self, generation: _Generation,
                            request: RecommendationRequest, state,
                            home_id: int, exploration_depth: int,
                            clock: _RequestClock, down: Set[int],
                            unreachable: Set[int], degraded: bool):
        """Vectorised :meth:`_compose` — bitwise-identical answers.

        The control flow (sorted-landmark order, down / unreachable /
        deadline handling, retry/failover/hedge accounting) is exactly
        the reference loop's; only the per-entry arithmetic moves into
        one concatenated scatter-add over the gathered landmark
        vectors.
        """
        user, topic = request.user, request.topic
        local = remote = shipped = 0
        deadline_hit = False
        home_set = generation.replica_sets[home_id]
        with _obs.span("shard.compose") as _sp:
            hits: List[Tuple[float, float, LandmarkVectors]] = []
            for landmark in generation.sorted_landmarks:
                if landmark == user and exploration_depth > 0:
                    continue
                topo_ab = state.topo_alphabeta.get(landmark, 0.0)
                if topo_ab <= 0.0:
                    continue
                owner = generation.router.shard_of(landmark)
                if owner == home_id:
                    primary = home_set.primary()
                    assert primary is not None  # home checked in serve
                    vectors = primary.landmark_vectors(landmark, topic)
                    local += 1
                else:
                    if owner in down or owner in unreachable or deadline_hit:
                        degraded = True
                        continue
                    try:
                        vectors = self._fetch_replicated(
                            generation.replica_sets[owner], landmark, topic,
                            clock, vectors=True)
                    except DeadlineExceededError:
                        _obs.count("shard.deadline_exceeded_total")
                        deadline_hit = True
                        degraded = True
                        continue
                    if vectors is None:
                        unreachable.add(owner)
                        degraded = True
                        continue
                    remote += 1
                    shipped += len(vectors)
                    _obs.count("shard.remote_fetches_total")
                hits.append((state.score(landmark, topic), topo_ab, vectors))
            combined = compose_landmark_contributions(
                generation.snapshot, state.scores.get(topic, {}), hits, user)
            if _sp:
                _sp.set(local_landmarks=local, remote_landmarks=remote,
                        entries=shipped, candidates=len(combined))
        return combined, (local, remote, shipped), degraded

    def _merge(self, generation: _Generation,
               request: RecommendationRequest, home: ShardWorker,
               combined: Dict[int, float],
               lost: Set[int]) -> List[Tuple[int, float]]:
        """Merge per-shard top-n partial rankings into the final top-n.

        Each healthy shard reduces its owned candidates to a local
        top-n; the gather side merges the partials. A candidate in the
        global top-n ranks at least as high among its own shard's
        candidates, so every global winner survives its shard's cut —
        the merged result equals the unsharded ranking bitwise.
        Candidates owned by down or unreachable shards have no shard to
        answer for them and drop out (the degraded path).
        """
        excluded = {request.user}
        excluded.update(home.out_neighbors(request.user))
        with _obs.span("shard.merge") as _sp:
            partials: Dict[int, TopK] = {}
            for node, value in combined.items():
                if node in excluded or value <= 0.0:
                    continue
                owner = generation.router.shard_of(node)
                if owner in lost:
                    continue
                per_shard = partials.get(owner)
                if per_shard is None:
                    per_shard = partials[owner] = TopK(request.top_n)
                per_shard.set(node, value)
            gathered: TopK = TopK(request.top_n)
            for owner in sorted(partials):
                for node, value in partials[owner].best():
                    gathered.set(node, value)
            ranked = gathered.best()
            if _sp:
                _sp.set(shards_answering=len(partials),
                        returned=len(ranked))
        return ranked
