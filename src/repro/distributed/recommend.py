"""Distributed landmark service with network-transfer accounting.

Ties the pieces together the way the paper's future-work paragraph
frames the problem: a query node evaluates recommendations "locally",
paying network transfer only for (a) propagation messages that cross
partitions and (b) inverted lists fetched from landmarks homed on other
partitions. Good partitioning + landmark placement should drive both
towards zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..api import (RecommendationRequest, RecommendationResponse,
                   response_from_pairs)
from ..config import LandmarkParams, ScoreParams
from ..core.scores import AuthorityIndex
from ..graph.labeled_graph import LabeledSocialGraph
from ..graph.snapshot import GraphLike, GraphSnapshot, as_snapshot
from ..landmarks.index import LandmarkIndex
from ..landmarks.query_engine import (LandmarkVectorCache, LandmarkVectors,
                                      compose_landmark_contributions,
                                      resolve_query_engine,
                                      vectors_from_entries)
from ..semantics.matrix import SimilarityMatrix
from .cluster import MessageStats, distributed_single_source_scores
from .partition import Assignment


@dataclass(frozen=True)
class QueryCost:
    """Network cost of one distributed recommendation query.

    Attributes:
        propagation: Message stats of the depth-limited exploration.
        remote_landmarks: Landmarks consulted on other partitions.
        local_landmarks: Landmarks consulted on the query's partition.
        entries_transferred: Inverted-list entries shipped from remote
            landmarks (each entry is a (node, score, topo) triple).
    """

    propagation: MessageStats
    remote_landmarks: int
    local_landmarks: int
    entries_transferred: int

    @property
    def total_remote_units(self) -> float:
        """One comparable scalar: messages + shipped entries."""
        return self.propagation.remote_messages + self.entries_transferred


class DistributedLandmarkService:
    """Approximate recommendation over a partitioned deployment.

    The ranking returned is identical to the single-machine
    :class:`~repro.landmarks.ApproximateRecommender` (same index, same
    composition); only the *cost model* differs, which is the point —
    partitioning strategy must not change answers, only traffic.
    """

    def __init__(
        self,
        graph: GraphLike,
        assignment: Assignment,
        similarity: SimilarityMatrix,
        index: LandmarkIndex,
        params: Optional[ScoreParams] = None,
        landmark_params: Optional[LandmarkParams] = None,
        authority: Optional[AuthorityIndex] = None,
        query_engine: str = "auto",
    ) -> None:
        self.graph = graph
        self.assignment = assignment
        self.index = index
        self.params = params if params is not None else index.params
        self.landmark_params = (landmark_params if landmark_params is not None
                                else index.landmark_params)
        self._similarity = similarity
        self._authority = (authority if authority is not None
                           else AuthorityIndex(graph))
        self._landmark_set = frozenset(index.landmarks)
        # Sorted composition order keeps float accumulation — and the
        # resulting tie-sensitive rankings — deterministic across
        # processes, matching ApproximateRecommender.
        self._sorted_landmarks = sorted(self._landmark_set)
        #: Composition engine ("dict" reference loop or "sparse"
        #: scatter-add); answers and cost accounting are identical.
        self.query_engine = resolve_query_engine(query_engine)
        self._vector_cache = LandmarkVectorCache()

    def landmark_home(self, landmark: int) -> int:
        """Partition that stores a landmark's inverted lists."""
        return self.assignment[landmark]

    def _vectors_for(self, view: GraphSnapshot, landmark: int,
                     topic: str) -> LandmarkVectors:
        """Cached array form of one landmark list, keyed by epoch+version."""
        version = self.index.version_of(landmark, topic)

        def build() -> LandmarkVectors:
            entries = self.index.recommendations(landmark, topic)
            return vectors_from_entries(view, entries, version)

        return self._vector_cache.get_or_build(
            view.epoch, landmark, topic, version, build)

    def scores_with_cost(self, user: int, topic: str,
                         depth: Optional[int] = None,
                         ) -> Tuple[Dict[int, float], QueryCost]:
        """Approximate scores plus the network cost of obtaining them.

        An explicit ``depth=0`` runs zero exploration rounds
        (landmark-list composition only), mirroring
        :meth:`repro.landmarks.ApproximateRecommender.query`.
        """
        exploration_depth = (depth if depth is not None
                             else self.landmark_params.query_depth)
        state, stats = distributed_single_source_scores(
            self.graph, self.assignment, user, [topic], self._similarity,
            authority=self._authority, params=self.params,
            max_depth=exploration_depth, absorbing=self._landmark_set)

        home = self.assignment[user]
        remote = 0
        local = 0
        entries_shipped = 0
        if self.query_engine == "sparse":
            view = as_snapshot(self.graph, allow_stale=True)
            hits: List[Tuple[float, float, LandmarkVectors]] = []
            for landmark in self._sorted_landmarks:
                if landmark == user and exploration_depth > 0:
                    continue
                topo_ab = state.topo_alphabeta.get(landmark, 0.0)
                if topo_ab <= 0.0:
                    continue
                vectors = self._vectors_for(view, landmark, topic)
                if self.landmark_home(landmark) == home:
                    local += 1
                else:
                    remote += 1
                    entries_shipped += len(vectors)
                hits.append((state.score(landmark, topic), topo_ab, vectors))
            combined = compose_landmark_contributions(
                view, state.scores.get(topic, {}), hits, user)
        else:
            combined = dict(state.scores.get(topic, {}))
            for landmark in self._sorted_landmarks:
                if landmark == user and exploration_depth > 0:
                    continue
                topo_ab = state.topo_alphabeta.get(landmark, 0.0)
                if topo_ab <= 0.0:
                    continue
                entries = self.index.recommendations(landmark, topic)
                if self.landmark_home(landmark) == home:
                    local += 1
                else:
                    remote += 1
                    entries_shipped += len(entries)
                sigma_to_landmark = state.score(landmark, topic)
                for entry in entries:
                    if entry.node == user:
                        continue
                    contribution = (sigma_to_landmark * entry.topo
                                    + topo_ab * entry.score)
                    if contribution:
                        combined[entry.node] = (
                            combined.get(entry.node, 0.0) + contribution)
        cost = QueryCost(
            propagation=stats,
            remote_landmarks=remote,
            local_landmarks=local,
            entries_transferred=entries_shipped,
        )
        return combined, cost

    def recommend(self, user: int, topic: str, top_n: int = 10, *,
                  allow_stale: bool = False,
                  depth: Optional[int] = None) -> RecommendationResponse:
        """Top-n recommendations with network cost on ``response.cost``.

        Implements the :class:`repro.api.Recommender` protocol —
        callers read ``response.pairs()`` and ``response.cost``; raw
        scores remain available on :meth:`scores_with_cost`.
        """
        view = as_snapshot(self.graph, allow_stale)
        scores, cost = self.scores_with_cost(user, topic, depth=depth)
        excluded = {user} | set(view.out_neighbors(user))
        ranked = [(node, value) for node, value in scores.items()
                  if node not in excluded and value > 0.0]
        ranked.sort(key=lambda kv: (-kv[1], kv[0]))
        request = RecommendationRequest(
            user=user, topic=topic, top_n=top_n, allow_stale=allow_stale,
            depth=depth)
        return response_from_pairs(
            request, ranked[:top_n], engine="distributed",
            snapshot_epoch=view.epoch, cost=cost)
