"""Graph partitioners and partition-quality metrics.

Three strategies, matching the trade-offs the paper's future-work
paragraph names ("split the graph by taking into account
connectivity"):

- :func:`hash_partition` — the baseline every distributed system can
  do: balanced, connectivity-oblivious;
- :func:`range_partition` — contiguous slices of the snapshot's dense
  node index: balanced, and shard membership is one integer division,
  so a router needs no lookup table;
- :func:`greedy_partition` — Linear Deterministic Greedy (Stanton &
  Kliot): stream nodes, place each where it has the most neighbours,
  damped by a capacity penalty. Connectivity-aware, one pass;
- :func:`topic_partition` — exploit the labeled graph: co-locate
  accounts publishing on the same topics, since recommendation paths
  are topically homophilous.

Every partitioner reads one frozen :class:`~repro.graph.snapshot.GraphSnapshot`
(resolved from a live graph on entry), so an assignment is always
consistent with a single epoch even if the graph mutates concurrently.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List

from ..errors import ConfigurationError
from ..graph.snapshot import GraphLike, GraphSnapshot, as_snapshot
from ..graph.traversal import bfs_levels
from ..utils.rng import SeedLike, rng_from_seed

Assignment = Dict[int, int]


def _check_parts(snapshot: GraphSnapshot, num_parts: int) -> None:
    if num_parts < 1:
        raise ConfigurationError(f"num_parts must be >= 1, got {num_parts}")
    if snapshot.num_nodes == 0:
        raise ConfigurationError("cannot partition an empty graph")


def hash_partition(graph: GraphLike, num_parts: int) -> Assignment:
    """Node id modulo *num_parts* — balanced, cut-oblivious."""
    view = as_snapshot(graph, allow_stale=True)
    _check_parts(view, num_parts)
    return {node: node % num_parts for node in view.nodes()}


def range_partition(graph: GraphLike, num_parts: int) -> Assignment:
    """Contiguous ranges of the snapshot's dense node index.

    Node at snapshot position ``i`` (of ``n``) goes to partition
    ``min(i * num_parts // n, num_parts - 1)`` — balanced to within one
    node, and a router can locate any account from ``(position, n)``
    alone. This is the sharding scheme the roadmap earmarks for a
    distributed serving tier: each shard owns one contiguous slice of
    every snapshot array.

    Edge case: when ``num_parts > num_nodes``, exactly
    ``num_parts − num_nodes`` partitions receive *no* nodes (they are
    spread through the range, not necessarily trailing). The assignment
    is still valid (every node lands on a non-empty shard, and the
    division above never routes a real position to an empty one), but
    serving tiers must not treat empty shards as routable —
    :class:`~repro.distributed.sharded.ShardRouter` raises
    :class:`~repro.errors.ConfigurationError` if asked to route to one.
    """
    view = as_snapshot(graph, allow_stale=True)
    _check_parts(view, num_parts)
    n = view.num_nodes
    return {
        node: min(position * num_parts // n, num_parts - 1)
        for position, node in enumerate(view.node_ids)
    }


def greedy_partition(graph: GraphLike, num_parts: int,
                     seed: SeedLike = None) -> Assignment:
    """Linear Deterministic Greedy streaming partitioner.

    Nodes are streamed in randomized BFS order (so neighbourhoods
    arrive together); each node goes to the partition maximising
    ``|neighbours already there| · (1 − size/capacity)``.
    """
    view = as_snapshot(graph, allow_stale=True)
    _check_parts(view, num_parts)
    rng = rng_from_seed(seed)
    nodes = list(view.node_ids)
    capacity = max(1.0, 1.1 * len(nodes) / num_parts)

    # randomized BFS order over weak connectivity
    order: List[int] = []
    visited = set()
    shuffled = list(nodes)
    rng.shuffle(shuffled)
    for start in shuffled:
        if start in visited:
            continue
        for node in bfs_levels(view, start, direction="out"):
            if node not in visited:
                visited.add(node)
                order.append(node)
        # also pull in pure-follower neighbourhoods
        for node in bfs_levels(view, start, direction="in"):
            if node not in visited:
                visited.add(node)
                order.append(node)

    assignment: Assignment = {}
    sizes = [0] * num_parts
    for node in order:
        neighbour_counts = [0.0] * num_parts
        for neighbor in view.out_neighbors(node):
            part = assignment.get(neighbor)
            if part is not None:
                neighbour_counts[part] += 1.0
        for neighbor in view.in_neighbors(node):
            part = assignment.get(neighbor)
            if part is not None:
                neighbour_counts[part] += 1.0
        best_part = 0
        best_score = float("-inf")
        for part in range(num_parts):
            penalty = 1.0 - sizes[part] / capacity
            score = neighbour_counts[part] * max(0.0, penalty)
            # tie-break towards the emptiest partition
            if score > best_score or (
                    score == best_score and sizes[part] < sizes[best_part]):
                best_score = score
                best_part = part
        assignment[node] = best_part
        sizes[best_part] += 1
    return assignment


def topic_partition(graph: GraphLike, num_parts: int,
                    slack: float = 1.15) -> Assignment:
    """Co-locate accounts by dominant publisher topic.

    Topic groups are bin-packed onto partitions largest-first. A group
    bigger than one partition's capacity (the Zipf head topic usually
    is) is split across the smallest partitions, so balance stays
    within *slack* of ideal while same-topic accounts remain as
    co-located as capacity allows.
    """
    view = as_snapshot(graph, allow_stale=True)
    _check_parts(view, num_parts)
    dominant: Dict[int, str] = {}
    for node in view.nodes():
        profile = sorted(view.node_topics(node))
        if profile:
            # most-followed-on topic first, profile order as tie-break
            dominant[node] = max(
                profile,
                key=lambda t: (view.follower_count_on(node, t), t))

    groups: Dict[str, List[int]] = {}
    for node in sorted(view.nodes()):
        groups.setdefault(dominant.get(node, ""), []).append(node)

    capacity = max(1.0, slack * view.num_nodes / num_parts)
    sizes = [0] * num_parts
    assignment: Assignment = {}
    ordered_groups = sorted(groups.items(),
                            key=lambda kv: (-len(kv[1]), kv[0]))
    for _, members in ordered_groups:
        cursor = 0
        while cursor < len(members):
            smallest = min(range(num_parts), key=lambda p: sizes[p])
            room = max(1, int(capacity - sizes[smallest]))
            chunk = members[cursor:cursor + room]
            for node in chunk:
                assignment[node] = smallest
            sizes[smallest] += len(chunk)
            cursor += len(chunk)
    return assignment


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------

def edge_cut_fraction(graph: GraphLike,
                      assignment: Assignment) -> float:
    """Fraction of edges whose endpoints live on different partitions."""
    view = as_snapshot(graph, allow_stale=True)
    if view.num_edges == 0:
        return 0.0
    cut = sum(1 for source, target, _ in view.edges()
              if assignment[source] != assignment[target])
    return cut / view.num_edges


def balance(assignment: Assignment) -> float:
    """Largest partition size over the ideal size (1.0 = perfect)."""
    if not assignment:
        return 1.0
    sizes = Counter(assignment.values())
    num_parts = max(assignment.values()) + 1
    ideal = len(assignment) / num_parts
    return max(sizes.values()) / ideal


@dataclass(frozen=True)
class PartitionMetrics:
    """Quality summary of one partitioning."""

    num_parts: int
    edge_cut: float
    balance: float


def partition_metrics(graph: GraphLike,
                      assignment: Assignment) -> PartitionMetrics:
    """Compute both quality metrics in one call."""
    num_parts = max(assignment.values()) + 1 if assignment else 0
    return PartitionMetrics(
        num_parts=num_parts,
        edge_cut=edge_cut_fraction(graph, assignment),
        balance=balance(assignment),
    )
