"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch a single base class at API
boundaries while tests can assert on precise subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):  # repro: ignore[W4] -- hierarchy anchor: the documented catch-point for every graph-substrate error
    """Base class for errors raised by the graph substrate."""


class NodeNotFoundError(GraphError, KeyError):
    """A node id was referenced that does not exist in the graph."""

    def __init__(self, node: int) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError, KeyError):
    """An edge (source, target) was referenced that does not exist."""

    def __init__(self, source: int, target: int) -> None:
        super().__init__(f"edge ({source!r} -> {target!r}) is not in the graph")
        self.source = source
        self.target = target


class DuplicateNodeError(GraphError, ValueError):
    """A node id was added twice."""

    def __init__(self, node: int) -> None:
        super().__init__(f"node {node!r} already exists")
        self.node = node


class StaleSnapshotError(GraphError):
    """A scorer was asked to read a snapshot older than its graph.

    Raised by the snapshot-backed read path when the source graph's
    epoch has advanced past the snapshot's epoch — silently serving
    pre-mutation scores is worse than failing. Pass ``allow_stale=True``
    (eval replays, deliberately lagged serving) to read anyway; stale
    reads are then counted in ``graph.stale_reads_total``.
    """

    def __init__(self, snapshot_epoch: int, graph_epoch: int) -> None:
        super().__init__(
            f"snapshot at epoch {snapshot_epoch} is stale: the graph is at "
            f"epoch {graph_epoch}; rebuild via graph.snapshot() or pass "
            f"allow_stale=True to read anyway")
        self.snapshot_epoch = snapshot_epoch
        self.graph_epoch = graph_epoch


class ShardError(ReproError):  # repro: ignore[W4] -- hierarchy anchor: the documented catch-point for every sharded-tier error
    """Base class for errors raised by the sharded serving tier."""


class ShardDownError(ShardError):
    """A request was routed to a shard that is marked down.

    Raised when the *home* shard of a request is unavailable — with no
    home shard there is nothing to degrade to. A *remote* shard being
    down degrades the response instead (``degraded=True``).
    """

    def __init__(self, shard_id: int) -> None:
        super().__init__(
            f"shard {shard_id} is down; the request cannot be served "
            f"(home-shard outage has no degraded fallback)")
        self.shard_id = shard_id


class ChannelError(ShardError):
    """One simulated cross-shard fetch failed (timeout/drop).

    Transient by design: callers retry up to the platform's retry
    budget before declaring the target shard unreachable for the
    remainder of the request.
    """

    def __init__(self, shard_id: int, attempt: int) -> None:
        super().__init__(
            f"fetch from shard {shard_id} failed (attempt {attempt})")
        self.shard_id = shard_id
        self.attempt = attempt


class DeadlineExceededError(ShardError):
    """A request's simulated latency budget ran out mid-flight."""

    def __init__(self, deadline_ms: float, elapsed_ms: float) -> None:
        super().__init__(
            f"request deadline of {deadline_ms:g}ms exceeded after "
            f"{elapsed_ms:g}ms of simulated channel latency")
        self.deadline_ms = deadline_ms
        self.elapsed_ms = elapsed_ms


class TaxonomyError(ReproError):
    """Base class for topic-taxonomy errors."""


class UnknownTopicError(TaxonomyError, KeyError):
    """A topic was referenced that is not part of the vocabulary."""

    def __init__(self, topic: str) -> None:
        super().__init__(f"unknown topic {topic!r}")
        self.topic = topic


class ConvergenceError(ReproError):
    """Iterative score computation failed to converge.

    Raised when the decay factor violates the spectral-radius bound of
    Proposition 3, or when ``max_iter`` is exhausted while the residual
    is still above tolerance.
    """

    def __init__(self, message: str, iterations: int | None = None,
                 residual: float | None = None) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class ConfigurationError(ReproError, ValueError):
    """Invalid parameter combination passed to a public constructor."""


class StorageError(ReproError):
    """Base class for on-disk store errors (landmark lists, snapshots)."""


class CorruptRecordError(StorageError):
    """A stored posting list failed checksum or bounds validation."""


class SnapshotFormatError(StorageError):
    """An on-disk snapshot directory failed format validation.

    Raised by :func:`repro.graph.io.open_snapshot` when the header is
    missing or unparsable, declares an unknown format/version or dtype,
    disagrees with the array files on disk (size or checksum mismatch),
    or references an array file that does not exist.
    """

    def __init__(self, path: object, reason: str) -> None:
        super().__init__(f"snapshot at {path}: {reason}")
        self.path = path
        self.reason = reason


class EvaluationError(ReproError):
    """Base class for evaluation-harness errors."""


class ProtocolError(EvaluationError, ValueError):
    """The link-prediction protocol could not be instantiated.

    For example: the graph has no edge satisfying the ``k_in``/``k_out``
    degree constraints of Section 5.3.
    """
