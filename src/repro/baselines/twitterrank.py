"""TwitterRank (Weng et al., WSDM 2010) — from scratch.

A topic-sensitive PageRank over the follow graph: for each topic ``t``
a random surfer walks from followers to followees, transition
probabilities weighted by how much the followee publishes and by the
topical similarity of the two accounts; teleportation goes to the
per-topic interest distribution.

Differences from the original, forced by the substrate and matching how
the reproduced paper used it:

- the original derives per-user topic distributions with LDA over
  tweets; we take the topic-interest matrix as input (the dataset
  generators and the labeling pipeline both produce one) and default to
  a uniform distribution over each node's publisher profile;
- per-user tweet counts default to 1 when the corpus is not supplied.

TwitterRank is *global per topic* — the ranking does not depend on the
query user — which is exactly the behaviour the reproduced paper
exploits when explaining Figures 8–9 (TwitterRank follows popularity).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..api import (RecommendationRequest, RecommendationResponse,
                   response_from_pairs)
from ..errors import ConfigurationError
from ..graph.snapshot import GraphLike, as_snapshot

TopicInterest = Mapping[int, Mapping[str, float]]


def default_topic_interest(graph: GraphLike,
                           smoothing: float = 0.3,
                           ) -> Dict[int, Dict[str, float]]:
    """Smoothed interest distribution over each node's profile.

    LDA — what the original TwitterRank runs over tweets — assigns
    every user a *dense* distribution with some mass on every topic.
    We emulate that: a share ``1 − smoothing`` concentrated uniformly
    on the node's publisher profile, plus ``smoothing`` spread over the
    whole vocabulary. Nodes with an empty profile get the uniform
    background only.
    """
    view = as_snapshot(graph, allow_stale=True)
    vocabulary = sorted(view.topics())
    background = smoothing / len(vocabulary) if vocabulary else 0.0
    interest: Dict[int, Dict[str, float]] = {}
    for node in view.nodes():
        distribution = {topic: background for topic in vocabulary}
        profile = view.node_topics(node)
        if profile:
            share = (1.0 - smoothing) / len(profile)
            for topic in profile:
                distribution[topic] = distribution.get(topic, 0.0) + share
        interest[node] = distribution
    return interest


class TwitterRank:
    """Topic-sensitive influence ranking.

    Args:
        graph: The follow graph (edge u→v means u follows v), or a
            prebuilt :class:`~repro.graph.snapshot.GraphSnapshot`. A
            snapshot is pinned at construction; after mutating a live
            graph call :meth:`invalidate` to re-pin.
        topic_interest: Row-stochastic-ish per-node topic distributions
            ``DT'`` (rows are normalised internally).
        tweet_counts: Per-node publication volume ``|T_j|`` (default 1).
        gamma: Damping factor (0.85 in the original paper).
        tolerance: L1 convergence threshold per topic.
        max_iter: Iteration cap.
        allow_stale: Keep ranking on the pinned snapshot after the
            graph mutates instead of raising ``StaleSnapshotError``.
    """

    def __init__(
        self,
        graph: GraphLike,
        topic_interest: Optional[TopicInterest] = None,
        tweet_counts: Optional[Mapping[int, int]] = None,
        gamma: float = 0.85,
        tolerance: float = 1e-10,
        max_iter: int = 100,
        allow_stale: bool = False,
    ) -> None:
        if not 0.0 < gamma < 1.0:
            raise ConfigurationError(f"gamma must be in (0, 1), got {gamma}")
        self.graph = graph
        self.gamma = gamma
        self.tolerance = tolerance
        self.max_iter = max_iter
        self.allow_stale = allow_stale
        self._view = as_snapshot(graph, allow_stale)
        self._supplied_interest = (dict(topic_interest)
                                   if topic_interest is not None else None)
        self._tweets = dict(tweet_counts) if tweet_counts else {}
        self._rank_cache: Dict[str, Dict[int, float]] = {}
        self._bind_interest()

    def _bind_interest(self) -> None:
        raw_interest = (self._supplied_interest
                        if self._supplied_interest is not None
                        else default_topic_interest(self._view))
        self._interest = {
            node: self._normalise(dict(raw_interest.get(node, {})))
            for node in self._view.nodes()
        }

    @staticmethod
    def _normalise(distribution: Dict[str, float]) -> Dict[str, float]:
        total = math.fsum(distribution.values())
        if total <= 0.0:
            return {}
        return {topic: value / total for topic, value in distribution.items()}

    def _tweet_count(self, node: int) -> float:
        return float(self._tweets.get(node, 1))

    def _topical_similarity(self, follower: int, followee: int,
                            topic: str) -> float:
        """``sim_t(i, j) = 1 − |DT'_it − DT'_jt|`` from the original paper."""
        own = self._interest[follower].get(topic, 0.0)
        theirs = self._interest[followee].get(topic, 0.0)
        return 1.0 - abs(own - theirs)

    def _teleport_distribution(self, topic: str) -> Dict[int, float]:
        """``E_t``: interest-in-*topic* mass per node, normalised."""
        raw = {
            node: self._interest[node].get(topic, 0.0)
            for node in self._view.nodes()
        }
        total = math.fsum(raw.values())
        if total <= 0.0:
            # Nobody is interested in the topic: fall back to uniform,
            # like standard PageRank on an empty personalisation vector.
            n = self._view.num_nodes
            return {node: 1.0 / n for node in raw}
        return {node: value / total for node, value in raw.items()}

    def rank(self, topic: str,
             allow_stale: Optional[bool] = None) -> Dict[int, float]:
        """The stationary TwitterRank vector ``TR_t`` for *topic*.

        Args:
            topic: The topic to rank on.
            allow_stale: Per-call staleness override (``None`` defers
                to the constructor flag).
        """
        self._view.ensure_fresh(bool(allow_stale) or self.allow_stale)
        cached = self._rank_cache.get(topic)
        if cached is not None:
            return cached
        teleport = self._teleport_distribution(topic)
        # Pre-build per-follower transition rows (sparse).
        transitions: Dict[int, List[Tuple[int, float]]] = {}
        for follower in self._view.nodes():
            row = []
            for followee in self._view.out_neighbors(follower):
                weight = (self._tweet_count(followee)
                          * self._topical_similarity(follower, followee, topic))
                if weight > 0.0:
                    row.append((followee, weight))
            total = sum(weight for _, weight in row)
            if total > 0.0:
                transitions[follower] = [
                    (followee, weight / total) for followee, weight in row]
        scores = dict(teleport)
        for _ in range(self.max_iter):
            incoming: Dict[int, float] = {}
            dangling_mass = 0.0
            for node, mass in sorted(scores.items()):
                row = transitions.get(node)
                if row is None:
                    dangling_mass += mass
                    continue
                for followee, probability in row:
                    incoming[followee] = (
                        incoming.get(followee, 0.0) + mass * probability)
            updated: Dict[int, float] = {}
            drift = 0.0
            for node, teleport_mass in sorted(teleport.items()):
                value = (self.gamma * (incoming.get(node, 0.0)
                                       + dangling_mass * teleport_mass)
                         + (1.0 - self.gamma) * teleport_mass)
                updated[node] = value
                drift += abs(value - scores.get(node, 0.0))
            scores = updated
            if drift < self.tolerance:
                break
        self._rank_cache[topic] = scores
        return scores

    # ------------------------------------------------------------------
    def score(self, user: int, candidate: int, topic: str) -> float:
        """Score of *candidate* for *user* on *topic*.

        The *user* argument only filters nothing here — TwitterRank is
        global — but the signature matches the other recommenders so
        the evaluation harness can treat all methods uniformly.
        """
        return self.rank(topic).get(candidate, 0.0)

    def aggregate_rank(self, weights: Mapping[str, float]) -> Dict[int, float]:
        """Weighted aggregation ``TR = Σ_t r_t · TR_t`` over topics."""
        combined: Dict[int, float] = {}
        for topic, weight in sorted(weights.items()):
            if weight <= 0.0:
                continue
            for node, value in sorted(self.rank(topic).items()):
                combined[node] = combined.get(node, 0.0) + weight * value
        return combined

    def recommend(self, user: int, topic: str, top_n: int = 10, *,
                  allow_stale: bool = False,
                  exclude_followed: bool = True,
                  candidates: Optional[Iterable[int]] = None,
                  ) -> RecommendationResponse:
        """Top-n accounts by ``TR_t``, excluding the user's followees.

        Implements the :class:`repro.api.Recommender` protocol.
        """
        excluded = {user}
        if exclude_followed:
            excluded.update(self._view.out_neighbors(user))
        pool = set(candidates) if candidates is not None else None
        ranking = [
            (node, value)
            for node, value in self.rank(topic, allow_stale=allow_stale).items()
            if node not in excluded and (pool is None or node in pool)
        ]
        ranking.sort(key=lambda kv: (-kv[1], kv[0]))
        request = RecommendationRequest(
            user=user, topic=topic, top_n=top_n, allow_stale=allow_stale)
        return response_from_pairs(
            request, ranking[:top_n], engine="twitterrank",
            snapshot_epoch=self._view.epoch)

    def invalidate(self) -> None:
        """Re-pin the snapshot and drop cached rankings after a mutation."""
        self._view = as_snapshot(self.graph, allow_stale=True)
        self._rank_cache.clear()
        self._bind_interest()
