"""WTF-style SALSA recommender (Gupta et al., WWW 2013).

The paper's related work (§2) describes Twitter's production
Who-to-Follow service: build the user's *circle of trust* with an
egocentric random walk, form the bipartite graph between that circle
(hubs) and the accounts it follows (authorities), and run SALSA
(Lempel & Moran) on it; the top authorities are the recommendations.

Implemented from scratch on the same substrate as everything else:

- the circle of trust is the top-k nodes by approximate personalised
  PageRank (power iteration with restart, the egocentric walk's
  stationary distribution);
- SALSA alternates the normalised bipartite updates
  ``authority ← colsum-normalised hub mass``,
  ``hub ← rowsum-normalised authority mass``;
- accounts already followed (and the user) are excluded from the
  final ranking, as in the production system.

Unlike TwitterRank this baseline *is* personalised; unlike Tr it is
purely structural (labels are ignored), which makes it a useful third
corner in comparative experiments.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple, Union

from ..api import (RecommendationRequest, RecommendationResponse,
                   response_from_pairs)
from ..errors import ConfigurationError, NodeNotFoundError
from ..graph.snapshot import GraphLike, as_snapshot


class SalsaRecommender:
    """Circle-of-trust + bipartite SALSA user recommendation.

    Args:
        graph: The follow graph (or a prebuilt snapshot). SALSA keeps
            no per-graph caches, so each call resolves a fresh snapshot
            from a live graph — there is nothing to ``invalidate``.
        circle_size: Hubs kept from the egocentric walk (production
            uses ~500; scale down with the graph).
        restart: Restart probability of the personalised walk.
        walk_iterations: Power-iteration steps for the walk.
        salsa_iterations: SALSA alternation steps.
        allow_stale: When *graph* is a snapshot, keep serving it after
            the underlying graph mutates.
    """

    def __init__(self, graph: GraphLike, circle_size: int = 50,
                 restart: float = 0.15, walk_iterations: int = 20,
                 salsa_iterations: int = 20,
                 allow_stale: bool = False) -> None:
        if circle_size < 1:
            raise ConfigurationError(
                f"circle_size must be >= 1, got {circle_size}")
        if not 0.0 < restart < 1.0:
            raise ConfigurationError(
                f"restart must be in (0, 1), got {restart}")
        self.graph = graph
        self.circle_size = circle_size
        self.restart = restart
        self.walk_iterations = walk_iterations
        self.salsa_iterations = salsa_iterations
        self.allow_stale = allow_stale

    def _resolve(self, allow_stale: Optional[bool] = None):
        return as_snapshot(self.graph, bool(allow_stale) or self.allow_stale)

    # ------------------------------------------------------------------
    def circle_of_trust(self, user: int, *,
                        allow_stale: Optional[bool] = None) -> List[int]:
        """Top-k accounts by egocentric (restarting) random walk.

        The walk follows out-edges (who the user reads); the user is
        included implicitly as a hub but never recommended.
        """
        view = self._resolve(allow_stale)
        if user not in view:
            raise NodeNotFoundError(user)
        mass: Dict[int, float] = {user: 1.0}
        for _ in range(self.walk_iterations):
            spread: Dict[int, float] = {}
            for node, value in sorted(mass.items()):
                followees = view.out_neighbors(node)
                if not followees:
                    spread[user] = spread.get(user, 0.0) + value
                    continue
                share = value / len(followees)
                for followee in followees:
                    spread[followee] = spread.get(followee, 0.0) + share
            mass = {user: self.restart}
            damp = 1.0 - self.restart
            for node, value in sorted(spread.items()):
                mass[node] = mass.get(node, 0.0) + damp * value
        ranked = sorted(
            ((node, value) for node, value in mass.items() if node != user),
            key=lambda kv: (-kv[1], kv[0]))
        circle = [node for node, _ in ranked[: self.circle_size]]
        return [user] + circle

    # ------------------------------------------------------------------
    def recommend(self, user: int, topic: str,
                  top_n: int = 10, *, allow_stale: bool = False,
                  exclude_followed: bool = True,
                  candidates: Optional[List[int]] = None,
                  ) -> RecommendationResponse:
        """Top-n authorities of the user's egocentric SALSA.

        Implements the :class:`repro.api.Recommender` protocol. SALSA is
        purely structural, so *topic* is accepted for interface
        uniformity and ignored; it is still recorded on the request.
        """
        ranked = self._ranked_pairs(
            user, top_n, allow_stale=allow_stale,
            exclude_followed=exclude_followed, candidates=candidates)
        request = RecommendationRequest(
            user=user, topic=topic, top_n=top_n, allow_stale=allow_stale)
        return response_from_pairs(
            request, ranked, engine="salsa",
            snapshot_epoch=self._resolve(allow_stale).epoch)

    def _ranked_pairs(self, user: int, top_n: int, *,
                      allow_stale: bool = False,
                      exclude_followed: bool = True,
                      candidates: Optional[List[int]] = None,
                      ) -> List[Tuple[int, float]]:
        scores = self.scores(user, allow_stale=allow_stale)
        excluded: Set[int] = {user}
        if exclude_followed:
            excluded.update(self._resolve(allow_stale).out_neighbors(user))
        pool = set(candidates) if candidates is not None else None
        ranked = [
            (node, value) for node, value in scores.items()
            if node not in excluded and (pool is None or node in pool)
        ]
        ranked.sort(key=lambda kv: (-kv[1], kv[0]))
        return ranked[:top_n]

    def scores(self, user: int, *,
               allow_stale: Optional[bool] = None) -> Dict[int, float]:
        """Authority-side SALSA scores over the egocentric bipartite
        graph (hubs = circle of trust, authorities = their followees)."""
        view = self._resolve(allow_stale)
        hubs = self.circle_of_trust(user, allow_stale=allow_stale)
        hub_set = set(hubs)
        # bipartite edges: hub -> followee
        edges: List[Tuple[int, int]] = []
        for hub in hubs:
            for followee in view.out_neighbors(hub):
                edges.append((hub, followee))
        if not edges:
            return {}
        hub_degree: Dict[int, int] = {}
        authority_degree: Dict[int, int] = {}
        for hub, authority in edges:
            hub_degree[hub] = hub_degree.get(hub, 0) + 1
            authority_degree[authority] = authority_degree.get(authority, 0) + 1

        hub_score: Dict[int, float] = {
            hub: 1.0 / len(hub_set) for hub in hub_set if hub in hub_degree}
        authority_score: Dict[int, float] = {}
        for _ in range(self.salsa_iterations):
            authority_score = {}
            for hub, authority in edges:
                contribution = hub_score.get(hub, 0.0) / hub_degree[hub]
                authority_score[authority] = (
                    authority_score.get(authority, 0.0) + contribution)
            hub_score = {}
            for hub, authority in edges:
                contribution = (authority_score[authority]
                                / authority_degree[authority])
                hub_score[hub] = hub_score.get(hub, 0.0) + contribution
        return authority_score
