"""Baseline recommenders: the paper's comparators (Section 5.2) and
the WTF/SALSA system its related work describes (Section 2)."""

from .twitterrank import TwitterRank
from .salsa import SalsaRecommender

__all__ = ["TwitterRank", "SalsaRecommender"]
