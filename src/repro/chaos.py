"""Seeded fault-injection suite for the replicated sharded tier.

The serving tier's resilience claims — failover keeps answers exact,
hedging absorbs slow replicas, rollover never surfaces
:class:`~repro.errors.StaleSnapshotError` — are only claims until
something actively breaks them. This module is that something: a
deterministic chaos harness that replays one scripted request stream
against a seeded world while injecting one failure mode, then verifies
the tier's three invariants:

1. **No stale errors** — zero ``StaleSnapshotError`` may reach a
   client, in any cell, rollover or not.
2. **Determinism** — the full response stream (rankings, degradation
   flags, served epochs) is bitwise-identical when the same seeded
   cell runs twice, and identical between the ``dict`` and ``sparse``
   query engines. A ranking digest (SHA-256 over the exact float
   reprs) makes "bitwise" checkable across processes.
3. **Redundancy pays** — with ``replicas >= 2`` a single injected
   replica failure must not degrade any response; with ``replicas=1``
   degradation is expected and must itself be deterministic.

The matrix CI runs (``.github/workflows/ci.yml`` · chaos-matrix) is
``{replicas: 1,2,3} x {failure: none, down-replica, slow-replica,
rollover-mid-stream, ingest-under-rollover}``; each cell writes a JSON
verdict artifact and a non-passing cell fails the job. The
``ingest-under-rollover`` cell drives live event ingestion
(:mod:`repro.ingest`) through overlay compactions whose rollovers are
deliberately left pending across request waves — proving a client can
never observe ``StaleSnapshotError`` no matter how writes interleave
with epoch flips. Run one cell locally with::

    PYTHONPATH=src python -m repro.chaos --replicas 2 \\
        --failure down-replica --json verdict.json

or the whole matrix with ``--all``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .api import IngestEvent
from .config import LandmarkParams, ScoreParams
from .datasets import generate_twitter_graph
from .distributed.sharded import ShardChannel, ShardedPlatform
from .dynamics import GraphStream, simulate_churn
from .errors import ConfigurationError, StaleSnapshotError
from .ingest import CompactionPolicy, IngestPipeline
from .landmarks import ApproximateRecommender, LandmarkIndex, select_landmarks
from .semantics import SimilarityMatrix, web_taxonomy

__all__ = [
    "FAILURES",
    "CellSpec",
    "CellVerdict",
    "run_cell",
    "run_matrix",
    "render_markdown",
    "main",
]

#: The injectable failure modes, in matrix order.
FAILURES = ("none", "down-replica", "slow-replica", "rollover-mid-stream",
            "ingest-under-rollover")

_TOPIC = "technology"
_PARAMS = ScoreParams(beta=0.004)
#: The shard whose replica 0 every failure mode targets. Shard 2 of 3
#: is never the scripted users' home shard (low-id users route to
#: shard 0), so down-replica cells degrade remotely instead of
#: hard-failing the home shard.
_TARGET_SHARD = 2


@dataclass(frozen=True)
class CellSpec:
    """One chaos-matrix cell: a replication factor, a failure, a seed."""

    replicas: int
    failure: str
    seed: int = 7

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ConfigurationError(
                f"replicas must be >= 1, got {self.replicas}")
        if self.failure not in FAILURES:
            raise ConfigurationError(
                f"unknown failure {self.failure!r}; "
                f"expected one of {sorted(FAILURES)}")

    @property
    def name(self) -> str:
        """Stable cell identifier (artifact/file naming)."""
        return f"r{self.replicas}-{self.failure}-seed{self.seed}"


@dataclass
class CellVerdict:
    """What one cell observed, plus the pass/fail verdict."""

    spec: CellSpec
    digest: str
    deterministic: bool
    engines_agree: bool
    stale_errors: int
    responses: int
    degraded_responses: int
    hedges_sent: int
    hedges_won: int
    parity_ok: bool
    passed: bool
    reasons: List[str]

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable verdict (the CI artifact shape)."""
        return {
            "cell": self.spec.name,
            "replicas": self.spec.replicas,
            "failure": self.spec.failure,
            "seed": self.spec.seed,
            "digest": self.digest,
            "deterministic": self.deterministic,
            "engines_agree": self.engines_agree,
            "stale_errors": self.stale_errors,
            "responses": self.responses,
            "degraded_responses": self.degraded_responses,
            "hedges_sent": self.hedges_sent,
            "hedges_won": self.hedges_won,
            "parity_ok": self.parity_ok,
            "passed": self.passed,
            "reasons": self.reasons,
        }


@dataclass
class _StreamResult:
    """One scripted run: the transcript and what it observed."""

    transcript: List[object]
    stale_errors: int
    degraded: int
    hedges_sent: int
    hedges_won: int
    final_pairs: List[List[tuple]]
    final_index: LandmarkIndex
    final_graph: object


def _digest(transcript: Sequence[object]) -> str:
    """SHA-256 over the exact reprs — float-bit-level comparison."""
    return hashlib.sha256(repr(list(transcript)).encode()).hexdigest()


def _run_stream(spec: CellSpec, engine: str) -> _StreamResult:
    """Execute the scripted request stream for one cell, once.

    The script is fixed per failure mode and fully seeded: world
    generation, landmark selection, channel RNG, and churn events all
    derive from ``spec.seed``, so two invocations replay byte-identical
    simulated histories.
    """
    graph = generate_twitter_graph(160, seed=spec.seed)
    similarity = SimilarityMatrix.from_taxonomy(web_taxonomy())
    landmarks = select_landmarks(graph, "In-Deg", 10, rng=spec.seed)
    index = LandmarkIndex.build(
        graph, landmarks, [_TOPIC], similarity, params=_PARAMS,
        landmark_params=LandmarkParams(num_landmarks=10, top_n=60))
    platform = ShardedPlatform.build(
        graph, similarity, index, 3, replicas=spec.replicas,
        params=_PARAMS, deadline_ms=10_000.0, query_engine=engine,
        channel=ShardChannel(seed=spec.seed))
    users = [n for n in sorted(graph.nodes())
             if graph.out_degree(n) >= 3
             and n not in set(index.landmarks)][:5]

    transcript: List[object] = []
    stale_errors = 0
    degraded = 0
    final_pairs: List[List[tuple]] = []
    # What the closing wave's answers are checked against: the live
    # graph, unless the ingest cell replaces it with the final
    # compacted base (the live graph is never mutated there).
    final_graph: object = graph

    def wave(tag: str, record_final: bool = False) -> None:
        nonlocal stale_errors, degraded
        for user in users:
            try:
                response = platform.recommend(user, _TOPIC, top_n=10)
            except StaleSnapshotError:
                stale_errors += 1
                transcript.append((tag, user, "stale-error"))
                continue
            degraded += int(response.degraded)
            pairs = response.pairs()
            transcript.append((tag, user, pairs, response.degraded,
                               response.served_epoch))
            if record_final:
                final_pairs.append(pairs)

    wave("healthy")
    if spec.failure == "none":
        wave("steady", record_final=True)
    elif spec.failure == "down-replica":
        platform.mark_down(_TARGET_SHARD,
                           replica=0 if spec.replicas > 1 else None)
        wave("one-replica-down")
        platform.mark_up(_TARGET_SHARD,
                         replica=0 if spec.replicas > 1 else None)
        wave("recovered", record_final=True)
    elif spec.failure == "slow-replica":
        wave("warmup")  # latency history for the hedge threshold
        platform.channel.set_replica_latency(_TARGET_SHARD, 0, 250.0)
        wave("primary-slow")
        platform.channel.clear_replica_latency(_TARGET_SHARD, 0)
        wave("recovered", record_final=True)
    elif spec.failure == "rollover-mid-stream":
        stream = GraphStream(graph)
        stream.apply_all(simulate_churn(graph, 15, seed=spec.seed))
        rollover = platform.begin_rollover()
        wave("rollover-pending")  # old epoch drains, zero stale errors
        platform.mark_down(_TARGET_SHARD,
                           replica=0 if spec.replicas > 1 else None)
        wave("rollover-pending-replica-down")
        platform.mark_up(_TARGET_SHARD,
                         replica=0 if spec.replicas > 1 else None)
        rollover.flip()
        wave("rolled-over", record_final=True)
    else:  # ingest-under-rollover
        # Live writes stream through the ingest pipeline while every
        # compaction's rollover is deliberately left pending across a
        # request wave (auto_flip=False stretches the window a real
        # deployment keeps short). Reads must keep draining the old
        # epoch with zero stale errors while the overlay keeps
        # absorbing writes — even with a replica down mid-window.
        events = [
            IngestEvent(kind=event.kind.value, source=event.source,
                        target=event.target,
                        topics=tuple(event.topics or ()), time=event.time)
            for event in simulate_churn(graph, 15, seed=spec.seed)]
        pipeline = IngestPipeline(
            platform, similarity, [_TOPIC],
            policy=CompactionPolicy(max_events=4), auto_flip=False)
        pipeline.submit_all(events[:8])
        if platform.pending_rollover is None:  # all 8 skipped: force one
            pipeline.compact(trigger="chaos")
        wave("ingest-pending")  # rollover pending, writes still landing
        platform.mark_down(_TARGET_SHARD,
                           replica=0 if spec.replicas > 1 else None)
        wave("ingest-pending-replica-down")
        platform.mark_up(_TARGET_SHARD,
                         replica=0 if spec.replicas > 1 else None)
        pipeline.submit_all(events[8:])  # next compaction flips the old
        final_graph = pipeline.compact(trigger="drain")
        platform.pending_rollover.flip()  # serve the drained base
        wave("rolled-over", record_final=True)

    return _StreamResult(
        transcript=transcript,
        stale_errors=stale_errors,
        degraded=degraded,
        hedges_sent=platform.channel.hedges_sent,
        hedges_won=platform.channel.hedges_won,
        final_pairs=final_pairs,
        final_index=platform.index,
        final_graph=final_graph,
    )


def _parity_ok(result: _StreamResult) -> bool:
    """Post-failure waves must match the fresh single-process scorer.

    The closing wave of every script runs on a fully healed (or fully
    rolled-over) tier, so each of its rankings must be bitwise-equal to
    :class:`~repro.landmarks.ApproximateRecommender` over the same
    final graph and index.
    """
    single = ApproximateRecommender(
        result.final_graph,
        SimilarityMatrix.from_taxonomy(web_taxonomy()),
        result.final_index, params=_PARAMS)
    users = [entry[1] for entry in result.transcript
             if entry[0] in ("steady", "recovered", "rolled-over")
             and len(entry) == 5]
    expected = [single.recommend(user, _TOPIC, top_n=10).pairs()
                for user in users]
    return expected == result.final_pairs


def run_cell(spec: CellSpec) -> CellVerdict:
    """Run one matrix cell twice plus an engine cross-check; verdict."""
    first = _run_stream(spec, "dict")
    second = _run_stream(spec, "dict")
    sparse = _run_stream(spec, "sparse")

    digest = _digest(first.transcript)
    deterministic = digest == _digest(second.transcript)
    engines_agree = digest == _digest(sparse.transcript)
    stale_errors = first.stale_errors + second.stale_errors \
        + sparse.stale_errors
    parity = _parity_ok(first)

    reasons: List[str] = []
    if stale_errors:
        reasons.append(f"{stale_errors} StaleSnapshotError(s) reached "
                       "clients")
    if not deterministic:
        reasons.append("ranking stream differs between identical seeded "
                       "runs")
    if not engines_agree:
        reasons.append("dict and sparse query engines disagree")
    if not parity:
        reasons.append("post-failure wave lost bitwise parity with the "
                       "single-process scorer")
    if spec.replicas >= 2 and first.degraded:
        reasons.append(f"{first.degraded} degraded response(s) despite "
                       f"replicas={spec.replicas}")
    if spec.replicas == 1 and spec.failure == "down-replica" \
            and not first.degraded:
        reasons.append("R=1 down-replica cell degraded nothing — the "
                       "injection did not bite")

    return CellVerdict(
        spec=spec,
        digest=digest,
        deterministic=deterministic,
        engines_agree=engines_agree,
        stale_errors=stale_errors,
        responses=len(first.transcript),
        degraded_responses=first.degraded,
        hedges_sent=first.hedges_sent,
        hedges_won=first.hedges_won,
        parity_ok=parity,
        passed=not reasons,
        reasons=reasons,
    )


def run_matrix(replicas: Sequence[int] = (1, 2, 3),
               failures: Sequence[str] = FAILURES,
               seed: int = 7) -> List[CellVerdict]:
    """Run the full (or a sliced) chaos matrix."""
    return [run_cell(CellSpec(replicas=r, failure=failure, seed=seed))
            for r in replicas for failure in failures]


def render_markdown(verdicts: Sequence[CellVerdict]) -> str:
    """GitHub-flavoured summary table (for ``$GITHUB_STEP_SUMMARY``)."""
    lines = [
        "### Chaos matrix",
        "",
        "| cell | det | engines | stale | degraded | hedges (won) "
        "| parity | verdict |",
        "| --- | --- | --- | --- | --- | --- | --- | --- |",
    ]
    for verdict in verdicts:
        mark = "✅" if verdict.passed else "❌"
        lines.append(
            f"| `{verdict.spec.name}` "
            f"| {'yes' if verdict.deterministic else 'NO'} "
            f"| {'agree' if verdict.engines_agree else 'DISAGREE'} "
            f"| {verdict.stale_errors} "
            f"| {verdict.degraded_responses} "
            f"| {verdict.hedges_sent} ({verdict.hedges_won}) "
            f"| {'yes' if verdict.parity_ok else 'NO'} "
            f"| {mark} |")
    failed = [v for v in verdicts if not v.passed]
    if failed:
        lines.append("")
        for verdict in failed:
            for reason in verdict.reasons:
                lines.append(f"- **{verdict.spec.name}**: {reason}")
    return "\n".join(lines) + "\n"


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: run one cell (or the matrix), emit verdicts."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="seeded fault-injection verdicts for the sharded tier")
    parser.add_argument("--replicas", type=int, default=2,
                        help="replication factor of the cell")
    parser.add_argument("--failure", choices=FAILURES, default="none",
                        help="failure mode to inject")
    parser.add_argument("--seed", type=int, default=7,
                        help="master seed for world, channel, and churn")
    parser.add_argument("--all", action="store_true",
                        help="run the full {1,2,3} x failures matrix "
                             "instead of one cell")
    parser.add_argument("--json", metavar="PATH",
                        help="write the verdict list as a JSON artifact")
    parser.add_argument("--markdown", metavar="PATH",
                        help="write the markdown summary table "
                             "(use - for stdout)")
    args = parser.parse_args(argv)

    if args.all:
        verdicts = run_matrix(seed=args.seed)
    else:
        verdicts = [run_cell(CellSpec(replicas=args.replicas,
                                      failure=args.failure,
                                      seed=args.seed))]

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump([v.to_dict() for v in verdicts], handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
    markdown = render_markdown(verdicts)
    if args.markdown == "-":
        print(markdown)
    elif args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write(markdown)

    for verdict in verdicts:
        status = "PASS" if verdict.passed else "FAIL"
        print(f"{status} {verdict.spec.name}: "
              f"responses={verdict.responses} "
              f"stale={verdict.stale_errors} "
              f"degraded={verdict.degraded_responses} "
              f"hedges={verdict.hedges_sent}/{verdict.hedges_won}")
        for reason in verdict.reasons:
            print(f"  - {reason}", file=sys.stderr)
    return 0 if all(v.passed for v in verdicts) else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
