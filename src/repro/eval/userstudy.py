"""Simulated user-validation studies (Figure 10 and Table 3).

The paper's panels (54 IT users for Twitter, 47 researchers for DBLP)
are not reproducible offline, so we simulate them — documented as a
substitution in DESIGN.md. The judge model encodes the behaviour the
paper itself describes:

- a judge perceives an account's relevance to a topic through its
  published content; we ground this in the *true* topical affinity of
  the account (semantic similarity between the account's profile and
  the topic, boosted by topical specialisation);
- "the user during the validation usually mark[s] with the average 2
  or 3 value ... when he was doubtful": ambiguous affinities collapse
  to a central 2–3 mark;
- clear judgements carry per-judge Gaussian noise before rounding to
  the 1–5 scale.

What the simulation preserves is the *comparative* outcome the panels
measured — content-aware methods (Tr, TwitterRank) out-rating the
purely topological Katz on topical relevance, and popularity-driven
TwitterRank collapsing on DBLP — not the absolute panel means.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.scores import AuthorityIndex
from ..errors import EvaluationError
from ..graph.labeled_graph import LabeledSocialGraph
from ..semantics.matrix import SimilarityMatrix
from ..utils.rng import SeedLike, rng_from_seed

#: ``method(user, topic, k) -> top-k account ids``
MethodFn = Callable[[int, str, int], Sequence[int]]


class JudgePanel:
    """A pool of noisy judges with the paper's central-tendency habit.

    Args:
        size: Number of judges (54 for Twitter, 47 for DBLP).
        noise: Standard deviation of per-rating Gaussian noise.
        doubt_band: Affinity interval judged "doubtful" — ratings in it
            collapse to 2 or 3.
        seed: Panel seed.
    """

    def __init__(self, size: int, noise: float = 0.45,
                 doubt_band: Tuple[float, float] = (0.30, 0.55),
                 seed: SeedLike = None) -> None:
        if size < 1:
            raise EvaluationError("panel needs at least one judge")
        low, high = doubt_band
        if not 0.0 <= low < high <= 1.0:
            raise EvaluationError(f"invalid doubt band {doubt_band}")
        self.size = size
        self.noise = noise
        self.doubt_band = doubt_band
        self._rng = rng_from_seed(seed)
        # per-judge leniency offset, fixed for the panel's lifetime
        self._leniency = [self._rng.gauss(0.0, 0.25) for _ in range(size)]

    def rate(self, judge: int, affinity: float) -> int:
        """One judge's 1–5 mark for an account of the given affinity."""
        low, high = self.doubt_band
        if low <= affinity <= high:
            return self._rng.choice((2, 3))
        raw = (1.0 + 4.0 * affinity
               + self._rng.gauss(0.0, self.noise)
               + self._leniency[judge % self.size])
        return max(1, min(5, int(round(raw))))

    def rate_all(self, affinity: float) -> List[int]:
        """Every judge's mark for one account."""
        return [self.rate(judge, affinity) for judge in range(self.size)]


def topical_affinity(graph: LabeledSocialGraph,
                     similarity: SimilarityMatrix,
                     authority: AuthorityIndex,
                     account: int, topic: str) -> float:
    """Ground-truth relevance of *account* to *topic*, in [0, 1].

    Combines the best semantic match between the account's publisher
    profile and the topic with the account's topical specialisation
    (the local-authority factor): an account publishing only about the
    topic reads as clearly relevant; a generalist with one matching
    label reads as ambiguous — which is exactly what pushes simulated
    judges into the 2–3 doubt band.
    """
    profile = graph.node_topics(account)
    if not profile:
        return 0.05
    best = similarity.max_similarity(profile, topic)
    specialisation = authority.local_authority(account, topic)
    return max(0.0, min(1.0, best * (0.55 + 0.45 * specialisation)))


# ----------------------------------------------------------------------
# Twitter study (Figure 10)
# ----------------------------------------------------------------------

@dataclass
class TwitterStudyResult:
    """Mean relevance marks per method and topic (Figure 10's bars)."""

    mean_marks: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def mark(self, method: str, topic: str) -> float:
        """Mean mark of *method* on *topic*."""
        return self.mean_marks[method][topic]

    def overall(self, method: str) -> float:
        """Mean mark of *method* across all study topics."""
        per_topic = self.mean_marks[method]
        return math.fsum(per_topic.values()) / len(per_topic)


def run_twitter_study(
    graph: LabeledSocialGraph,
    similarity: SimilarityMatrix,
    methods: Mapping[str, MethodFn],
    topics: Sequence[str] = ("technology", "social", "leisure"),
    panel: Optional[JudgePanel] = None,
    query_users: Optional[Sequence[int]] = None,
    num_query_users: int = 10,
    top_k: int = 3,
    seed: SeedLike = None,
) -> TwitterStudyResult:
    """Blind-test simulation of Section 5.3's Twitter validation.

    Each method contributes its top-3 per (query user, topic); the
    shuffled union is rated by every judge; marks are averaged per
    method and topic.
    """
    rng = rng_from_seed(seed)
    panel = (panel if panel is not None
             else JudgePanel(size=54, seed=rng.getrandbits(32)))
    authority = AuthorityIndex(graph)
    if query_users is None:
        eligible = sorted(
            node for node in graph.nodes() if graph.out_degree(node) >= 3)
        if not eligible:
            raise EvaluationError("no account with out-degree >= 3")
        query_users = rng.sample(eligible, min(num_query_users, len(eligible)))

    marks: Dict[str, Dict[str, List[int]]] = {
        name: {topic: [] for topic in topics} for name in methods
    }
    for topic in topics:
        for user in query_users:
            batch: List[Tuple[str, int]] = []
            for name, method in methods.items():
                for account in method(user, topic, top_k):
                    batch.append((name, account))
            rng.shuffle(batch)  # blind, shuffled presentation
            for name, account in batch:
                affinity = topical_affinity(
                    graph, similarity, authority, account, topic)
                marks[name][topic].extend(panel.rate_all(affinity))

    result = TwitterStudyResult()
    for name, per_topic in marks.items():
        result.mean_marks[name] = {
            topic: (sum(values) / len(values) if values else 0.0)
            for topic, values in per_topic.items()
        }
    return result


# ----------------------------------------------------------------------
# DBLP study (Table 3)
# ----------------------------------------------------------------------

@dataclass
class DblpStudyResult:
    """The three rows of Table 3.

    Attributes:
        average_mark: method → mean 1–5 mark over all proposals.
        high_marks: method → number of 4- and 5-marks received.
        best_answer: method → fraction of judges for whom the method's
            top-3 totalled the highest marks (ties split).
    """

    average_mark: Dict[str, float] = field(default_factory=dict)
    high_marks: Dict[str, int] = field(default_factory=dict)
    best_answer: Dict[str, float] = field(default_factory=dict)

    def as_rows(self) -> List[Tuple[str, Dict[str, float]]]:
        """Render the three Table-3 rows in paper order."""
        return [
            ("average mark", dict(self.average_mark)),
            ("# 4 and 5-mark", {k: float(v) for k, v in self.high_marks.items()}),
            ("best answer (%)", dict(self.best_answer)),
        ]


def run_dblp_study(
    graph: LabeledSocialGraph,
    similarity: SimilarityMatrix,
    methods: Mapping[str, MethodFn],
    panel_size: int = 47,
    citation_cap: int = 100,
    top_k: int = 3,
    judges: Optional[Sequence[int]] = None,
    seed: SeedLike = None,
) -> DblpStudyResult:
    """Simulation of the DBLP researcher validation (Table 3).

    Each judge is an author node; methods propose top-3 authors for the
    judge's primary area, restricted to authors with at most
    *citation_cap* incoming citations (the paper's "limit to 100 the
    number of citations ... so we avoid very popular and obvious
    authors"). A proposal's affinity blends semantic profile match
    with citation-graph proximity ("the proposed author could have
    been cited regarding the past publications").
    """
    rng = rng_from_seed(seed)
    panel = JudgePanel(size=1, seed=rng.getrandbits(32))
    authority = AuthorityIndex(graph)
    if judges is None:
        eligible = sorted(
            node for node in graph.nodes()
            if graph.node_topics(node) and graph.out_degree(node) >= 2)
        if not eligible:
            raise EvaluationError("no eligible judge author")
        judges = rng.sample(eligible, min(panel_size, len(eligible)))

    all_marks: Dict[str, List[int]] = {name: [] for name in methods}
    best_counts: Dict[str, float] = {name: 0.0 for name in methods}

    for judge in judges:
        profile = sorted(graph.node_topics(judge))
        if not profile:
            continue
        area = profile[0]
        references = list(graph.out_neighbors(judge))
        totals: Dict[str, int] = {}
        for name, method in methods.items():  # repro: ignore[R2] -- marks are integers and each method accumulates independently; reordering would perturb the shared judge rng stream
            proposals = [
                account for account in method(judge, area, top_k * 4)
                if graph.in_degree(account) <= citation_cap
                and account != judge
            ][:top_k]
            total = 0
            for account in proposals:
                semantic = topical_affinity(
                    graph, similarity, authority, account, area)
                # "could have been cited regarding the past publications
                # done by the researcher": the judge checks how much of
                # their own reference list already cites the proposal —
                # co-citation evidence relative to *their* neighborhood,
                # which popularity-driven proposals lack.
                cociting = sum(
                    1 for reference in references
                    if graph.has_edge(reference, account))
                share = cociting / len(references) if references else 0.0
                proximity = min(1.0, share / 0.25)
                affinity = max(0.0, min(1.0,
                                        0.45 * semantic + 0.55 * proximity))
                mark = panel.rate(0, affinity)
                all_marks[name].append(mark)
                total += mark
            totals[name] = total
        if totals:
            best = max(totals.values())
            winners = [name for name, value in totals.items() if value == best]
            for name in winners:
                best_counts[name] += 1.0 / len(winners)

    result = DblpStudyResult()
    for name, values in all_marks.items():
        result.average_mark[name] = (
            sum(values) / len(values) if values else 0.0)
        result.high_marks[name] = sum(1 for v in values if v >= 4)
        result.best_answer[name] = (
            best_counts[name] / len(judges) if judges else 0.0)
    return result
