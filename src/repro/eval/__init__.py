"""Evaluation harness behind every table and figure of Section 5."""

from .metrics import (
    kendall_tau_distance,
    precision_at,
    rank_of_target,
    recall_at,
)
from .linkpred import (
    LinkPredictionProtocol,
    MethodCurve,
    TestEdge,
    katz_scorer,
    landmark_scorer,
    make_tr_scorer,
    tr_scorer,
    twitterrank_scorer,
)
from .slices import popularity_slice_filter, topic_slice_filter
from .userstudy import (
    DblpStudyResult,
    JudgePanel,
    TwitterStudyResult,
    run_dblp_study,
    run_twitter_study,
)
from .landmarks_eval import (
    SelectionTiming,
    StrategyQuality,
    evaluate_strategy_quality,
    time_selection_strategies,
)

__all__ = [
    "recall_at",
    "precision_at",
    "rank_of_target",
    "kendall_tau_distance",
    "LinkPredictionProtocol",
    "TestEdge",
    "MethodCurve",
    "tr_scorer",
    "make_tr_scorer",
    "katz_scorer",
    "twitterrank_scorer",
    "landmark_scorer",
    "popularity_slice_filter",
    "topic_slice_filter",
    "JudgePanel",
    "TwitterStudyResult",
    "DblpStudyResult",
    "run_twitter_study",
    "run_dblp_study",
    "SelectionTiming",
    "StrategyQuality",
    "time_selection_strategies",
    "evaluate_strategy_quality",
]
