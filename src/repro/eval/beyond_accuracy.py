"""Beyond-accuracy recommendation metrics.

Section 5.3's user-study discussion claims that "while TwitterRank
generally recommends accounts with a large number of followers, Tr can
also recommend smaller but more-specialized accounts". These metrics
quantify that claim (and are standard recommender-system diagnostics):

- :func:`mean_popularity` — average follower count of recommended
  accounts (lower = less popularity-biased);
- :func:`novelty` — mean self-information ``−log2(followers/|N|)`` of
  the recommendations (higher = more of the long tail surfaced);
- :func:`catalog_coverage` — fraction of recommendable accounts that
  appear in at least one user's top-n (higher = less winner-take-all);
- :func:`specialisation` — mean local authority of the recommendations
  on the query topic (higher = more dedicated publishers);
- :func:`intra_list_diversity` — mean pairwise topical distance inside
  one recommendation list.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence

from ..core.scores import AuthorityIndex
from ..errors import EvaluationError
from ..graph.labeled_graph import LabeledSocialGraph
from ..semantics.matrix import SimilarityMatrix


def _require_lists(lists: Sequence[Sequence[int]]) -> None:
    if not lists or all(not entries for entries in lists):
        raise EvaluationError("no recommendation lists to evaluate")


def mean_popularity(graph: LabeledSocialGraph,
                    lists: Sequence[Sequence[int]]) -> float:
    """Average follower count over every recommended account."""
    _require_lists(lists)
    degrees = [graph.in_degree(node)
               for entries in lists for node in entries]
    return sum(degrees) / len(degrees)


def novelty(graph: LabeledSocialGraph,
            lists: Sequence[Sequence[int]]) -> float:
    """Mean self-information of the recommendations.

    ``−log2(max(followers, 1) / |N|)`` per recommended account, so
    recommending only celebrities scores near 0 and long-tail accounts
    score high.
    """
    _require_lists(lists)
    population = max(1, graph.num_nodes)
    values = []
    for entries in lists:
        for node in entries:
            share = max(1, graph.in_degree(node)) / population
            values.append(-math.log2(share))
    return sum(values) / len(values)


def catalog_coverage(graph: LabeledSocialGraph,
                     lists: Sequence[Sequence[int]],
                     eligible: Iterable[int] | None = None) -> float:
    """Fraction of the catalog appearing in at least one list."""
    _require_lists(lists)
    catalog = set(eligible) if eligible is not None else set(graph.nodes())
    if not catalog:
        raise EvaluationError("empty catalog")
    recommended = {node for entries in lists for node in entries}
    return len(recommended & catalog) / len(catalog)


def specialisation(graph: LabeledSocialGraph,
                   lists: Sequence[Sequence[int]], topic: str,
                   authority: AuthorityIndex | None = None) -> float:
    """Mean local authority on *topic* of the recommended accounts.

    1.0 means every suggestion is followed exclusively for the query
    topic — the "smaller but more-specialized" profile the paper
    attributes to Tr's picks.
    """
    _require_lists(lists)
    authority = authority if authority is not None else AuthorityIndex(graph)
    values = [authority.local_authority(node, topic)
              for entries in lists for node in entries]
    return sum(values) / len(values)


def _profile_similarity(similarity: SimilarityMatrix,
                        first: frozenset, second: frozenset) -> float:
    """Symmetrised best-match similarity between two topic profiles."""
    if not first or not second:
        return 0.0
    forward = sum(similarity.max_similarity(second, topic)
                  for topic in first) / len(first)
    backward = sum(similarity.max_similarity(first, topic)
                   for topic in second) / len(second)
    return (forward + backward) / 2.0


def intra_list_diversity(graph: LabeledSocialGraph,
                         similarity: SimilarityMatrix,
                         entries: Sequence[int]) -> float:
    """Mean pairwise topical distance within one list (0 = clones).

    Distance between two accounts is ``1 − profile similarity``; lists
    with fewer than two entries are perfectly undiverse by convention.
    """
    if len(entries) < 2:
        return 0.0
    profiles = [graph.node_topics(node) for node in entries]
    total = 0.0
    pairs = 0
    for i in range(len(profiles)):
        for j in range(i + 1, len(profiles)):
            total += 1.0 - _profile_similarity(similarity, profiles[i],
                                               profiles[j])
            pairs += 1
    return total / pairs


def mean_intra_list_diversity(graph: LabeledSocialGraph,
                              similarity: SimilarityMatrix,
                              lists: Sequence[Sequence[int]]) -> float:
    """Average :func:`intra_list_diversity` over the lists."""
    _require_lists(lists)
    values = [intra_list_diversity(graph, similarity, entries)
              for entries in lists if entries]
    return sum(values) / len(values)


def beyond_accuracy_report(graph: LabeledSocialGraph,
                           similarity: SimilarityMatrix,
                           lists: Sequence[Sequence[int]],
                           topic: str) -> Dict[str, float]:
    """All metrics in one dictionary (benchmark convenience)."""
    return {
        "mean_popularity": mean_popularity(graph, lists),
        "novelty": novelty(graph, lists),
        "catalog_coverage": catalog_coverage(graph, lists),
        "specialisation": specialisation(graph, lists, topic),
        "diversity": mean_intra_list_diversity(graph, similarity, lists),
    }
